"""Metrics registry: counters, gauges and histogram series.

The single metrics substrate for the whole system — training telemetry,
the serving layer (``repro.serve.Telemetry`` is a thin shim over this
class) and benchmark instrumentation all record into a
:class:`MetricsRegistry`. Three metric kinds are supported:

* **counters** — monotonically increasing totals (``increment``/``count``);
* **gauges** — last-value-wins level measurements (``set_gauge``/``gauge``);
* **histograms** — bounded reservoirs of recent observations with
  percentile summaries (``observe``/``timer``/``percentile``/``summary``).

No external dependencies, no background threads; every recording costs a
dict lookup plus an append, so the registry is safe to leave on in hot
paths.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager

import numpy as np

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named counters, gauges and bounded observation series.

    Parameters
    ----------
    max_samples:
        Per-series reservoir size. Old observations fall off the front, so
        percentiles reflect recent behaviour and memory stays bounded no
        matter how long the process runs.
    """

    def __init__(self, max_samples: int = 2048):
        self.max_samples = max_samples
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._series: dict[str, deque] = {}

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def increment(self, name: str, by: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + by

    def count(self, name: str) -> float:
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Record a level measurement; the latest value wins."""
        self._gauges[name] = float(value)

    def gauge(self, name: str) -> float:
        """Current value of a gauge; NaN if never set."""
        return self._gauges.get(name, float("nan"))

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one observation (a latency, a batch size, …)."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = deque(maxlen=self.max_samples)
        series.append(float(value))

    @contextmanager
    def timer(self, name: str):
        """Time the enclosed block; observes elapsed seconds under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def percentile(self, name: str, q: float) -> float:
        """q-th percentile (0–100) of the recorded series; NaN if empty."""
        series = self._series.get(name)
        if not series:
            return float("nan")
        return float(np.percentile(np.fromiter(series, dtype=float), q))

    def summary(self, name: str) -> dict[str, float]:
        """count / mean / p50 / p95 / max of one series (NaNs if empty)."""
        series = self._series.get(name)
        if not series:
            return {"count": 0, "mean": float("nan"), "p50": float("nan"),
                    "p95": float("nan"), "max": float("nan")}
        values = np.fromiter(series, dtype=float)
        return {
            "count": len(values),
            "mean": float(values.mean()),
            "p50": float(np.percentile(values, 50)),
            "p95": float(np.percentile(values, 95)),
            "max": float(values.max()),
        }

    # ------------------------------------------------------------------
    def snapshot(self, *, samples: bool = False) -> dict:
        """All counters and gauges plus a summary of every series.

        With ``samples=True`` the snapshot additionally carries every
        series' raw reservoir under ``"samples"`` — the form a remote
        process (e.g. a :class:`~repro.fleet.ProcessReplica`) ships over
        a pipe so the parent can :meth:`merge` true fleet-wide
        percentiles instead of averaging per-worker summaries.
        """
        payload = {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "series": {name: self.summary(name) for name in self._series},
        }
        if samples:
            payload["samples"] = {name: list(series)
                                  for name, series in self._series.items()}
        return payload

    def merge(self, other: "MetricsRegistry | dict") -> "MetricsRegistry":
        """Fold another registry (or a ``samples=True`` snapshot) into this
        one; returns ``self`` for chaining.

        Counters add, gauges last-write-wins (the merged-in value
        overwrites), and histogram series concatenate their raw samples —
        so a percentile of the merged registry equals the percentile of
        recording every observation into one registry (up to the shared
        reservoir bound ``max_samples``). A plain :meth:`snapshot` dict
        without ``"samples"`` merges its counters/gauges only.
        """
        if isinstance(other, MetricsRegistry):
            counters = other._counters
            gauges = other._gauges
            samples = {name: series for name, series in other._series.items()}
        else:
            counters = other.get("counters", {})
            gauges = other.get("gauges", {})
            samples = other.get("samples", {})
        for name, value in counters.items():
            self.increment(name, value)
        for name, value in gauges.items():
            self.set_gauge(name, value)
        for name, series in samples.items():
            for value in series:
                self.observe(name, value)
        return self

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._series.clear()
