"""Metrics registry: counters, gauges and histogram series.

The single metrics substrate for the whole system — training telemetry,
the serving layer (``repro.serve.Telemetry`` is a thin shim over this
class) and benchmark instrumentation all record into a
:class:`MetricsRegistry`. Three metric kinds are supported:

* **counters** — monotonically increasing totals (``increment``/``count``);
* **gauges** — last-value-wins level measurements (``set_gauge``/``gauge``);
* **histograms** — bounded reservoirs of recent observations with
  percentile summaries (``observe``/``timer``/``percentile``/``summary``).

No external dependencies, no background threads; every recording costs a
dict lookup plus an append, so the registry is safe to leave on in hot
paths.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager

import numpy as np

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named counters, gauges and bounded observation series.

    Parameters
    ----------
    max_samples:
        Per-series reservoir size. Old observations fall off the front, so
        percentiles reflect recent behaviour and memory stays bounded no
        matter how long the process runs.
    """

    def __init__(self, max_samples: int = 2048):
        self.max_samples = max_samples
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._series: dict[str, deque] = {}

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def increment(self, name: str, by: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + by

    def count(self, name: str) -> float:
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        """Record a level measurement; the latest value wins."""
        self._gauges[name] = float(value)

    def gauge(self, name: str) -> float:
        """Current value of a gauge; NaN if never set."""
        return self._gauges.get(name, float("nan"))

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one observation (a latency, a batch size, …)."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = deque(maxlen=self.max_samples)
        series.append(float(value))

    @contextmanager
    def timer(self, name: str):
        """Time the enclosed block; observes elapsed seconds under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def percentile(self, name: str, q: float) -> float:
        """q-th percentile (0–100) of the recorded series; NaN if empty."""
        series = self._series.get(name)
        if not series:
            return float("nan")
        return float(np.percentile(np.fromiter(series, dtype=float), q))

    def summary(self, name: str) -> dict[str, float]:
        """count / mean / p50 / p95 / max of one series (NaNs if empty)."""
        series = self._series.get(name)
        if not series:
            return {"count": 0, "mean": float("nan"), "p50": float("nan"),
                    "p95": float("nan"), "max": float("nan")}
        values = np.fromiter(series, dtype=float)
        return {
            "count": len(values),
            "mean": float(values.mean()),
            "p50": float(np.percentile(values, 50)),
            "p95": float(np.percentile(values, 95)),
            "max": float(values.max()),
        }

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All counters and gauges plus a summary of every series."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "series": {name: self.summary(name) for name in self._series},
        }

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._series.clear()
