"""Op-level instrumenting profiler with span attribution.

:class:`OpProfiler` measures where a run's wall time goes at the
granularity of individual tensor operations (``matmul``, ``segment_sum``,
``backward``, …) and attributes each sample to the innermost open tracer
span (``pretrain/batch``, ``lipschitz/generator``, …). The result is a
table of ``(span path, op)`` records carrying call counts, self/cumulative
wall seconds, output bytes and forward-flop estimates — the raw material
for hot-path tables, Chrome traces and flamegraphs (see
:mod:`repro.obs.export` and the ``repro profile`` CLI command).

Zero overhead when off
----------------------
The profiler works by *monkey-patching*: :meth:`OpProfiler.activate`
replaces the methods/functions named in each instrumented module's
``PROFILED_OPS`` table with timing wrappers, and :meth:`deactivate`
restores the originals. While no profiler is active the instrumented code
paths are byte-for-byte the original functions — importing this module or
constructing an (inactive) profiler costs nothing per op, and seeded
histories are bit-identical to an interpreter that never heard of
profiling. This is stronger than the usual "an if-check per op" guarantee
and is regression-tested in ``tests/obs/test_profiler.py``.

Patching rules
--------------
* ``Tensor.<method>`` targets are patched on the class. Dunder dispatch
  goes through the type, so every call site — including operator syntax
  ``a @ b`` — sees the wrapper.
* Module-level function targets (``segment_sum``, ``cross_entropy``, …)
  are patched in their defining module **and** in every already-imported
  ``repro.*`` module holding a reference to the same function object
  (consumers use ``from .segment import segment_sum``). Intra-module
  composites (``segment_softmax`` calling ``gather``) therefore hit the
  wrapped primitives too, which is what makes self-time accounting work.

Self vs cumulative time
-----------------------
Ops nest (``segment_mean`` calls ``segment_sum``; ``cross_entropy`` calls
``log_softmax``). The profiler keeps an op stack: a sample's *cumulative*
time is its full elapsed wall time; its *self* time subtracts the
cumulative time of the ops it called. Summing self time over all records
therefore never double-counts.

Span attribution
----------------
Each sample is keyed by the path of open tracer spans at call time (e.g.
``("profile/run", "pretrain/batch", "lipschitz/generator")``). Time inside
a span but outside any profiled op (Python glue, numpy calls not routed
through an op) is reported per span as a pseudo-op named ``(other)`` so
the hot-path table accounts for (approximately) all wall time of the
profiled region, not just the op subset.
"""

from __future__ import annotations

import importlib
import sys
import time

import numpy as np

__all__ = ["OpProfiler", "OpRecord", "hotpath_table", "compare_hotpaths",
           "INSTRUMENTED_MODULES"]

#: Modules whose ``PROFILED_OPS`` tables the profiler consumes by default.
INSTRUMENTED_MODULES = (
    "repro.tensor.tensor",
    "repro.tensor.segment",
    "repro.nn.functional",
)


class OpRecord:
    """Accumulated statistics for one ``(span path, op)`` pair."""

    __slots__ = ("span_path", "op", "calls", "self_s", "cum_s",
                 "bytes_out", "flops")

    def __init__(self, span_path: tuple, op: str):
        self.span_path = span_path
        self.op = op
        self.calls = 0
        self.self_s = 0.0
        self.cum_s = 0.0
        self.bytes_out = 0
        self.flops = 0.0

    def to_dict(self) -> dict:
        return {
            "span": "/".join(self.span_path) if self.span_path else "(root)",
            "op": self.op,
            "calls": self.calls,
            "self_s": round(self.self_s, 6),
            "cum_s": round(self.cum_s, 6),
            "bytes_out": self.bytes_out,
            "flops": self.flops,
        }


def _bytes_of(value) -> int:
    """Output payload size in bytes; 0 for non-array results."""
    data = getattr(value, "data", None)
    if isinstance(data, np.ndarray):
        return data.nbytes
    if isinstance(value, np.ndarray):
        return value.nbytes
    return 0


class OpProfiler:
    """Instrumenting op profiler riding the ambient observer's tracer.

    Parameters
    ----------
    observer:
        The observer whose tracer provides span context for attribution.
        When ``None``, samples are attributed to the root path only.
    modules:
        Dotted names of modules exposing ``PROFILED_OPS`` tables
        (defaults to :data:`INSTRUMENTED_MODULES`).
    trace_events:
        When true, every op call is also recorded as a Chrome trace event
        (begin/end timestamps), enabling :func:`repro.obs.export.chrome_trace`
        to render an op-level timeline. Costs one small dict per call;
        leave off for pure accounting.
    clock:
        Monotonic time source (injectable for tests).

    Use as a context manager::

        profiler = OpProfiler(observer)
        with observer.activate(), profiler:
            trainer.pretrain(graphs)
        table = hotpath_table(profiler.records())
    """

    def __init__(self, observer=None, *,
                 modules: tuple = INSTRUMENTED_MODULES,
                 trace_events: bool = False,
                 clock=time.perf_counter):
        self._observer = observer
        self._module_names = modules
        self._trace_events = trace_events
        self._clock = clock
        self.active = False
        # (module_or_class, attr_name, original) triples for restore.
        self._patched: list[tuple] = []
        # Op stack frames: [child_cum_seconds_accumulator].
        self._op_stack: list[list] = []
        self._records: dict[tuple, OpRecord] = {}
        self.events: list[dict] = []
        # Wall-time bounds of the profiled region (set by activate/deactivate).
        self._t_start: float | None = None
        self.wall_seconds = 0.0
        # Span-path cache: id(top span) -> path tuple. Spans are append-only
        # while open, so identity of the stack top determines the path.
        self._path_cache: dict[int, tuple] = {}

    # ------------------------------------------------------------------
    # Patching
    # ------------------------------------------------------------------
    def activate(self) -> "OpProfiler":
        """Install timing wrappers for every declared op; idempotent."""
        if self.active:
            return self
        for module_name in self._module_names:
            module = importlib.import_module(module_name)
            for target, label, flops_fn in getattr(module, "PROFILED_OPS", []):
                if target.startswith("Tensor."):
                    cls = module.Tensor
                    attr = target.split(".", 1)[1]
                    original = cls.__dict__[attr]
                    wrapper = self._wrap(original, label, flops_fn)
                    setattr(cls, attr, wrapper)
                    self._patched.append((cls, attr, original))
                else:
                    original = getattr(module, target)
                    wrapper = self._wrap(original, label, flops_fn)
                    for holder, attr in _reference_sites(original, target,
                                                         module):
                        setattr(holder, attr, wrapper)
                        self._patched.append((holder, attr, original))
        self.active = True
        self._t_start = self._clock()
        return self

    def deactivate(self) -> "OpProfiler":
        """Restore every patched attribute to its original; idempotent."""
        if not self.active:
            return self
        self.wall_seconds += self._clock() - self._t_start
        self._t_start = None
        for holder, attr, original in reversed(self._patched):
            setattr(holder, attr, original)
        self._patched.clear()
        self.active = False
        self._record_metrics()
        return self

    def __enter__(self) -> "OpProfiler":
        return self.activate()

    def __exit__(self, *exc) -> None:
        self.deactivate()

    # ------------------------------------------------------------------
    # The timing wrapper
    # ------------------------------------------------------------------
    def _wrap(self, fn, label: str, flops_fn):
        clock = self._clock
        op_stack = self._op_stack
        records = self._records
        events = self.events if self._trace_events else None
        span_path = self._span_path

        def wrapper(*args, **kwargs):
            frame = [0.0]
            op_stack.append(frame)
            t0 = clock()
            try:
                result = fn(*args, **kwargs)
            finally:
                elapsed = clock() - t0
                op_stack.pop()
                if op_stack:
                    op_stack[-1][0] += elapsed
            path = span_path()
            key = (path, label)
            record = records.get(key)
            if record is None:
                record = records[key] = OpRecord(path, label)
            record.calls += 1
            record.cum_s += elapsed
            record.self_s += elapsed - frame[0]
            record.bytes_out += _bytes_of(result)
            if flops_fn is not None:
                try:
                    record.flops += flops_fn(args, kwargs, result)
                except Exception:
                    pass  # an estimator must never break the op
            if events is not None:
                events.append({"name": label, "ts": t0, "dur": elapsed,
                               "span": "/".join(path) if path else "(root)"})
            return result

        wrapper.__name__ = getattr(fn, "__name__", label)
        wrapper.__qualname__ = getattr(fn, "__qualname__", label)
        wrapper.__doc__ = getattr(fn, "__doc__", None)
        wrapper.__wrapped__ = fn
        return wrapper

    def _span_path(self) -> tuple:
        """Names of the currently open tracer spans, outermost first."""
        observer = self._observer
        if observer is None:
            return ()
        stack = getattr(observer.tracer, "_stack", None)
        if not stack:
            return ()
        top_id = id(stack[-1])
        path = self._path_cache.get(top_id)
        if path is None:
            path = tuple(span.name for span in stack)
            self._path_cache[top_id] = path
        return path

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def records(self) -> list[OpRecord]:
        """All accumulated op records, plus per-span ``(other)`` residuals.

        The residual rows charge each completed span path's self time not
        covered by op self time to a pseudo-op named ``(other)`` — Python
        glue, data loading, numpy work outside the op layer. With them the
        table accounts for (approximately) the whole wall time of the
        profiled region.
        """
        rows = list(self._records.values())
        rows.extend(self._residuals())
        return rows

    def _residuals(self) -> list[OpRecord]:
        observer = self._observer
        if observer is None or not getattr(observer.tracer, "roots", None):
            return []
        # Op self seconds charged to each exact span path.
        op_self: dict[tuple, float] = {}
        for record in self._records.values():
            op_self[record.span_path] = (op_self.get(record.span_path, 0.0)
                                         + record.self_s)
        # Span self seconds aggregated over every *instance* of a path —
        # a per-batch span like ``pretrain/loss`` opens once per batch, and
        # its glue time only adds up across instances. (Subtracting the
        # path-aggregated op time from each instance separately, as an
        # earlier version did, floors repeated spans to zero and leaves
        # their glue unattributed.)
        span_self: dict[tuple, float] = {}
        span_calls: dict[tuple, int] = {}
        walk = [(root, ()) for root in observer.tracer.roots]
        while walk:
            span, prefix = walk.pop()
            path = prefix + (span.name,)
            if span.end is not None:
                span_self[path] = span_self.get(path, 0.0) + span.self_seconds
                span_calls[path] = span_calls.get(path, 0) + 1
            walk.extend((child, path) for child in span.children)
        residuals = []
        for path, seconds in span_self.items():
            leftover = seconds - op_self.get(path, 0.0)
            if leftover > 0.0:
                record = OpRecord(path, "(other)")
                record.calls = span_calls[path]
                record.self_s = leftover
                record.cum_s = leftover
                residuals.append(record)
        return residuals

    def _record_metrics(self) -> None:
        """Publish totals into the observer's metrics under ``prof/*``."""
        observer = self._observer
        if observer is None or getattr(observer, "metrics", None) is None:
            return
        total_self = 0.0
        total_calls = 0
        for record in self._records.values():
            observer.increment(f"prof/op/{record.op}/calls", record.calls)
            observer.increment(f"prof/op/{record.op}/self_s", record.self_s)
            total_self += record.self_s
            total_calls += record.calls
        observer.set_gauge("prof/wall_seconds", self.wall_seconds)
        observer.set_gauge("prof/op_self_seconds", total_self)
        observer.set_gauge("prof/op_calls", total_calls)

    def reset(self) -> None:
        self._records.clear()
        self.events.clear()
        self._path_cache.clear()
        self.wall_seconds = 0.0


def _reference_sites(original, name: str, defining_module):
    """Every ``(module, attr)`` holding a reference to ``original``.

    Consumers import op functions by value (``from .segment import
    segment_sum``), so patching only the defining module would miss them.
    Scans already-imported ``repro.*`` modules for attributes that *are*
    the original function object.
    """
    sites = [(defining_module, name)]
    for mod_name, module in list(sys.modules.items()):
        if module is None or module is defining_module:
            continue
        if not (mod_name == "repro" or mod_name.startswith("repro.")):
            continue
        if getattr(module, name, None) is original:
            sites.append((module, name))
    return sites


# ----------------------------------------------------------------------
# Hot-path table + regression gate
# ----------------------------------------------------------------------
def hotpath_table(records: list[OpRecord], *, wall_seconds: float | None = None,
                  top: int | None = None) -> dict:
    """Aggregate records into the canonical hot-path payload.

    Returns a dict with:

    * ``rows`` — one entry per ``(span, op)`` sorted by self seconds
      descending (truncated to ``top`` when given), each carrying
      ``span``, ``op``, ``calls``, ``self_s``, ``cum_s``, ``self_share``
      (fraction of summed self time), ``bytes_out``, ``flops``;
    * ``by_op`` — per-op totals across spans (``calls`` / ``self_s``);
    * ``total_self_s``, ``wall_seconds``, ``attributed_fraction`` (how
      much of wall time the table explains — includes ``(other)`` rows),
      ``op_fraction`` (profiled ops only, excluding ``(other)``).
    """
    total_self = sum(r.self_s for r in records)
    op_self = sum(r.self_s for r in records if r.op != "(other)")
    by_op: dict[str, dict] = {}
    for record in records:
        entry = by_op.setdefault(record.op, {"calls": 0, "self_s": 0.0})
        entry["calls"] += record.calls
        entry["self_s"] += record.self_s
    for entry in by_op.values():
        entry["self_s"] = round(entry["self_s"], 6)
        entry["self_share"] = round(entry["self_s"] / total_self, 4) \
            if total_self > 0 else 0.0
    rows = sorted(records, key=lambda r: r.self_s, reverse=True)
    if top is not None:
        rows = rows[:top]
    row_dicts = []
    for record in rows:
        row = record.to_dict()
        row["self_share"] = round(record.self_s / total_self, 4) \
            if total_self > 0 else 0.0
        row_dicts.append(row)
    payload = {
        "rows": row_dicts,
        "by_op": by_op,
        "total_self_s": round(total_self, 6),
    }
    if wall_seconds is not None:
        payload["wall_seconds"] = round(wall_seconds, 6)
        payload["attributed_fraction"] = round(total_self / wall_seconds, 4) \
            if wall_seconds > 0 else 0.0
        payload["op_fraction"] = round(op_self / wall_seconds, 4) \
            if wall_seconds > 0 else 0.0
    return payload


def compare_hotpaths(current: dict, baseline: dict, *,
                     calls_tolerance: float = 0.0,
                     share_tolerance: float = 0.10,
                     per_call_ratio: float = 3.0,
                     min_self_s: float = 1e-4) -> list[str]:
    """Regression gate: compare a hot-path payload against a baseline.

    Returns a list of human-readable violations (empty = pass). Designed
    to be robust to machine noise — absolute times are never compared
    across machines; instead:

    * **call counts** are deterministic for a seeded run, so any drift
      beyond ``calls_tolerance`` (relative) on an op present in both is a
      violation — it means the computation graph itself changed;
    * **self_share** (an op's fraction of total self time) must stay
      within ``share_tolerance`` (absolute) — a ratio, so machine speed
      cancels;
    * **self_per_call** may grow at most ``per_call_ratio``× relative to
      the baseline's per-call cost normalised by total runtime — catches
      an op becoming asymptotically worse without tripping on noise.

    Ops with baseline self time under ``min_self_s`` are skipped for the
    share/per-call checks (timer noise dominates them).
    """
    violations: list[str] = []
    cur_ops = current.get("by_op", {})
    base_ops = baseline.get("by_op", {})
    cur_total = max(current.get("total_self_s", 0.0), 1e-12)
    base_total = max(baseline.get("total_self_s", 0.0), 1e-12)
    for op, base in base_ops.items():
        cur = cur_ops.get(op)
        if cur is None:
            if base.get("calls", 0) > 0 and op != "(other)":
                violations.append(f"op '{op}' vanished "
                                  f"(baseline calls={base['calls']})")
            continue
        if op == "(other)":
            continue  # glue-time rows are noise-dominated by design
        base_calls, cur_calls = base.get("calls", 0), cur.get("calls", 0)
        if base_calls > 0:
            drift = abs(cur_calls - base_calls) / base_calls
            if drift > calls_tolerance:
                violations.append(
                    f"op '{op}' call count changed: "
                    f"{base_calls} -> {cur_calls} "
                    f"(drift {drift:.1%} > {calls_tolerance:.1%})")
        if base.get("self_s", 0.0) < min_self_s:
            continue
        base_share = base.get("self_share",
                              base.get("self_s", 0.0) / base_total)
        cur_share = cur.get("self_share", cur.get("self_s", 0.0) / cur_total)
        if cur_share - base_share > share_tolerance:
            violations.append(
                f"op '{op}' self-time share grew: "
                f"{base_share:.3f} -> {cur_share:.3f} "
                f"(+{cur_share - base_share:.3f} > {share_tolerance})")
        if base_calls > 0 and cur_calls > 0:
            # Normalise per-call cost by each run's total, so a uniformly
            # slower machine cancels out.
            base_pc = (base["self_s"] / base_calls) / base_total
            cur_pc = (cur["self_s"] / cur_calls) / cur_total
            if base_pc > 0 and cur_pc / base_pc > per_call_ratio:
                violations.append(
                    f"op '{op}' normalised per-call cost grew "
                    f"{cur_pc / base_pc:.1f}x (> {per_call_ratio}x)")
    return violations
