"""Observability subsystem: metrics, tracing spans, event sinks, manifests.

One layer measures the whole stack — SGCL pre-training, the baselines,
evaluation, benchmarks and serving:

* :class:`MetricsRegistry` — counters, gauges and reservoir histograms
  (``repro.serve.Telemetry`` is a back-compat shim over it).
* :class:`Tracer` — nested timed spans (``pretrain/epoch``,
  ``lipschitz/generator``, ``augment/sample``, ``eval/svm``…), exportable
  as a span tree or per-name aggregate.
* Sinks — :class:`MemorySink` ring buffer, :class:`JSONLSink` append-only
  event log, :class:`ConsoleSink` progress lines, :class:`NullSink`.
* :class:`Observer` — ties the three together; installed ambiently with
  ``observer.activate()`` and looked up by instrumented code via
  :func:`current` (a shared no-op when observability is off).
* :class:`OpProfiler` — op-level instrumenting profiler (call counts,
  self/cumulative time, bytes, flop estimates) with span attribution;
  zero overhead when inactive. Exporters in :mod:`repro.obs.export`
  render Chrome traces, flamegraphs and Prometheus text.
* :class:`RunManifest` — config + dataset fingerprint + git SHA + seed +
  environment, written next to run logs and checkpoints.
* ``repro report <run.jsonl>`` renders a log via :mod:`repro.obs.report`.

See docs/OBSERVABILITY.md for the event schema and span names.
"""

from .export import (chrome_trace, collapsed_stacks, prometheus_text,
                     write_chrome_trace, write_collapsed_stacks,
                     write_prometheus_text)
from .manifest import RunManifest, dataset_fingerprint, git_sha
from .metrics import MetricsRegistry
from .observer import NULL_OBSERVER, NullObserver, Observer, current
from .profiler import (OpProfiler, OpRecord, compare_hotpaths,
                       hotpath_table)
from .report import load_events, render_report, render_run_report
from .sinks import ConsoleSink, JSONLSink, MemorySink, NullSink, Sink
from .tracing import NULL_TRACER, NullTracer, Span, Tracer, render_span_tree

__all__ = [
    "MetricsRegistry",
    "OpProfiler",
    "OpRecord",
    "hotpath_table",
    "compare_hotpaths",
    "chrome_trace",
    "collapsed_stacks",
    "prometheus_text",
    "write_chrome_trace",
    "write_collapsed_stacks",
    "write_prometheus_text",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "render_span_tree",
    "Sink",
    "NullSink",
    "MemorySink",
    "JSONLSink",
    "ConsoleSink",
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "current",
    "RunManifest",
    "dataset_fingerprint",
    "git_sha",
    "load_events",
    "render_report",
    "render_run_report",
]
