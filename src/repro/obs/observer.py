"""The :class:`Observer` — one handle tying metrics, tracing and sinks.

Instrumented library code never builds its own observer; it asks for the
ambient one::

    from ..obs import current

    with current().span("lipschitz/generator"):
        ...

By default :func:`current` returns :data:`NULL_OBSERVER`, whose every
method is a no-op and whose ``span()`` hands back one shared empty context
manager — instrumentation left in hot paths costs a function call and two
attribute lookups when observability is off. A real observer is installed
for a region of code with::

    observer = Observer(sinks=[JSONLSink("runs/r1.jsonl")])
    with observer.activate():
        trainer.pretrain(graphs)          # emits epoch events + spans
    observer.emit_trace()
    observer.close()

Activation is a stack, so observers nest (an outer CLI-level observer and
an inner test-scoped one do not fight). Explicit ``observer=`` parameters
on ``pretrain`` methods override the ambient lookup for callers that want
direct control.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager

from .metrics import MetricsRegistry
from .sinks import Sink
from .tracing import NULL_TRACER, Tracer, _NULL_SPAN

__all__ = ["Observer", "NullObserver", "NULL_OBSERVER", "current"]


class Observer:
    """Aggregates a metrics registry, a tracer and a list of event sinks.

    Parameters
    ----------
    sinks:
        Destinations for :meth:`event` payloads (JSONL file, ring buffer,
        console, …). Empty is fine — spans and metrics still record.
    metrics, tracer:
        Injectable substrates; fresh private instances by default.
    run_id:
        Short identifier stamped into every event (``run`` key); a random
        8-hex-char id is generated if omitted.
    clock:
        Wall-clock source for event timestamps (injectable for tests).
    """

    enabled = True

    def __init__(self, sinks: list[Sink] | tuple = (), *,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 run_id: str | None = None,
                 clock=time.time):
        self.sinks = list(sinks)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:8]
        self._clock = clock

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def event(self, kind: str, **fields) -> dict:
        """Emit one structured event to every sink; returns the payload.

        Every event carries three envelope keys — ``event`` (the kind),
        ``ts`` (wall-clock seconds) and ``run`` (the run id) — plus the
        caller's fields. See docs/OBSERVABILITY.md for the schema of the
        core kinds.
        """
        payload = {"event": kind, "ts": round(self._clock(), 6),
                   "run": self.run_id, **fields}
        for sink in self.sinks:
            sink.emit(payload)
        return payload

    def emit_trace(self) -> dict:
        """Emit the tracer's span tree + per-name aggregate as one event."""
        return self.event("trace", spans=self.tracer.span_tree(),
                          aggregate=self.tracer.aggregate())

    # ------------------------------------------------------------------
    # Delegation to the substrates
    # ------------------------------------------------------------------
    def span(self, name: str):
        return self.tracer.span(name)

    def increment(self, name: str, by: float = 1) -> None:
        self.metrics.increment(name, by)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    def timer(self, name: str):
        return self.metrics.timer(name)

    # ------------------------------------------------------------------
    @contextmanager
    def activate(self):
        """Install this observer as :func:`current` for the enclosed block."""
        _ACTIVE.append(self)
        try:
            yield self
        finally:
            # Remove the most recent occurrence (activations unwind LIFO,
            # but the same observer may be active at two depths).
            for i in range(len(_ACTIVE) - 1, 0, -1):
                if _ACTIVE[i] is self:
                    del _ACTIVE[i]
                    break

    def close(self) -> None:
        """Close every sink (flushes file-backed logs)."""
        for sink in self.sinks:
            sink.close()


class NullObserver:
    """Inert observer: every method is a no-op, ``span()`` is shared.

    Instrumented code can call any Observer method on it unconditionally;
    nothing is recorded and nothing is allocated.
    """

    enabled = False
    sinks: list = []
    metrics = None
    tracer = NULL_TRACER
    run_id = "off"

    def event(self, kind: str, **fields) -> dict:
        return {}

    def emit_trace(self) -> dict:
        return {}

    def span(self, name: str):
        return _NULL_SPAN

    def increment(self, name: str, by: float = 1) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def timer(self, name: str):
        return _NULL_SPAN

    @contextmanager
    def activate(self):
        yield self

    def close(self) -> None:
        return None


NULL_OBSERVER = NullObserver()

# Activation stack; the top is what `current()` returns. A list (not a
# contextvar) keeps lookup at one index operation — this codebase is
# single-threaded numpy throughout.
_ACTIVE: list = [NULL_OBSERVER]


def current():
    """The innermost activated :class:`Observer` (or the shared no-op)."""
    return _ACTIVE[-1]
