"""Exporters: Chrome trace JSON, collapsed-stack flamegraphs, Prometheus.

Three interchange formats for the observability substrates:

* :func:`chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_. Tracer
  spans become complete (``"ph": "X"``) events; an :class:`OpProfiler`
  with ``trace_events=True`` contributes an op-level timeline on a second
  track.
* :func:`collapsed_stacks` — Brendan Gregg's collapsed-stack text format
  (``path;to;frame value``), consumed by ``flamegraph.pl``, speedscope
  and most flamegraph viewers. Values are integer microseconds of *self*
  time, so the flame widths sum correctly.
* :func:`prometheus_text` — the Prometheus text exposition format
  (version 0.0.4) for any :class:`~repro.obs.metrics.MetricsRegistry`
  snapshot; served from a textfile by ``repro serve
  --metrics-textfile`` for node-exporter-style scraping.

All three are pure functions from in-memory state to ``str``/``dict``;
the ``write_*`` helpers add atomic file output.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from ..data.io import atomic_write

__all__ = ["chrome_trace", "collapsed_stacks", "prometheus_text",
           "write_chrome_trace", "write_collapsed_stacks",
           "write_prometheus_text"]


# ----------------------------------------------------------------------
# Chrome trace event format
# ----------------------------------------------------------------------
def _span_events(span, t0: float, events: list, pid: int, tid: int) -> None:
    events.append({
        "name": span.name,
        "ph": "X",
        "ts": round((span.start - t0) * 1e6, 3),
        "dur": round(span.duration * 1e6, 3),
        "pid": pid,
        "tid": tid,
        "cat": "span",
        "args": ({"error": span.error} if span.error is not None else {}),
    })
    for child in span.children:
        _span_events(child, t0, events, pid, tid)


def chrome_trace(tracer=None, profiler=None, *, pid: int = 1) -> dict:
    """Tracer spans (+ optional profiler op events) as a Chrome trace dict.

    Spans render on thread 1 (``spans``), profiler op events on thread 2
    (``ops``) — load the JSON in Perfetto and the op timeline lines up
    under the span timeline. Timestamps are microseconds relative to the
    earliest event, as the format expects.
    """
    events: list[dict] = []
    starts = []
    if tracer is not None and getattr(tracer, "roots", None):
        starts.extend(span.start for span in tracer.roots)
    if profiler is not None and profiler.events:
        starts.append(min(e["ts"] for e in profiler.events))
    t0 = min(starts) if starts else 0.0

    if tracer is not None and getattr(tracer, "roots", None):
        for root in tracer.roots:
            _span_events(root, t0, events, pid, tid=1)
    if profiler is not None:
        for event in profiler.events:
            events.append({
                "name": event["name"],
                "ph": "X",
                "ts": round((event["ts"] - t0) * 1e6, 3),
                "dur": round(event["dur"] * 1e6, 3),
                "pid": pid,
                "tid": 2,
                "cat": "op",
                "args": {"span": event["span"]},
            })
    metadata = [
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": 1,
         "args": {"name": "spans"}},
        {"name": "thread_name", "ph": "M", "pid": pid, "tid": 2,
         "args": {"name": "ops"}},
    ]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | Path, tracer=None, profiler=None) -> Path:
    path = Path(path)
    with atomic_write(path) as tmp:
        tmp.write_text(json.dumps(chrome_trace(tracer, profiler)),
                       encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Collapsed-stack flamegraph text
# ----------------------------------------------------------------------
def collapsed_stacks(records) -> str:
    """Profiler records as collapsed-stack lines (self-time microseconds).

    Each record's stack is its span path with the op name as the leaf
    frame: ``profile/run;pretrain/batch;segment_sum 1234``. Lines with a
    zero-microsecond value are dropped (flamegraph.pl rejects them).
    Records sharing a stack are merged.
    """
    weights: dict[str, int] = {}
    for record in records:
        frames = list(record.span_path) + [record.op]
        stack = ";".join(frames) if frames else record.op
        micros = int(round(record.self_s * 1e6))
        if micros <= 0:
            continue
        weights[stack] = weights.get(stack, 0) + micros
    return "\n".join(f"{stack} {value}"
                     for stack, value in sorted(weights.items())) + "\n" \
        if weights else ""


def write_collapsed_stacks(path: str | Path, records) -> Path:
    path = Path(path)
    with atomic_write(path) as tmp:
        tmp.write_text(collapsed_stacks(records), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ----------------------------------------------------------------------
_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str, prefix: str) -> str:
    """Sanitise a registry key into a legal Prometheus metric name."""
    sanitised = _INVALID_METRIC_CHARS.sub("_", name)
    if sanitised and sanitised[0].isdigit():
        sanitised = "_" + sanitised
    return f"{prefix}{sanitised}" if prefix else sanitised


def _finite(value: float) -> bool:
    return value == value and value not in (float("inf"), float("-inf"))


def prometheus_text(registry, *, prefix: str = "repro_") -> str:
    """A metrics registry (or snapshot dict) in Prometheus text format.

    Counters become ``counter`` metrics (``_total`` suffix), gauges become
    ``gauge`` metrics, and each histogram series is exposed as a summary:
    ``<name>{quantile="0.5|0.95"}``, ``<name>_count`` and a ``_max``
    gauge. Metric names are sanitised (``/`` and other illegal characters
    become ``_``) and prefixed with ``prefix``.
    """
    snapshot = registry if isinstance(registry, dict) \
        else registry.snapshot()
    lines: list[str] = []
    for name in sorted(snapshot.get("counters", {})):
        value = snapshot["counters"][name]
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value}")
    for name in sorted(snapshot.get("gauges", {})):
        value = snapshot["gauges"][name]
        if not _finite(value):
            continue
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value}")
    for name in sorted(snapshot.get("series", {})):
        summary = snapshot["series"][name]
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} summary")
        if summary.get("count", 0):
            if _finite(summary.get("p50", float("nan"))):
                lines.append(f'{metric}{{quantile="0.5"}} {summary["p50"]}')
            if _finite(summary.get("p95", float("nan"))):
                lines.append(f'{metric}{{quantile="0.95"}} {summary["p95"]}')
        lines.append(f"{metric}_count {summary.get('count', 0)}")
        if _finite(summary.get("max", float("nan"))):
            lines.append(f"# TYPE {metric}_max gauge")
            lines.append(f"{metric}_max {summary['max']}")
    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus_text(path: str | Path, registry, *,
                          prefix: str = "repro_") -> Path:
    path = Path(path)
    with atomic_write(path) as tmp:
        tmp.write_text(prometheus_text(registry, prefix=prefix),
                       encoding="utf-8")
    return path
