"""A seeded SGCL pretrain slice under the op profiler.

Shared by the ``repro profile`` CLI command and
``benchmarks/bench_hotpath.py`` so the committed baseline
(``BENCH_hotpath.json``) and the CLI's ``--compare`` gate measure the
exact same workload: same dataset slice, same config, same seeds — which
is what makes the profile's op *call counts* deterministic and therefore
comparable across machines.

Core imports happen inside the function: ``repro.core`` imports
``repro.obs`` at module level, so the reverse edge must stay lazy.
"""

from __future__ import annotations

import gc

from .observer import Observer
from .profiler import OpProfiler, hotpath_table

__all__ = ["profile_pretrain"]


def profile_pretrain(dataset_name: str = "MUTAG", *, scale: float = 0.1,
                     epochs: int = 2, batch_size: int = 32, seed: int = 0,
                     max_graphs: int | None = 64,
                     trace_events: bool = False):
    """Pre-train SGCL on a dataset slice under the profiler.

    Returns ``(observer, profiler, payload)``: the observer (its tracer
    holds the span tree, for Chrome-trace export), the deactivated
    profiler (its records back the flamegraph), and the hot-path payload —
    :func:`~repro.obs.profiler.hotpath_table` output plus a ``config``
    block identifying the workload. Dataset loading and model
    construction happen *before* profiling starts; only the training loop
    (wrapped in a ``profile/run`` root span) is measured.
    """
    from ..core import SGCLConfig, SGCLTrainer
    from ..data import load_dataset

    dataset = load_dataset(dataset_name, seed=0, scale=scale)
    graphs = dataset.graphs[:max_graphs] if max_graphs else dataset.graphs
    trainer = SGCLTrainer(
        dataset.num_features,
        SGCLConfig(epochs=epochs, batch_size=batch_size, seed=seed))
    observer = Observer()
    profiler = OpProfiler(observer, trace_events=trace_events)
    # Collect accumulated garbage up front and keep the collector off for
    # the measured region: a generational collection pausing mid-op charges
    # tens of milliseconds to whichever tensor op it lands in, which is the
    # single largest noise source for the share-based regression gate.
    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        with observer.activate(), profiler:
            with observer.span("profile/run"):
                trainer.pretrain(graphs, observer=observer)
    finally:
        if gc_was_enabled:
            gc.enable()
    payload = hotpath_table(profiler.records(),
                            wall_seconds=profiler.wall_seconds)
    payload["config"] = {
        "dataset": dataset_name,
        "scale": scale,
        "epochs": epochs,
        "batch_size": batch_size,
        "seed": seed,
        "max_graphs": max_graphs,
    }
    return observer, profiler, payload
