"""Event sinks: where observability events go.

Every sink implements one method — ``emit(event)`` with a plain dict — so
new destinations (a socket, a metrics backend) are one small class away.
Shipped sinks:

* :class:`NullSink` — drops everything (the zero-overhead default).
* :class:`MemorySink` — bounded in-memory ring buffer, for tests and
  interactive inspection.
* :class:`JSONLSink` — append-only JSON-lines writer: one event per line,
  each line written whole and flushed, so a crashed run leaves at worst a
  complete prefix of the log and every surviving line parses.
* :class:`ConsoleSink` — human-readable progress reporter for terminals.
"""

from __future__ import annotations

import json
import sys
from collections import deque
from pathlib import Path

import numpy as np

__all__ = ["Sink", "NullSink", "MemorySink", "JSONLSink", "ConsoleSink"]


def _jsonify(value):
    """Default encoder for numpy scalars/arrays inside event payloads."""
    if isinstance(value, (np.floating, np.integer)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value)}")


class Sink:
    """Interface: receive one event dict at a time."""

    def emit(self, event: dict) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further ``emit`` calls are undefined."""


class NullSink(Sink):
    """Discards every event."""

    def emit(self, event: dict) -> None:
        return None


class MemorySink(Sink):
    """Keeps the most recent ``capacity`` events in a ring buffer."""

    def __init__(self, capacity: int = 4096):
        self.events: deque[dict] = deque(maxlen=capacity)

    def emit(self, event: dict) -> None:
        self.events.append(dict(event))

    def of_kind(self, kind: str) -> list[dict]:
        """All buffered events with ``event == kind``, oldest first."""
        return [e for e in self.events if e.get("event") == kind]


class JSONLSink(Sink):
    """Append-only JSON-lines event log.

    Each event is serialised to a single line (sorted keys, so the schema
    is diff-stable), written in one call and flushed immediately. The file
    is opened in append mode, so several runs may share one log and a
    crash can never truncate previously written events.

    Interrupt safety: the serialised line is written with a *single*
    ``write`` call, so a SIGINT delivered mid-emit (Python raises
    ``KeyboardInterrupt`` between bytecodes, never inside one C-level
    write) can only land before the line or after it — a killed run's log
    is always valid line-delimited JSON. The sink is also a context
    manager; ``with JSONLSink(path) as sink: ...`` flushes and closes on
    the way out even when the body raises, which is what keeps trace logs
    intact under :func:`repro.resilience.interrupt_guard`.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")

    def emit(self, event: dict) -> None:
        line = json.dumps(event, sort_keys=True, default=_jsonify)
        self._file.write(line + "\n")
        self._file.flush()

    def flush(self) -> None:
        """Force buffered bytes to disk (emit already flushes per line)."""
        if not self._file.closed:
            self._file.flush()

    @property
    def closed(self) -> bool:
        return self._file.closed

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            self._file.close()

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ConsoleSink(Sink):
    """Renders events as one-line human-readable progress messages.

    Knows the shape of the core event kinds (``epoch``, ``eval``,
    ``run_start``, ``run_end``); anything else falls back to
    ``kind key=value …``. ``stream`` defaults to the *current*
    ``sys.stdout`` at emit time so output capture (pytest, redirection)
    works.
    """

    def __init__(self, stream=None):
        self._stream = stream

    def _write(self, text: str) -> None:
        stream = self._stream if self._stream is not None else sys.stdout
        stream.write(text + "\n")

    def emit(self, event: dict) -> None:
        kind = event.get("event", "?")
        if kind == "epoch":
            self._write(self._format_epoch(event))
        elif kind == "eval":
            metric = "accuracy" if "accuracy" in event else "roc_auc"
            value = event.get(metric, float("nan"))
            self._write(f"[eval] {event.get('protocol', '?')} "
                        f"{metric}={value:.4f}")
        elif kind == "run_start":
            self._write(f"[run {event.get('run', '?')}] "
                        f"{event.get('method', '?')} on "
                        f"{event.get('dataset', '?')}")
        elif kind == "run_end":
            self._write(f"[run {event.get('run', '?')}] done "
                        f"in {event.get('wall_seconds', float('nan')):.2f}s")
        elif kind == "trace":
            return  # span trees are unreadable on one line; see `repro report`
        else:
            fields = " ".join(
                f"{k}={v}" for k, v in event.items()
                if k not in ("event", "ts", "run"))
            self._write(f"[{kind}] {fields}")

    @staticmethod
    def _format_epoch(event: dict) -> str:
        parts = [f"[epoch {event.get('epoch', '?')}]"]
        for key, label in (("loss", "loss"), ("loss_s", "L_s"),
                           ("loss_c", "L_c"), ("theta_w", "Θ_W"),
                           ("grad_norm", "|∇|")):
            if key in event:
                parts.append(f"{label}={event[key]:.4f}")
        if "k_v_mean" in event:
            parts.append(f"K_V={event['k_v_mean']:.3f}"
                         f"±{event.get('k_v_std', float('nan')):.3f}")
        if "drop_fraction" in event:
            parts.append(f"drop={100 * event['drop_fraction']:.1f}%")
        if "epoch_seconds" in event:
            parts.append(f"({event['epoch_seconds']:.2f}s)")
        return " ".join(parts)
