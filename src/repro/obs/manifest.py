"""Run manifests: what exactly produced a run log / checkpoint.

A :class:`RunManifest` pins everything needed to re-run or audit a
training run — the configuration, a content fingerprint of the dataset,
the git commit, the seed and the software environment — as one small JSON
file written atomically next to the run's event log and checkpoints.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from ..data.io import atomic_write

__all__ = ["RunManifest", "dataset_fingerprint", "git_sha"]


def dataset_fingerprint(graphs) -> str:
    """Order-sensitive content hash of a graph corpus (hex, 16 chars).

    Hashes every graph's feature matrix and edge index (shape, dtype and
    bytes), so two manifests share a fingerprint iff the training corpora
    were bit-identical. Labels are excluded — pre-training never sees them.
    """
    digest = hashlib.sha256()
    for graph in graphs:
        for tag, array in ((b"x", graph.x), (b"e", graph.edge_index)):
            digest.update(tag)
            digest.update(str(array.shape).encode())
            digest.update(str(array.dtype).encode())
            digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()[:16]


def git_sha(repo_root: str | Path | None = None) -> str | None:
    """Current git commit hash, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=repo_root, timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


class RunManifest:
    """Reproducibility record for one run.

    Parameters
    ----------
    run_id:
        Matches the ``run`` key of the run's events.
    config:
        Hyper-parameters — a dataclass (e.g. :class:`SGCLConfig`) or a
        plain dict; stored as a dict.
    dataset:
        Dataset descriptor, e.g. ``{"name": ..., "num_graphs": ...,
        "fingerprint": dataset_fingerprint(graphs)}``.
    seed:
        The run's root seed.
    extra:
        Anything else worth pinning (CLI arguments, method name).
    """

    def __init__(self, run_id: str, *, config=None, dataset: dict | None = None,
                 seed: int | None = None, extra: dict | None = None,
                 clock=time.time):
        if dataclasses.is_dataclass(config):
            config = dataclasses.asdict(config)
        self.run_id = run_id
        self.config = config
        self.dataset = dataset
        self.seed = seed
        self.extra = extra or {}
        self.created = time.strftime(
            "%Y-%m-%dT%H:%M:%S", time.localtime(clock()))
        self.git_sha = git_sha()
        self.environment = {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        }

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "created": self.created,
            "git_sha": self.git_sha,
            "seed": self.seed,
            "config": self.config,
            "dataset": self.dataset,
            "environment": self.environment,
            "extra": self.extra,
        }

    def write(self, path: str | Path) -> Path:
        """Atomically write the manifest JSON to ``path``."""
        path = Path(path)
        with atomic_write(path) as tmp:
            tmp.write_text(json.dumps(self.to_dict(), indent=2,
                                      sort_keys=True))
        return path

    @staticmethod
    def read(path: str | Path) -> dict:
        """Load a previously written manifest as a plain dict."""
        return json.loads(Path(path).read_text())
