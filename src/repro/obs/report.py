"""Aggregate a JSONL run log into human-readable tables.

Backs the ``repro report <run.jsonl>`` CLI command: loads every event,
groups the per-epoch training telemetry into one table per (run, method),
lists evaluation results, and renders the span-time aggregate of the last
``trace`` event. Pure functions over parsed events, so tests can feed
synthetic logs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

__all__ = ["load_events", "render_report", "render_run_report"]

_EPOCH_COLUMNS = [
    # (event key, column header, format)
    ("loss", "loss", "{:.4f}"),
    ("loss_s", "L_s", "{:.4f}"),
    ("loss_c", "L_c", "{:.4f}"),
    ("loss_g", "L_g", "{:.4f}"),
    ("theta_w", "Θ_W", "{:.4f}"),
    ("grad_norm", "|∇|", "{:.3f}"),
    ("k_v_mean", "K_V mean", "{:.3f}"),
    ("k_v_std", "K_V std", "{:.3f}"),
    ("drop_fraction", "drop%", "{:.1%}"),
    ("epoch_seconds", "sec", "{:.2f}"),
]


def load_events(path: str | Path) -> list[dict]:
    """Parse a JSONL event log; every non-blank line must be valid JSON."""
    events = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(
                f"{path}:{lineno}: invalid JSONL event: {error}") from None
        if not isinstance(event, dict) or "event" not in event:
            raise ValueError(
                f"{path}:{lineno}: event objects need an 'event' key")
        events.append(event)
    return events


def _epoch_table(epochs: list[dict]) -> str:
    """One row per epoch, only the columns that actually occur."""
    columns = [(key, header, fmt) for key, header, fmt in _EPOCH_COLUMNS
               if any(key in e for e in epochs)]
    widths = [max(9, len(h) + 1) for _, h, _ in columns]
    lines = ["epoch" + "".join(f"{h:>{w}}" for (_, h, _), w
                               in zip(columns, widths))]
    for event in epochs:
        cells = []
        for (key, _, fmt), width in zip(columns, widths):
            cell = fmt.format(event[key]) if key in event else "-"
            cells.append(f"{cell:>{width}}")
        lines.append(f"{event.get('epoch', '?'):>5}" + "".join(cells))
    return "\n".join(lines)


def _mean(epochs: list[dict], key: str) -> float:
    values = [e[key] for e in epochs if key in e]
    return float(np.mean(values)) if values else float("nan")


def render_report(events: list[dict]) -> str:
    """Render every table the events support; stable section order."""
    sections: list[str] = []

    starts = [e for e in events if e["event"] == "run_start"]
    for start in starts:
        fields = ", ".join(f"{k}={v}" for k, v in start.items()
                           if k not in ("event", "ts", "run"))
        sections.append(f"run {start.get('run', '?')}: {fields}")

    epochs = [e for e in events if e["event"] == "epoch"]
    methods = sorted({(e.get("run", "?"), e.get("method", "?"))
                      for e in epochs})
    for run, method in methods:
        rows = [e for e in epochs
                if e.get("run", "?") == run and e.get("method", "?") == method]
        header = f"== training: {method} (run {run}, {len(rows)} epochs) =="
        summary = (f"mean epoch time {_mean(rows, 'epoch_seconds'):.2f}s, "
                   f"final loss {rows[-1].get('loss', float('nan')):.4f}")
        sections.append("\n".join([header, _epoch_table(rows), summary]))

    evals = [e for e in events if e["event"] == "eval"]
    if evals:
        lines = ["== evaluation =="]
        for event in evals:
            fields = ", ".join(f"{k}={v}" for k, v in event.items()
                               if k not in ("event", "ts", "run"))
            lines.append(f"  {fields}")
        sections.append("\n".join(lines))

    traces = [e for e in events if e["event"] == "trace"]
    if traces and traces[-1].get("aggregate"):
        aggregate = traces[-1]["aggregate"]
        lines = ["== spans ==",
                 f"{'span':<32}{'calls':>8}{'total':>12}"]
        for name in sorted(aggregate,
                           key=lambda n: -aggregate[n]["total_s"]):
            entry = aggregate[name]
            lines.append(f"{name:<32}{int(entry['calls']):>8}"
                         f"{entry['total_s']:>11.3f}s")
        sections.append("\n".join(lines))

    ends = [e for e in events if e["event"] == "run_end"]
    for end in ends:
        fields = ", ".join(f"{k}={v}" for k, v in end.items()
                           if k not in ("event", "ts", "run"))
        sections.append(f"run {end.get('run', '?')} finished: {fields}")

    if not sections:
        return "(no renderable events)"
    return "\n\n".join(sections)


def render_run_report(path: str | Path) -> str:
    """``load_events`` + ``render_report`` for one log file."""
    return render_report(load_events(path))
