"""Nested timed spans: where does a run actually spend its time.

A :class:`Tracer` records a tree of wall-clock spans. Instrumented code
opens a span with ``with tracer.span("pretrain/epoch"):``; spans opened
while another is active become its children, so one traced ``pretrain``
produces a tree like::

    pretrain/epoch                      ×4     3.210s
      pretrain/batch                    ×28    3.105s
        lipschitz/generator             ×28    1.422s
        augment/sample                  ×28    0.310s

Two export forms are provided: :meth:`Tracer.span_tree` (the nested
structure, JSON-encodable — this is what the ``trace`` event in a run log
carries) and :meth:`Tracer.aggregate` (per-name call counts and total
seconds, for tables). :data:`NULL_TRACER` is a shared no-op whose
``span()`` returns a reusable empty context manager, so instrumentation
left in library code costs two attribute lookups when tracing is off.
"""

from __future__ import annotations

import time

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER",
           "render_span_tree"]


class Span:
    """One timed region: name, start/end timestamps and child spans."""

    __slots__ = ("name", "start", "end", "children", "error")

    def __init__(self, name: str, start: float):
        self.name = name
        self.start = start
        self.end: float | None = None
        self.children: list["Span"] = []
        self.error: str | None = None

    @property
    def duration(self) -> float:
        """Elapsed seconds; 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    @property
    def self_seconds(self) -> float:
        """Duration not covered by child spans (floored at 0)."""
        return max(0.0, self.duration
                   - sum(child.duration for child in self.children))

    def to_dict(self) -> dict:
        """JSON-encodable nested representation."""
        node: dict = {"name": self.name,
                      "duration_s": round(self.duration, 6)}
        if self.error is not None:
            node["error"] = self.error
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node


class _SpanContext:
    """Context manager that opens/closes one span on its tracer's stack.

    Exception-safe: a raising span body still closes the span (so the
    tracer never accumulates dangling open spans) and stamps the
    exception type onto the span's ``error`` field before the exception
    propagates.
    """

    __slots__ = ("_tracer", "_name", "_span")

    def __init__(self, tracer: "Tracer", name: str):
        self._tracer = tracer
        self._name = name

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._span.error = exc_type.__name__
        self._tracer._close(self._span)


class Tracer:
    """Records nested spans into a forest of completed root spans.

    Parameters
    ----------
    clock:
        Monotonic time source (injectable for tests); defaults to
        :func:`time.perf_counter`.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    def span(self, name: str) -> _SpanContext:
        """Context manager timing one region; nests under any open span."""
        return _SpanContext(self, name)

    def _open(self, name: str) -> Span:
        span = Span(name, self._clock())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        # Tolerate mis-nested exits (e.g. a generator suspended mid-span):
        # pop up to and including the span being closed.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> int:
        """Number of spans currently open (0 between well-nested runs)."""
        return len(self._stack)

    def span_tree(self) -> list[dict]:
        """Completed root spans as nested JSON-encodable dicts."""
        return [span.to_dict() for span in self.roots]

    def aggregate(self) -> dict[str, dict[str, float]]:
        """Per-span-name totals: ``{name: {calls, total_s, errors}}``."""
        totals: dict[str, dict[str, float]] = {}
        stack = list(self.roots)
        while stack:
            span = stack.pop()
            entry = totals.setdefault(span.name, {"calls": 0, "total_s": 0.0,
                                                  "errors": 0})
            entry["calls"] += 1
            entry["total_s"] += span.duration
            if span.error is not None:
                entry["errors"] += 1
            stack.extend(span.children)
        return totals

    def reset(self) -> None:
        self.roots.clear()
        self._stack.clear()


class _NullSpanContext:
    """Shared reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Tracer that records nothing; ``span()`` returns a shared no-op."""

    roots: list = []
    open_spans = 0

    def span(self, name: str) -> _NullSpanContext:
        return _NULL_SPAN

    def span_tree(self) -> list:
        return []

    def aggregate(self) -> dict:
        return {}

    def reset(self) -> None:
        return None


NULL_TRACER = NullTracer()


def render_span_tree(tracer: Tracer, *, indent: int = 2) -> str:
    """Human-readable span tree with durations, one span per line.

    Sibling spans of the same name are merged into one line carrying the
    call count and summed duration, matching the module docstring's shape.
    """
    lines = [f"{'span':<44}{'calls':>7}{'total':>10}"]

    def render(spans: list[Span], depth: int) -> None:
        merged: dict[str, dict] = {}
        for span in spans:
            entry = merged.setdefault(
                span.name, {"calls": 0, "total": 0.0, "children": []})
            entry["calls"] += 1
            entry["total"] += span.duration
            entry["children"].extend(span.children)
        for name, entry in merged.items():
            label = " " * (indent * depth) + name
            lines.append(f"{label:<44}{entry['calls']:>6}×"
                         f"{entry['total']:>9.3f}s")
            render(entry["children"], depth + 1)

    render(tracer.roots, 0)
    return "\n".join(lines)
