"""Render EXPERIMENTS.md from the JSON results the benches write.

Every bench saves machine-readable results under ``results/``; this module
assembles them into the per-experiment markdown report (paper-vs-measured
for every table and figure), so the committed EXPERIMENTS.md is always
regenerable with::

    python -c "from repro.bench.report import write_experiments_md; \
               write_experiments_md()"
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..data.io import atomic_write
from .harness import average_ranks, results_dir
from .specs import (
    SENSITIVITY_OPTIMA,
    TABLE3_DATASETS,
    TABLE3_PAPER,
    TABLE4_DATASETS,
    TABLE4_PAPER,
    TABLE5_PAPER,
    TABLE6_PAPER,
)

__all__ = ["write_experiments_md", "render_experiments_md"]

_HEADER = """# EXPERIMENTS — paper vs measured

Reproduction of every table and figure in the evaluation section of
*SGCL: Semantic-aware Graph Contrastive Learning with Lipschitz Graph
Augmentation* (ICDE 2024). Numbers are **not expected to match the paper's
absolute values**: the original testbed used the real TU / Zinc-2M /
MoleculeNet datasets on GPUs; this reproduction runs seeded synthetic
stand-ins (DESIGN.md §2) at CPU scale. The claims under reproduction are the
*shapes*: who wins, rough orderings, where sensitivity curves peak.

All measured numbers below were produced by `pytest benchmarks/
--benchmark-only`; each bench also saves its raw output as JSON under
`results/`. Regenerate this file with
`python -c "from repro.bench.report import write_experiments_md; write_experiments_md()"`.

## Summary of shape checks

| claim (paper) | reproduced? | where |
|---|---|---|
| SGCL has the best average rank among 11 unsupervised methods | **yes** — best measured A.R. | Table III |
| Lipschitz augmentation beats random node dropping and the learnable view generator (w/o VG < w/o LGA < full) | **yes** — full SGCL above every ablation | Table V |
| Every component (SRL, L_c, L_W) contributes | **yes** — all ablations below full SGCL | Table V |
| Pre-training helps at low label rates | **partially** — granularity-limited at the committed scale | Table VI |
| Sensitivity peaks near ρ=0.9, τ=0.2, λ_c=0.01, λ_W=0.01 | **partially** — transfer sweeps peak at/near the paper's optima; λ sweeps are flat in the small unsupervised setting | Fig. 4–5 |
| SGCL robust to encoder choice | **mostly** — GCN/SAGE/GAT within 2 points; GIN (BatchNorm) needs more epochs than the committed budget on two datasets | Fig. 6 |
| Lipschitz constants track semantic structure better than RGCL probabilities | **yes** — stroke AUC 0.89 vs 0.61 | Fig. 7 |
| Attention approximation is asymptotically cheaper than the mask mechanism | **yes** — exact/approx cost ratio grows 5× → 112× with graph size | §V timing |
| CLINTOX degrades under distribution shift | **yes** — shifted CLINTOX scores far below in-distribution tasks | Table IV / OOD bench |

## Caveats at the committed scale

* Workloads are deliberately tiny (tens-to-hundreds of graphs, 3–5 epochs,
  1–2 seeds) so the full suite finishes in ~10 minutes on CPU. Variance is
  correspondingly large — Table IV/VI cells move by several points across
  seeds, and some easy datasets (RDT-B) saturate at 100 %. Scale up with
  `REPRO_SCALE` for tighter estimates.
* λ_c/λ_W sweeps are flat in the unsupervised setting: with ≤5 epochs the
  complement-loss and weight-decay terms are small relative to L_s. The
  transfer sweeps (Fig. 5) do resolve the paper's optima.
* The OOD adaptation bench reproduces the CLINTOX failure; the
  adapt-then-continue remedy gives only a small, noise-level recovery at
  this scale.
"""


def _load(name: str) -> dict | None:
    path = results_dir() / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())["results"]


def _fmt(cell) -> str:
    if cell is None:
        return "–"
    if isinstance(cell, (list, tuple)):
        return f"{cell[0]:.1f}±{cell[1]:.1f}"
    return f"{float(cell):.1f}"


def _method_table(results: dict, paper: dict | None,
                  datasets: list[str]) -> list[str]:
    lines = ["| Method | " + " | ".join(datasets) + " | A.R. |",
             "|---" * (len(datasets) + 2) + "|"]
    points = {m: {d: (row[d][0] if d in row else None) for d in datasets}
              for m, row in results.items()}
    ranks = average_ranks(points, datasets)
    paper_ranks = average_ranks(paper, datasets) if paper else {}
    for method, row in results.items():
        cells = []
        for dataset in datasets:
            measured = _fmt(row.get(dataset))
            reference = (paper or {}).get(method, {}).get(dataset)
            cells.append(f"{measured} [{_fmt(reference)}]")
        rank = f"{ranks[method]:.1f}"
        if method in paper_ranks and not np.isnan(paper_ranks[method]):
            rank += f" [{paper_ranks[method]:.1f}]"
        lines.append(f"| {method} | " + " | ".join(cells) + f" | {rank} |")
    lines.append("")
    lines.append("*cells: measured±std [paper]; A.R. = average rank*")
    return lines


def render_experiments_md() -> str:
    """Build the full markdown report from whatever results exist."""
    parts: list[str] = [_HEADER]

    table3 = _load("table3_unsupervised")
    parts.append("\n## Table III — unsupervised accuracy (%) on TU datasets\n")
    if table3:
        parts.extend(_method_table(table3, TABLE3_PAPER, TABLE3_DATASETS))
        ranks = average_ranks(
            {m: {d: v[d][0] for d in TABLE3_DATASETS if d in v}
             for m, v in table3.items()}, TABLE3_DATASETS)
        best = min(ranks, key=ranks.get)
        parts.append(f"\n**Shape check:** best measured average rank: "
                     f"**{best}** (paper: SGCL, A.R. 1.5).")
    else:
        parts.append("_results/table3_unsupervised.json not found — run the "
                     "bench first._")

    table4 = _load("table4_transfer")
    parts.append("\n## Table IV — transfer learning ROC-AUC (%)\n")
    if table4:
        parts.extend(_method_table(table4, TABLE4_PAPER, TABLE4_DATASETS))
        means = {m: float(np.nanmean([row[d][0] for d in TABLE4_DATASETS
                                      if d in row]))
                 for m, row in table4.items()}
        best = max(means, key=means.get)
        parts.append(f"\n**Shape check:** best measured mean ROC-AUC: "
                     f"**{best}** ({means[best]:.1f} %); paper: SGCL best "
                     "average rank. Per-dataset ranks are noisy at the "
                     "committed seed count — the mean is the stabler "
                     "statistic.")
    else:
        parts.append("_results/table4_transfer.json not found._")

    table5 = _load("table5_ablation")
    parts.append("\n## Table V — ablation study (mean ROC-AUC %, transfer)\n")
    if table5:
        parts.append("| Variant | measured | paper (mean) |")
        parts.append("|---|---|---|")
        for method, cell in table5.items():
            parts.append(f"| {method} | {_fmt(cell)} | "
                         f"{TABLE5_PAPER.get(method, float('nan')):.1f} |")
        full = table5.get("SGCL", (0, 0))[0]
        wo_vg = table5.get("SGCL w/o VG", (0, 0))[0]
        parts.append(f"\n**Shape check:** full SGCL {full:.1f} vs w/o VG "
                     f"{wo_vg:.1f} (paper: full best, w/o VG worst).")
    else:
        parts.append("_results/table5_ablation.json not found._")

    table6 = _load("table6_semisupervised")
    parts.append("\n## Table VI — semi-supervised accuracy (%)\n")
    if table6:
        columns = ["NCI1(1%)", "COLLAB(1%)", "NCI1(10%)", "COLLAB(10%)"]
        paper6 = {m: TABLE6_PAPER.get(
            "No pre-train" if m == "No Pre-Train" else m, {})
            for m in table6}
        parts.extend(_method_table(table6, paper6, columns))
    else:
        parts.append("_results/table6_semisupervised.json not found._")

    for name, title in [("fig4_sensitivity_unsupervised",
                         "Figure 4 — sensitivity (unsupervised)"),
                        ("fig5_sensitivity_transfer",
                         "Figure 5 — sensitivity (transfer)")]:
        curves = _load(name)
        parts.append(f"\n## {title}\n")
        if curves:
            parts.append("| param | sweep (value: score) | measured peak |"
                         " paper optimum |")
            parts.append("|---|---|---|---|")
            for param, curve in curves.items():
                best = max(curve, key=lambda k: curve[k])
                sweep = ", ".join(f"{v}: {s:.1f}" for v, s in curve.items())
                parts.append(f"| {param} | {sweep} | {best} | "
                             f"{SENSITIVITY_OPTIMA[param]} |")
        else:
            parts.append(f"_results/{name}.json not found._")

    fig6 = _load("fig6_encoders")
    parts.append("\n## Figure 6 — encoder architectures\n")
    if fig6:
        datasets = sorted(next(iter(fig6.values())))
        parts.extend(_method_table(fig6, None, datasets))
        means = {enc: float(np.mean([v[0] for v in row.values()]))
                 for enc, row in fig6.items()}
        best = max(means, key=means.get)
        parts.append(f"\n**Shape check:** best mean encoder: **{best}** "
                     "(paper: GIN slightly best; all encoders close).")
    else:
        parts.append("_results/fig6_encoders.json not found._")

    fig7 = _load("fig7_visualization")
    parts.append("\n## Figure 7 — MNIST-Superpixel visualisation\n")
    if fig7:
        parts.append(
            f"Stroke-identification ROC-AUC (higher = node scores track the "
            f"digit strokes better): **SGCL Lipschitz constants "
            f"{fig7['sgcl_mean']:.3f}** vs RGCL probabilities "
            f"{fig7['rgcl_mean']:.3f}. ASCII score maps: "
            f"`results/fig7_digits.txt`. Paper: the Lipschitz distribution "
            "matches the original digits more closely than RGCL's.")
    else:
        parts.append("_results/fig7_visualization.json not found._")

    timing = _load("timing_complexity")
    parts.append("\n## §V timing — generator complexity\n")
    if timing:
        parts.append("| avg nodes | exact (s) | approx (s) | ratio |")
        parts.append("|---|---|---|---|")
        for row in timing:
            parts.append(f"| {row['avg_nodes']:.1f} | {row['exact']:.3f} | "
                         f"{row['approx']:.3f} | {row['ratio']:.1f}× |")
        parts.append("\n**Shape check:** the exact/approx cost ratio grows "
                     "with graph size, matching the paper's complexity "
                     "analysis (O(|V||E|²) → O(|E|²+|V|²)).")
    else:
        parts.append("_results/timing_complexity.json not found._")

    design = _load("ablation_design")
    parts.append("\n## Reproduction design-choice ablations (DESIGN.md §5)\n")
    if design:
        parts.append("| variant | accuracy % | semantic AUC |")
        parts.append("|---|---|---|")
        for name, row in design.items():
            parts.append(f"| {name} | {row['accuracy']:.2f} | "
                         f"{row['semantic_auc']:.3f} |")
    else:
        parts.append("_results/ablation_design.json not found._")

    parts.append("")
    return "\n".join(parts)


def write_experiments_md(path: str | Path | None = None) -> Path:
    """Write the report next to the repository root (or to ``path``).

    Atomic (temp file + rename) like every other result writer, so an
    interrupted regeneration cannot truncate the committed EXPERIMENTS.md.
    """
    if path is None:
        path = Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"
    path = Path(path)
    with atomic_write(path) as tmp:
        tmp.write_text(render_experiments_md())
    return path
