"""Benchmark harness: experiment runners, paper numbers, reporting."""

from . import specs
from .harness import (
    average_ranks,
    print_comparison_table,
    results_dir,
    run_kernel_unsupervised,
    run_semisupervised,
    run_transfer,
    run_unsupervised,
    save_results,
)

__all__ = [
    "specs",
    "run_unsupervised",
    "run_kernel_unsupervised",
    "run_transfer",
    "run_semisupervised",
    "average_ranks",
    "print_comparison_table",
    "save_results",
    "results_dir",
]
