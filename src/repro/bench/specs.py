"""Benchmark specifications: paper-reported numbers and experiment grids.

Every table/figure of the paper's evaluation is described here so the
benchmark harness can print *paper vs measured* side by side. Values are
transcribed from the paper (Tables III–VI, Figures 4–6); ``None`` marks the
"–" cells of Table III.
"""

from __future__ import annotations

import os

__all__ = [
    "TABLE3_PAPER",
    "TABLE3_DATASETS",
    "TABLE3_METHODS",
    "TABLE4_PAPER",
    "TABLE4_DATASETS",
    "TABLE4_METHODS",
    "TABLE5_PAPER",
    "TABLE5_METHODS",
    "TABLE6_PAPER",
    "SENSITIVITY_GRIDS",
    "FIG6_ENCODERS",
    "FIG6_DATASETS",
    "bench_scale",
]


def bench_scale() -> float:
    """Global workload multiplier, settable via ``REPRO_SCALE`` (default 1.0).

    Benches are written to finish on a laptop CPU at scale 1.0; raising the
    scale grows dataset sizes, epochs and seed counts proportionally.
    """
    return float(os.environ.get("REPRO_SCALE", "1.0"))


# ----------------------------------------------------------------------
# Table III — unsupervised learning accuracy (%) on TU datasets
# ----------------------------------------------------------------------
TABLE3_DATASETS = ["MUTAG", "DD", "PROTEINS", "NCI1", "COLLAB", "RDT-B",
                   "RDT-M-5K", "IMDB-B"]

TABLE3_METHODS = ["GL", "WL", "DGK", "InfoGraph", "GraphCL", "JOAOv2",
                  "AD-GCL", "SimGRACE", "RGCL", "AutoGCL", "SGCL"]

TABLE3_PAPER: dict[str, dict[str, float | None]] = {
    "GL": {"MUTAG": 81.66, "DD": None, "PROTEINS": None, "NCI1": None,
           "COLLAB": None, "RDT-B": 77.34, "RDT-M-5K": 41.01, "IMDB-B": 65.87},
    "WL": {"MUTAG": 80.72, "DD": None, "PROTEINS": 72.92, "NCI1": 80.01,
           "COLLAB": None, "RDT-B": 68.82, "RDT-M-5K": 46.06, "IMDB-B": 72.30},
    "DGK": {"MUTAG": 87.44, "DD": None, "PROTEINS": 73.30, "NCI1": 80.31,
            "COLLAB": None, "RDT-B": 78.04, "RDT-M-5K": 41.27, "IMDB-B": 66.96},
    "InfoGraph": {"MUTAG": 89.01, "DD": 72.85, "PROTEINS": 74.44,
                  "NCI1": 76.20, "COLLAB": 70.05, "RDT-B": 82.50,
                  "RDT-M-5K": 53.46, "IMDB-B": 73.03},
    "GraphCL": {"MUTAG": 86.80, "DD": 78.62, "PROTEINS": 74.39,
                "NCI1": 77.87, "COLLAB": 71.36, "RDT-B": 89.53,
                "RDT-M-5K": 55.99, "IMDB-B": 71.14},
    "JOAOv2": {"MUTAG": 87.67, "DD": 77.40, "PROTEINS": 74.07,
               "NCI1": 78.36, "COLLAB": 69.33, "RDT-B": 86.42,
               "RDT-M-5K": 56.03, "IMDB-B": 70.83},
    "AD-GCL": {"MUTAG": 88.74, "DD": 75.79, "PROTEINS": 73.28,
               "NCI1": 73.91, "COLLAB": 72.02, "RDT-B": 90.07,
               "RDT-M-5K": 54.33, "IMDB-B": 70.21},
    "SimGRACE": {"MUTAG": 89.01, "DD": 77.44, "PROTEINS": 75.33,
                 "NCI1": 79.12, "COLLAB": 71.72, "RDT-B": 89.51,
                 "RDT-M-5K": 55.91, "IMDB-B": 71.30},
    "RGCL": {"MUTAG": 87.66, "DD": 78.86, "PROTEINS": 75.03,
             "NCI1": 78.14, "COLLAB": 70.92, "RDT-B": 90.34,
             "RDT-M-5K": 56.38, "IMDB-B": 71.85},
    "AutoGCL": {"MUTAG": 88.21, "DD": 77.81, "PROTEINS": 75.12,
                "NCI1": 79.16, "COLLAB": 71.09, "RDT-B": 87.35,
                "RDT-M-5K": 55.51, "IMDB-B": 72.05},
    "SGCL": {"MUTAG": 89.74, "DD": 79.71, "PROTEINS": 75.37,
             "NCI1": 79.28, "COLLAB": 72.25, "RDT-B": 90.77,
             "RDT-M-5K": 56.51, "IMDB-B": 72.14},
}

# ----------------------------------------------------------------------
# Table IV — transfer learning ROC-AUC (%) on MoleculeNet tasks
# ----------------------------------------------------------------------
TABLE4_DATASETS = ["BBBP", "TOX21", "TOXCAST", "SIDER", "CLINTOX", "MUV",
                   "HIV", "BACE"]

TABLE4_METHODS = ["No Pre-Train", "AttrMasking", "ContextPred", "GraphCL",
                  "JOAOv2", "AD-GCL", "RGCL", "AutoGCL", "SGCL"]

TABLE4_PAPER: dict[str, dict[str, float]] = {
    "No Pre-Train": {"BBBP": 65.8, "TOX21": 74.0, "TOXCAST": 63.4,
                     "SIDER": 57.3, "CLINTOX": 58.0, "MUV": 71.8,
                     "HIV": 75.3, "BACE": 70.1},
    "AttrMasking": {"BBBP": 64.3, "TOX21": 76.7, "TOXCAST": 64.2,
                    "SIDER": 61.0, "CLINTOX": 71.8, "MUV": 74.7,
                    "HIV": 77.2, "BACE": 79.3},
    "ContextPred": {"BBBP": 68.0, "TOX21": 75.7, "TOXCAST": 63.9,
                    "SIDER": 60.9, "CLINTOX": 65.9, "MUV": 75.8,
                    "HIV": 77.3, "BACE": 79.6},
    "GraphCL": {"BBBP": 69.68, "TOX21": 73.87, "TOXCAST": 62.40,
                "SIDER": 60.53, "CLINTOX": 75.99, "MUV": 69.80,
                "HIV": 78.47, "BACE": 75.38},
    "JOAOv2": {"BBBP": 71.39, "TOX21": 74.27, "TOXCAST": 63.16,
               "SIDER": 60.49, "CLINTOX": 80.97, "MUV": 73.67,
               "HIV": 77.51, "BACE": 75.49},
    "AD-GCL": {"BBBP": 68.26, "TOX21": 73.56, "TOXCAST": 63.10,
               "SIDER": 59.24, "CLINTOX": 77.63, "MUV": 74.94,
               "HIV": 75.45, "BACE": 75.02},
    "RGCL": {"BBBP": 71.42, "TOX21": 75.20, "TOXCAST": 63.33,
             "SIDER": 61.38, "CLINTOX": 83.38, "MUV": 76.66,
             "HIV": 77.90, "BACE": 76.03},
    "AutoGCL": {"BBBP": 68.65, "TOX21": 72.92, "TOXCAST": 61.01,
                "SIDER": 62.04, "CLINTOX": 82.90, "MUV": 70.15,
                "HIV": 75.1, "BACE": 74.43},
    "SGCL": {"BBBP": 72.41, "TOX21": 76.24, "TOXCAST": 64.58,
             "SIDER": 63.02, "CLINTOX": 81.86, "MUV": 79.81,
             "HIV": 78.76, "BACE": 77.66},
}

# ----------------------------------------------------------------------
# Table V — ablations (ROC-AUC %, transfer). Paper reports all 8 datasets;
# the mean row below is what the bench compares shapes against.
# ----------------------------------------------------------------------
TABLE5_METHODS = ["SGCL w/o VG", "SGCL w/o LGA", "SGCL w/o SRL",
                  "SGCL w/o Lc", "SGCL w/o LW", "SGCL"]

# Mean over the 8 downstream datasets, computed from the paper's Table V
# text: full SGCL best; w/o VG worst (−4.21 %), w/o LGA −3.28 %,
# w/o SRL −1.18 %, w/o LW −1.91 %; w/o Lc also below full.
TABLE5_PAPER: dict[str, float] = {
    "SGCL w/o VG": 69.9, "SGCL w/o LGA": 70.8, "SGCL w/o SRL": 72.9,
    "SGCL w/o Lc": 72.4, "SGCL w/o LW": 72.2, "SGCL": 74.0,
}

# ----------------------------------------------------------------------
# Table VI — semi-supervised accuracy (%) at 1 % / 10 % label rates
# ----------------------------------------------------------------------
TABLE6_PAPER: dict[str, dict[str, float]] = {
    "No pre-train": {"NCI1(1%)": 60.72, "COLLAB(1%)": 57.46,
                     "NCI1(10%)": 73.72, "COLLAB(10%)": 73.71},
    "GAE": {"NCI1(1%)": 61.63, "COLLAB(1%)": 63.20,
            "NCI1(10%)": 74.36, "COLLAB(10%)": 75.09},
    "Infomax": {"NCI1(1%)": 62.72, "COLLAB(1%)": 61.70,
                "NCI1(10%)": 74.86, "COLLAB(10%)": 73.76},
    "GraphCL": {"NCI1(1%)": 62.55, "COLLAB(1%)": 64.57,
                "NCI1(10%)": 74.63, "COLLAB(10%)": 74.23},
    "JOAOv2": {"NCI1(1%)": 62.52, "COLLAB(1%)": 64.51,
               "NCI1(10%)": 74.48, "COLLAB(10%)": 75.30},
    "SimGRACE": {"NCI1(1%)": 64.21, "COLLAB(1%)": 64.28,
                 "NCI1(10%)": 74.60, "COLLAB(10%)": 74.74},
    "AutoGCL": {"NCI1(1%)": 64.38, "COLLAB(1%)": 65.37,
                "NCI1(10%)": 73.75, "COLLAB(10%)": 77.16},
    "SGCL": {"NCI1(1%)": 64.99, "COLLAB(1%)": 65.62,
             "NCI1(10%)": 75.64, "COLLAB(10%)": 75.82},
}

# ----------------------------------------------------------------------
# Figures 4 & 5 — hyper-parameter sensitivity grids (§VI.A.3 search spaces)
# ----------------------------------------------------------------------
SENSITIVITY_GRIDS: dict[str, list[float]] = {
    "lambda_c": [0.0001, 0.001, 0.005, 0.01, 0.05, 0.1],
    "lambda_w": [0.001, 0.01, 0.05, 0.1, 0.2, 0.5],
    "rho": [0.5, 0.6, 0.7, 0.8, 0.9],
    "tau": [0.1, 0.2, 0.3, 0.4, 0.5],
}

# Paper-chosen optima (the sweep curves peak here).
SENSITIVITY_OPTIMA = {"lambda_c": 0.01, "lambda_w": 0.01, "rho": 0.9,
                      "tau": 0.2}

# ----------------------------------------------------------------------
# Figure 6 — encoder architecture sweep
# ----------------------------------------------------------------------
FIG6_ENCODERS = ["gcn", "sage", "gat", "gin"]
FIG6_DATASETS = ["MUTAG", "PROTEINS", "DD", "IMDB-B"]

# Paper's qualitative finding: GIN slightly best, all encoders close.
FIG6_PAPER_NOTE = ("GIN slightly outperforms GCN/GraphSAGE/GAT; SGCL is "
                   "robust to the encoder choice (Fig. 6)")
