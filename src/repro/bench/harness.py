"""Benchmark harness: seeded experiment runners and paper-vs-measured tables.

Each ``run_*`` function executes one cell of a paper table (method ×
dataset) across seeds and returns ``(mean, std)`` in percent. The
``print_comparison_table`` helper renders measured numbers next to the
paper's, including the average-rank (A.R.) column the paper reports, and
``save_results`` appends machine-readable JSON under ``results/``.

Workloads are scaled-down by default (synthetic datasets, few epochs) so the
whole suite finishes on CPU; absolute numbers are therefore not expected to
match the paper — the tables exist to compare *shape* (who wins, rough
ordering). See EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from ..baselines import kernel_feature_map, make_method
from ..data import (
    label_rate_split,
    load_dataset,
    scaffold_split,
    train_test_split,
)
from ..data.io import atomic_write
from ..obs import current
from ..eval import (
    cross_validated_accuracy,
    embed_dataset,
    finetune_classifier,
    finetune_multitask,
    mean_std,
)

__all__ = [
    "run_unsupervised",
    "run_kernel_unsupervised",
    "run_transfer",
    "run_semisupervised",
    "average_ranks",
    "print_comparison_table",
    "save_results",
    "results_dir",
]


def results_dir() -> Path:
    """Directory for machine-readable benchmark outputs."""
    root = Path(os.environ.get("REPRO_RESULTS_DIR",
                               Path(__file__).resolve().parents[3] / "results"))
    root.mkdir(parents=True, exist_ok=True)
    return root


# ----------------------------------------------------------------------
# Protocol runners
# ----------------------------------------------------------------------
def run_unsupervised(method: str, dataset_name: str, *, seeds: list[int],
                     scale: float = 0.05, node_scale: float = 1.0,
                     epochs: int = 5, folds: int = 5,
                     classifier: str = "logreg",
                     method_overrides: dict | None = None
                     ) -> tuple[float, float]:
    """Unsupervised protocol (Table III): pretrain → embed → k-fold CV.

    Follows §VI.B: the encoder pre-trains on 90 % of the data treated as
    unlabeled; embeddings of all graphs are then classified with k-fold CV.
    Returns accuracy mean/std (%) over seeds.
    """
    scores = []
    for seed in seeds:
        dataset = load_dataset(dataset_name, seed=seed, scale=scale,
                               node_scale=node_scale)
        rng = np.random.default_rng(seed)
        pretrain_idx, _ = train_test_split(len(dataset), 0.1, rng)
        model = make_method(method, dataset.num_features, seed=seed,
                            **(method_overrides or {}))
        model.pretrain([dataset[i] for i in pretrain_idx], epochs=epochs)
        embeddings = embed_dataset(model.encoder, dataset)
        accuracy, _ = cross_validated_accuracy(
            embeddings, dataset.labels(), k=folds, classifier=classifier,
            seed=seed)
        scores.append(accuracy * 100.0)
        current().event("eval", protocol="unsupervised", method=method,
                        dataset=dataset_name, seed=seed, accuracy=accuracy)
    return mean_std(scores)


def run_kernel_unsupervised(kernel: str, dataset_name: str, *,
                            seeds: list[int], scale: float = 0.05,
                            node_scale: float = 1.0, folds: int = 5,
                            classifier: str = "logreg"
                            ) -> tuple[float, float]:
    """Kernel-method branch of Table III: explicit feature map → k-fold CV."""
    scores = []
    for seed in seeds:
        dataset = load_dataset(dataset_name, seed=seed, scale=scale,
                               node_scale=node_scale)
        features = kernel_feature_map(kernel, dataset.graphs)
        accuracy, _ = cross_validated_accuracy(
            features, dataset.labels(), k=folds, classifier=classifier,
            seed=seed)
        scores.append(accuracy * 100.0)
    return mean_std(scores)


def run_transfer(method: str, downstream_name: str, *, seeds: list[int],
                 pretrain_scale: float = 0.1, downstream_scale: float = 0.1,
                 pretrain_epochs: int = 3, finetune_epochs: int = 8,
                 method_overrides: dict | None = None) -> tuple[float, float]:
    """Transfer protocol (Table IV): ZincLike pretrain → scaffold finetune.

    Returns ROC-AUC mean/std (%) over seeds.
    """
    scores = []
    for seed in seeds:
        corpus = load_dataset("ZINC", seed=seed, scale=pretrain_scale)
        model = make_method(method, corpus.num_features, seed=seed,
                            **(method_overrides or {}))
        model.pretrain(corpus.graphs, epochs=pretrain_epochs)
        downstream = load_dataset(downstream_name, seed=seed,
                                  scale=downstream_scale)
        splits = scaffold_split(downstream)
        rng = np.random.default_rng(seed + 1)
        auc = finetune_multitask(model.encoder, downstream, splits,
                                 epochs=finetune_epochs, rng=rng)
        if not np.isnan(auc):
            scores.append(auc * 100.0)
            current().event("eval", protocol="transfer", method=method,
                            dataset=downstream_name, seed=seed, roc_auc=auc)
    # A fully degenerate test split (possible at tiny scales) scores chance.
    return mean_std(scores) if scores else (50.0, 0.0)


def run_semisupervised(method: str, dataset_name: str, label_rate: float, *,
                       seeds: list[int], scale: float = 0.05,
                       node_scale: float = 1.0, pretrain_epochs: int = 5,
                       finetune_epochs: int = 10,
                       method_overrides: dict | None = None
                       ) -> tuple[float, float]:
    """Semi-supervised protocol (Table VI): pretrain → label-rate finetune."""
    scores = []
    for seed in seeds:
        dataset = load_dataset(dataset_name, seed=seed, scale=scale,
                               node_scale=node_scale)
        rng = np.random.default_rng(seed)
        train_idx, test_idx = train_test_split(len(dataset), 0.2, rng)
        model = make_method(method, dataset.num_features, seed=seed,
                            **(method_overrides or {}))
        model.pretrain([dataset[i] for i in train_idx],
                       epochs=pretrain_epochs)
        labels = dataset.labels()
        labelled_local = label_rate_split(labels[train_idx], label_rate, rng)
        labelled_idx = train_idx[labelled_local]
        accuracy = finetune_classifier(model.encoder, dataset, labelled_idx,
                                       test_idx, epochs=finetune_epochs,
                                       rng=rng)
        scores.append(accuracy * 100.0)
    return mean_std(scores)


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def average_ranks(table: dict[str, dict[str, float | None]],
                  datasets: list[str]) -> dict[str, float]:
    """Average rank per method across datasets (lower = better), skipping
    missing cells — the A.R. column of Tables III/IV."""
    ranks: dict[str, list[float]] = {m: [] for m in table}
    for dataset in datasets:
        scored = [(m, v[dataset]) for m, v in table.items()
                  if v.get(dataset) is not None]
        scored.sort(key=lambda kv: -kv[1])
        for position, (method, _) in enumerate(scored, start=1):
            ranks[method].append(float(position))
    return {m: float(np.mean(r)) if r else float("nan")
            for m, r in ranks.items()}


def print_comparison_table(title: str, datasets: list[str],
                           measured: dict[str, dict[str, tuple[float, float]]],
                           paper: dict[str, dict[str, float | None]] | None
                           ) -> None:
    """Render a paper-style table: one row per method, measured (±std) and
    the paper's value in brackets, plus measured/paper average ranks."""
    print(f"\n=== {title} ===")
    header = f"{'Method':<16}" + "".join(f"{d:>22}" for d in datasets) \
        + f"{'A.R.':>7}"
    print(header)
    measured_points = {m: {d: v[d][0] if d in v else None for d in datasets}
                       for m, v in measured.items()}
    measured_ranks = average_ranks(measured_points, datasets)
    paper_ranks = average_ranks(paper, datasets) if paper else {}
    for method, row in measured.items():
        cells = []
        for dataset in datasets:
            if dataset in row:
                mean, std = row[dataset]
                cell = f"{mean:5.1f}±{std:4.1f}"
            else:
                cell = "   -  "
            reference = (paper or {}).get(method, {}).get(dataset)
            cell += f" [{reference:5.1f}]" if reference is not None \
                else " [  -  ]"
            cells.append(f"{cell:>22}")
        rank = measured_ranks.get(method, float('nan'))
        paper_rank = paper_ranks.get(method)
        rank_cell = f"{rank:4.1f}"
        print(f"{method:<16}" + "".join(cells) + f"{rank_cell:>7}"
              + (f" [{paper_rank:.1f}]" if paper_rank is not None else ""))
    print("(measured ±std [paper]; A.R. = average rank, lower is better)")


def save_results(name: str, payload: dict) -> Path:
    """Write one bench's results to ``results/<name>.json`` (with metadata).

    The write is atomic (temp file + rename) so concurrent bench runs can
    never leave a truncated JSON file behind.
    """
    path = results_dir() / f"{name}.json"
    record = {
        "bench": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": payload,
    }
    with atomic_write(path) as tmp:
        tmp.write_text(json.dumps(record, indent=2, default=_jsonify))
    return path


def _jsonify(value):
    if isinstance(value, (np.floating, np.integer)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value)}")
