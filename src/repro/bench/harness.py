"""Benchmark harness: seeded experiment runners and paper-vs-measured tables.

Each ``run_*`` function executes one cell of a paper table (method ×
dataset) across seeds and returns ``(mean, std)`` in percent. The
``print_comparison_table`` helper renders measured numbers next to the
paper's, including the average-rank (A.R.) column the paper reports, and
``save_results`` appends machine-readable JSON under ``results/``.

Workloads are scaled-down by default (synthetic datasets, few epochs) so the
whole suite finishes on CPU; absolute numbers are therefore not expected to
match the paper — the tables exist to compare *shape* (who wins, rough
ordering). See EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from ..baselines import kernel_feature_map, make_method
from ..data import (
    label_rate_split,
    load_dataset,
    scaffold_split,
    train_test_split,
)
from ..data.io import atomic_write
from ..obs import current
from ..eval import (
    cross_validated_accuracy,
    embed_dataset,
    finetune_classifier,
    finetune_multitask,
    mean_std,
)

__all__ = [
    "run_unsupervised",
    "run_kernel_unsupervised",
    "run_transfer",
    "run_semisupervised",
    "average_ranks",
    "print_comparison_table",
    "save_results",
    "results_dir",
]


def results_dir() -> Path:
    """Directory for machine-readable benchmark outputs."""
    root = Path(os.environ.get("REPRO_RESULTS_DIR",
                               Path(__file__).resolve().parents[3] / "results"))
    root.mkdir(parents=True, exist_ok=True)
    return root


# ----------------------------------------------------------------------
# Protocol runners
# ----------------------------------------------------------------------
class _UnsupervisedSeedJob:
    """Picklable one-seed cell of the unsupervised protocol.

    The serial and parallel paths of :func:`run_unsupervised` both call
    this object, so a seed's accuracy depends only on the job parameters
    and the seed — never on the worker count.
    """

    def __init__(self, method: str, dataset_name: str, *, scale: float,
                 node_scale: float, epochs: int, folds: int, classifier: str,
                 method_overrides: dict | None):
        self.method = method
        self.dataset_name = dataset_name
        self.scale = scale
        self.node_scale = node_scale
        self.epochs = epochs
        self.folds = folds
        self.classifier = classifier
        self.method_overrides = method_overrides or {}

    def __call__(self, seed: int) -> float:
        dataset = load_dataset(self.dataset_name, seed=seed, scale=self.scale,
                               node_scale=self.node_scale)
        rng = np.random.default_rng(seed)
        pretrain_idx, _ = train_test_split(len(dataset), 0.1, rng)
        model = make_method(self.method, dataset.num_features, seed=seed,
                            **self.method_overrides)
        model.pretrain([dataset[i] for i in pretrain_idx],
                       epochs=self.epochs)
        embeddings = embed_dataset(model.encoder, dataset)
        accuracy, _ = cross_validated_accuracy(
            embeddings, dataset.labels(), k=self.folds,
            classifier=self.classifier, seed=seed, workers=1)
        return accuracy


def run_unsupervised(method: str, dataset_name: str, *, seeds: list[int],
                     scale: float = 0.05, node_scale: float = 1.0,
                     epochs: int = 5, folds: int = 5,
                     classifier: str = "logreg",
                     method_overrides: dict | None = None,
                     workers: int | None = None) -> tuple[float, float]:
    """Unsupervised protocol (Table III): pretrain → embed → k-fold CV.

    Follows §VI.B: the encoder pre-trains on 90 % of the data treated as
    unlabeled; embeddings of all graphs are then classified with k-fold CV.
    Returns accuracy mean/std (%) over seeds.

    ``workers`` fans the seeds out over worker processes (default:
    ``REPRO_WORKERS`` or serial); each seed is an independent deterministic
    job, so results are bit-identical for any worker count. The inner CV
    already runs inside a seed job, so folds stay serial (``workers=1``)
    to avoid nested pools.
    """
    from ..runtime import ParallelExecutor

    job = _UnsupervisedSeedJob(
        method, dataset_name, scale=scale, node_scale=node_scale,
        epochs=epochs, folds=folds, classifier=classifier,
        method_overrides=method_overrides)
    accuracies = ParallelExecutor(workers).map(job, seeds)
    scores = []
    for seed, accuracy in zip(seeds, accuracies):
        scores.append(accuracy * 100.0)
        current().event("eval", protocol="unsupervised", method=method,
                        dataset=dataset_name, seed=seed, accuracy=accuracy)
    return mean_std(scores)


def run_kernel_unsupervised(kernel: str, dataset_name: str, *,
                            seeds: list[int], scale: float = 0.05,
                            node_scale: float = 1.0, folds: int = 5,
                            classifier: str = "logreg",
                            workers: int | None = None
                            ) -> tuple[float, float]:
    """Kernel-method branch of Table III: explicit feature map → k-fold CV.

    Kernel feature maps are cheap, so ``workers`` parallelises the CV
    folds rather than the seeds.
    """
    scores = []
    for seed in seeds:
        dataset = load_dataset(dataset_name, seed=seed, scale=scale,
                               node_scale=node_scale)
        features = kernel_feature_map(kernel, dataset.graphs)
        accuracy, _ = cross_validated_accuracy(
            features, dataset.labels(), k=folds, classifier=classifier,
            seed=seed, workers=workers)
        scores.append(accuracy * 100.0)
    return mean_std(scores)


class _TransferSeedJob:
    """Picklable one-seed cell of the transfer protocol."""

    def __init__(self, method: str, downstream_name: str, *,
                 pretrain_scale: float, downstream_scale: float,
                 pretrain_epochs: int, finetune_epochs: int,
                 method_overrides: dict | None):
        self.method = method
        self.downstream_name = downstream_name
        self.pretrain_scale = pretrain_scale
        self.downstream_scale = downstream_scale
        self.pretrain_epochs = pretrain_epochs
        self.finetune_epochs = finetune_epochs
        self.method_overrides = method_overrides or {}

    def __call__(self, seed: int) -> float:
        corpus = load_dataset("ZINC", seed=seed, scale=self.pretrain_scale)
        model = make_method(self.method, corpus.num_features, seed=seed,
                            **self.method_overrides)
        model.pretrain(corpus.graphs, epochs=self.pretrain_epochs)
        downstream = load_dataset(self.downstream_name, seed=seed,
                                  scale=self.downstream_scale)
        splits = scaffold_split(downstream)
        rng = np.random.default_rng(seed + 1)
        return finetune_multitask(model.encoder, downstream, splits,
                                  epochs=self.finetune_epochs, rng=rng)


def run_transfer(method: str, downstream_name: str, *, seeds: list[int],
                 pretrain_scale: float = 0.1, downstream_scale: float = 0.1,
                 pretrain_epochs: int = 3, finetune_epochs: int = 8,
                 method_overrides: dict | None = None,
                 workers: int | None = None) -> tuple[float, float]:
    """Transfer protocol (Table IV): ZincLike pretrain → scaffold finetune.

    Returns ROC-AUC mean/std (%) over seeds. ``workers`` fans the seeds
    out (default: ``REPRO_WORKERS`` or serial) with bit-identical results.
    """
    from ..runtime import ParallelExecutor

    job = _TransferSeedJob(
        method, downstream_name, pretrain_scale=pretrain_scale,
        downstream_scale=downstream_scale, pretrain_epochs=pretrain_epochs,
        finetune_epochs=finetune_epochs, method_overrides=method_overrides)
    aucs = ParallelExecutor(workers).map(job, seeds)
    scores = []
    for seed, auc in zip(seeds, aucs):
        if not np.isnan(auc):
            scores.append(auc * 100.0)
            current().event("eval", protocol="transfer", method=method,
                            dataset=downstream_name, seed=seed, roc_auc=auc)
    # A fully degenerate test split (possible at tiny scales) scores chance.
    return mean_std(scores) if scores else (50.0, 0.0)


class _SemiSupervisedSeedJob:
    """Picklable one-seed cell of the semi-supervised protocol."""

    def __init__(self, method: str, dataset_name: str, label_rate: float, *,
                 scale: float, node_scale: float, pretrain_epochs: int,
                 finetune_epochs: int, method_overrides: dict | None):
        self.method = method
        self.dataset_name = dataset_name
        self.label_rate = label_rate
        self.scale = scale
        self.node_scale = node_scale
        self.pretrain_epochs = pretrain_epochs
        self.finetune_epochs = finetune_epochs
        self.method_overrides = method_overrides or {}

    def __call__(self, seed: int) -> float:
        dataset = load_dataset(self.dataset_name, seed=seed, scale=self.scale,
                               node_scale=self.node_scale)
        rng = np.random.default_rng(seed)
        train_idx, test_idx = train_test_split(len(dataset), 0.2, rng)
        model = make_method(self.method, dataset.num_features, seed=seed,
                            **self.method_overrides)
        model.pretrain([dataset[i] for i in train_idx],
                       epochs=self.pretrain_epochs)
        labels = dataset.labels()
        labelled_local = label_rate_split(labels[train_idx], self.label_rate,
                                          rng)
        labelled_idx = train_idx[labelled_local]
        return finetune_classifier(model.encoder, dataset, labelled_idx,
                                   test_idx, epochs=self.finetune_epochs,
                                   rng=rng)


def run_semisupervised(method: str, dataset_name: str, label_rate: float, *,
                       seeds: list[int], scale: float = 0.05,
                       node_scale: float = 1.0, pretrain_epochs: int = 5,
                       finetune_epochs: int = 10,
                       method_overrides: dict | None = None,
                       workers: int | None = None) -> tuple[float, float]:
    """Semi-supervised protocol (Table VI): pretrain → label-rate finetune.

    ``workers`` fans the seeds out (default: ``REPRO_WORKERS`` or serial)
    with bit-identical results.
    """
    from ..runtime import ParallelExecutor

    job = _SemiSupervisedSeedJob(
        method, dataset_name, label_rate, scale=scale, node_scale=node_scale,
        pretrain_epochs=pretrain_epochs, finetune_epochs=finetune_epochs,
        method_overrides=method_overrides)
    accuracies = ParallelExecutor(workers).map(job, seeds)
    return mean_std([a * 100.0 for a in accuracies])


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def average_ranks(table: dict[str, dict[str, float | None]],
                  datasets: list[str]) -> dict[str, float]:
    """Average rank per method across datasets (lower = better), skipping
    missing cells — the A.R. column of Tables III/IV.

    A cell is *missing* when the method's row lacks the dataset key, holds
    ``None`` (a run that never happened) or holds NaN (a run that produced
    no usable score — e.g. a fully degenerate split); missing cells simply
    do not contribute to that method's average instead of crashing the
    table or poisoning the ranking.
    """
    ranks: dict[str, list[float]] = {m: [] for m in table}
    for dataset in datasets:
        scored = [(m, v[dataset]) for m, v in table.items()
                  if v.get(dataset) is not None
                  and not np.isnan(v[dataset])]
        scored.sort(key=lambda kv: -kv[1])
        for position, (method, _) in enumerate(scored, start=1):
            ranks[method].append(float(position))
    return {m: float(np.mean(r)) if r else float("nan")
            for m, r in ranks.items()}


def print_comparison_table(title: str, datasets: list[str],
                           measured: dict[str, dict[str, tuple[float, float]]],
                           paper: dict[str, dict[str, float | None]] | None
                           ) -> None:
    """Render a paper-style table: one row per method, measured (±std) and
    the paper's value in brackets, plus measured/paper average ranks."""
    print(f"\n=== {title} ===")
    header = f"{'Method':<16}" + "".join(f"{d:>22}" for d in datasets) \
        + f"{'A.R.':>7}"
    print(header)
    measured_points = {m: {d: v[d][0] if d in v else None for d in datasets}
                       for m, v in measured.items()}
    measured_ranks = average_ranks(measured_points, datasets)
    paper_ranks = average_ranks(paper, datasets) if paper else {}
    for method, row in measured.items():
        cells = []
        for dataset in datasets:
            if dataset in row:
                mean, std = row[dataset]
                cell = f"{mean:5.1f}±{std:4.1f}"
            else:
                cell = "   -  "
            reference = (paper or {}).get(method, {}).get(dataset)
            cell += f" [{reference:5.1f}]" if reference is not None \
                else " [  -  ]"
            cells.append(f"{cell:>22}")
        rank = measured_ranks.get(method, float('nan'))
        paper_rank = paper_ranks.get(method)
        rank_cell = f"{rank:4.1f}"
        print(f"{method:<16}" + "".join(cells) + f"{rank_cell:>7}"
              + (f" [{paper_rank:.1f}]" if paper_rank is not None else ""))
    print("(measured ±std [paper]; A.R. = average rank, lower is better)")


def save_results(name: str, payload: dict) -> Path:
    """Write one bench's results to ``results/<name>.json`` (with metadata).

    The write is atomic (temp file + rename) so concurrent bench runs can
    never leave a truncated JSON file behind.
    """
    path = results_dir() / f"{name}.json"
    record = {
        "bench": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "results": payload,
    }
    with atomic_write(path) as tmp:
        tmp.write_text(json.dumps(record, indent=2, default=_jsonify))
    return path


def _jsonify(value):
    if isinstance(value, (np.floating, np.integer)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value)}")
