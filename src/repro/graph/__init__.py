"""Graph data substrate: containers, batching, transforms."""

from .graph import Graph
from .batch import Batch
from .workspace import MessagePassingWorkspace
from .transforms import (
    add_self_loops,
    constant_features,
    degree_features,
    normalized_adjacency_weights,
    one_hot,
)

__all__ = [
    "Graph",
    "Batch",
    "MessagePassingWorkspace",
    "add_self_loops",
    "one_hot",
    "degree_features",
    "constant_features",
    "normalized_adjacency_weights",
]
