"""Graph feature transforms (degree features, one-hot labels, self-loops)."""

from __future__ import annotations

import numpy as np

from .graph import Graph

__all__ = [
    "add_self_loops",
    "one_hot",
    "degree_features",
    "constant_features",
    "normalized_adjacency_weights",
]


def add_self_loops(edge_index: np.ndarray, num_nodes: int) -> np.ndarray:
    """Append ``i → i`` for every node (GCN-style)."""
    loops = np.tile(np.arange(num_nodes, dtype=np.int64), (2, 1))
    return np.concatenate([edge_index, loops], axis=1)


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.size, num_classes))
    out[np.arange(labels.size), labels] = 1.0
    return out


def degree_features(graph: Graph, max_degree: int = 64) -> Graph:
    """Replace features with one-hot (clipped) node degree.

    The convention GraphCL and successors use for the attribute-free social
    TU datasets (COLLAB, RDT-B, RDT-M-5K, IMDB-B).
    """
    degree = np.minimum(graph.degrees().astype(np.int64), max_degree - 1)
    return Graph(one_hot(degree, max_degree), graph.edge_index, graph.y,
                 dict(graph.meta))


def constant_features(graph: Graph, dim: int = 1) -> Graph:
    """Replace features with all-ones (featureless baselines)."""
    return Graph(np.ones((graph.num_nodes, dim)), graph.edge_index, graph.y,
                 dict(graph.meta))


def normalized_adjacency_weights(edge_index: np.ndarray,
                                 num_nodes: int) -> np.ndarray:
    """Per-edge symmetric normalisation ``1/sqrt(d_src · d_dst)`` (GCN).

    ``edge_index`` must already contain self-loops if GCN semantics are
    desired; degrees are computed from the given edges.
    """
    degree = np.bincount(edge_index[0], minlength=num_nodes).astype(np.float64)
    degree = np.maximum(degree, 1.0)
    inv_sqrt = 1.0 / np.sqrt(degree)
    return inv_sqrt[edge_index[0]] * inv_sqrt[edge_index[1]]
