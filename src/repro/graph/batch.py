"""Disjoint-union batching of graphs (PyG ``Batch`` analogue).

A batch stacks node features of all member graphs, offsets their edge
indices, and keeps a ``node_graph`` vector mapping every node to its graph
id — the index used by segment-based pooling.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .graph import Graph

__all__ = ["Batch"]


class Batch:
    """A batch of graphs as one big disconnected graph."""

    __slots__ = ("x", "edge_index", "node_graph", "num_graphs", "node_offsets",
                 "graphs", "ys", "_degrees", "_workspace")

    def __init__(self, graphs: Sequence[Graph]):
        if not graphs:
            raise ValueError("cannot batch zero graphs")
        self.graphs = list(graphs)
        self.num_graphs = len(graphs)
        sizes = np.array([g.num_nodes for g in graphs], dtype=np.int64)
        self.node_offsets = np.concatenate([[0], np.cumsum(sizes)])
        self.x = np.concatenate([g.x for g in graphs], axis=0)
        shifted = [g.edge_index + offset
                   for g, offset in zip(graphs, self.node_offsets[:-1])]
        self.edge_index = np.concatenate(shifted, axis=1) if shifted else \
            np.zeros((2, 0), dtype=np.int64)
        self.node_graph = np.repeat(np.arange(self.num_graphs), sizes)
        self.ys = [g.y for g in graphs]
        self._degrees: np.ndarray | None = None
        self._workspace = None

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.x.shape[0]

    @property
    def num_edges(self) -> int:
        return self.edge_index.shape[1]

    def __len__(self) -> int:
        return self.num_graphs

    def __repr__(self) -> str:
        return (f"Batch(num_graphs={self.num_graphs}, "
                f"num_nodes={self.num_nodes}, num_edges={self.num_edges})")

    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Per-node out-degrees across the whole batch.

        Assembled from each member graph's (cached) :meth:`Graph.degrees`,
        so repeated callers — the Lipschitz generator recomputes ``K_V``
        every step — never re-run ``np.bincount`` over the same graph.
        Bit-identical to ``np.bincount(edge_index[0], minlength=num_nodes)``
        on the batched edge index.
        """
        if self._degrees is None:
            self._degrees = np.concatenate(
                [g.degrees() for g in self.graphs])
        return self._degrees

    def workspace(self):
        """Cached :class:`~repro.graph.workspace.MessagePassingWorkspace`.

        Built lazily on first use and reused by every encoder pass (any
        layer, any epoch, forward or backward) over this batch — the
        scatter plans, self-looped edge index and GCN normalisation
        weights depend only on the batch topology, which is immutable.
        """
        if self._workspace is None:
            from .workspace import MessagePassingWorkspace
            self._workspace = MessagePassingWorkspace(
                self.edge_index, self.num_nodes,
                node_graph=self.node_graph, num_graphs=self.num_graphs)
        return self._workspace

    def labels(self) -> np.ndarray:
        """Stack graph labels into an array (int or float matrix)."""
        return np.asarray(self.ys)

    def nodes_of(self, graph_id: int) -> np.ndarray:
        """Global node indices belonging to graph ``graph_id``."""
        return np.arange(self.node_offsets[graph_id],
                         self.node_offsets[graph_id + 1])

    def unbatch_node_values(self, values: np.ndarray) -> list[np.ndarray]:
        """Split a per-node array back into per-graph chunks."""
        return [values[self.node_offsets[i]:self.node_offsets[i + 1]]
                for i in range(self.num_graphs)]
