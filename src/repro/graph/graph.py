"""Graph container — the ``G = (V, H, A)`` of the paper's §III.A.

A :class:`Graph` stores node features ``x`` (the initial representation
``H``), a directed ``edge_index`` in COO form (shape ``(2, E)``; undirected
graphs store both directions, PyG-style), an optional label ``y``, and an
arbitrary metadata dict for generator-side ground truth (e.g. which nodes
belong to the planted semantic motif).
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["Graph"]


class Graph:
    """A single attributed graph.

    Parameters
    ----------
    x:
        Node feature matrix, shape ``(num_nodes, num_features)``.
    edge_index:
        ``(2, E)`` int array of directed edges ``src → dst``. Undirected
        graphs must contain both orientations of every edge.
    y:
        Optional label — an int (graph classification) or a float vector
        (multi-task binary labels, NaN marks missing entries).
    meta:
        Optional metadata (planted motif mask, scaffold id, …). Never used by
        models; used by tests, benches and visualisation.
    """

    __slots__ = ("x", "edge_index", "y", "meta", "_degrees")

    def __init__(self, x: np.ndarray, edge_index: np.ndarray,
                 y: Any = None, meta: dict | None = None):
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"x must be 2-D (nodes × features), got {x.shape}")
        edge_index = np.asarray(edge_index, dtype=np.int64)
        if edge_index.size == 0:
            edge_index = edge_index.reshape(2, 0)
        if edge_index.shape[0] != 2:
            raise ValueError(f"edge_index must have shape (2, E), got {edge_index.shape}")
        if edge_index.size and (edge_index.min() < 0
                                or edge_index.max() >= x.shape[0]):
            raise ValueError("edge_index references nodes outside [0, num_nodes)")
        self.x = x
        self.edge_index = edge_index
        self.y = y
        self.meta = meta or {}
        self._degrees: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.x.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of directed edge entries (2× undirected edge count)."""
        return self.edge_index.shape[1]

    @property
    def num_features(self) -> int:
        return self.x.shape[1]

    def __repr__(self) -> str:
        return (f"Graph(num_nodes={self.num_nodes}, num_edges={self.num_edges}, "
                f"num_features={self.num_features}, y={self.y!r})")

    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Out-degree of every node (== in-degree for undirected graphs).

        Computed lazily once per graph and cached (graphs are treated as
        immutable after construction; every transform in this codebase
        builds a new :class:`Graph`). The returned array is marked
        read-only so a caller cannot poison the cache in place.
        """
        if self._degrees is None:
            degrees = np.bincount(self.edge_index[0],
                                  minlength=self.num_nodes).astype(np.float64)
            degrees.setflags(write=False)
            self._degrees = degrees
        return self._degrees

    def adjacency(self) -> np.ndarray:
        """Dense 0/1 adjacency matrix ``A`` (paper Eq. 5 distances use it)."""
        adjacency = np.zeros((self.num_nodes, self.num_nodes))
        adjacency[self.edge_index[0], self.edge_index[1]] = 1.0
        return adjacency

    def copy(self) -> "Graph":
        return Graph(self.x.copy(), self.edge_index.copy(), self.y,
                     dict(self.meta))

    # ------------------------------------------------------------------
    def subgraph(self, keep: np.ndarray) -> "Graph":
        """Induced subgraph on the node index array ``keep``.

        This is the node-dropping primitive Φ of Definition 3: dropped
        nodes disappear together with all incident edges; surviving nodes
        are relabelled to ``0..len(keep)-1`` preserving order.
        """
        keep = np.asarray(keep, dtype=np.int64)
        if keep.size and (keep.min() < 0 or keep.max() >= self.num_nodes):
            raise ValueError("keep indices out of range")
        relabel = -np.ones(self.num_nodes, dtype=np.int64)
        relabel[keep] = np.arange(keep.size)
        src, dst = self.edge_index
        surviving = (relabel[src] >= 0) & (relabel[dst] >= 0)
        new_edges = np.stack([relabel[src[surviving]], relabel[dst[surviving]]])
        meta = dict(self.meta)
        meta["parent_nodes"] = keep.copy()
        return Graph(self.x[keep], new_edges, self.y, meta)

    def drop_nodes(self, drop: np.ndarray) -> "Graph":
        """Complement of :meth:`subgraph` — drop the listed nodes."""
        drop_set = np.zeros(self.num_nodes, dtype=bool)
        drop_set[np.asarray(drop, dtype=np.int64)] = True
        return self.subgraph(np.flatnonzero(~drop_set))

    def to_networkx(self):
        """Convert to ``networkx.Graph`` (undirected view) for kernels/inspection."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_nodes))
        graph.add_edges_from(zip(*self.edge_index))
        return graph

    @staticmethod
    def from_networkx(nx_graph, x: np.ndarray | None = None,
                      y: Any = None, meta: dict | None = None) -> "Graph":
        """Build from ``networkx`` (nodes must be 0..n-1); symmetric edges."""
        import networkx as nx

        nodes = sorted(nx_graph.nodes())
        if nodes != list(range(len(nodes))):
            nx_graph = nx.convert_node_labels_to_integers(nx_graph, ordering="sorted")
        edges = np.array(list(nx_graph.edges()), dtype=np.int64).reshape(-1, 2)
        both = np.concatenate([edges, edges[:, ::-1]], axis=0).T
        if x is None:
            x = np.ones((nx_graph.number_of_nodes(), 1))
        return Graph(x, both, y, meta)
