"""Reusable per-batch message-passing workspaces.

Every GNN layer routes messages over the same edge set of a batch: gather
by source, scatter-add by destination, optionally over the self-looped
edge index with GCN normalisation. The index arithmetic behind those
kernels (flattened bincount bins, segment counts, the looped edge index,
normalisation weights) depends only on the batch's topology — not on
features, parameters, layer, epoch, or forward/backward direction — so it
is computed once here and shared by everything that touches the batch.

:meth:`repro.graph.Batch.workspace` caches one instance per batch;
``gnn/conv.py`` layers accept it as an optional ``workspace`` argument and
fall back to transient per-call indexing when it is absent (single-graph
utilities, hand-rolled edge sets).
"""

from __future__ import annotations

import numpy as np

from ..tensor import ScatterPlan
from .transforms import add_self_loops, normalized_adjacency_weights

__all__ = ["MessagePassingWorkspace"]


class MessagePassingWorkspace:
    """Cached scatter plans + derived edge structures for one topology.

    Parameters
    ----------
    edge_index:
        ``(2, E)`` int64 edge array of the (batched) graph.
    num_nodes:
        Total node count (segment count for node-directed scatters).
    node_graph, num_graphs:
        Optional node→graph routing for pooling plans.
    """

    __slots__ = ("edge_index", "num_nodes", "node_graph", "num_graphs",
                 "_plans", "_looped", "_gcn_norm")

    def __init__(self, edge_index: np.ndarray, num_nodes: int,
                 node_graph: np.ndarray | None = None,
                 num_graphs: int | None = None):
        self.edge_index = np.asarray(edge_index, dtype=np.int64)
        self.num_nodes = int(num_nodes)
        self.node_graph = node_graph
        self.num_graphs = num_graphs
        self._plans: dict[str, ScatterPlan] = {}
        self._looped: np.ndarray | None = None
        self._gcn_norm: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def looped(self) -> np.ndarray:
        """Edge index with self-loops appended (GCN/GAT convention)."""
        if self._looped is None:
            self._looped = add_self_loops(self.edge_index, self.num_nodes)
        return self._looped

    def gcn_norm(self) -> np.ndarray:
        """Per-edge ``1/sqrt(d_src·d_dst)`` weights over :attr:`looped`."""
        if self._gcn_norm is None:
            self._gcn_norm = normalized_adjacency_weights(
                self.looped, self.num_nodes)
        return self._gcn_norm

    def plan(self, direction: str) -> ScatterPlan:
        """Scatter plan routing edges into nodes.

        ``direction`` is one of ``src`` / ``dst`` (raw edges) or
        ``looped_src`` / ``looped_dst`` (self-looped edges).
        """
        plan = self._plans.get(direction)
        if plan is None:
            if direction == "src":
                index = self.edge_index[0]
            elif direction == "dst":
                index = self.edge_index[1]
            elif direction == "looped_src":
                index = self.looped[0]
            elif direction == "looped_dst":
                index = self.looped[1]
            else:
                raise ValueError(f"unknown plan direction {direction!r}")
            plan = ScatterPlan(index, self.num_nodes)
            self._plans[direction] = plan
        return plan

    def pool_plan(self) -> ScatterPlan | None:
        """Scatter plan routing nodes into graphs (None if unavailable)."""
        if self.node_graph is None or self.num_graphs is None:
            return None
        plan = self._plans.get("pool")
        if plan is None:
            plan = ScatterPlan(self.node_graph, self.num_graphs)
            self._plans["pool"] = plan
        return plan
