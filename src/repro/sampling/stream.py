"""Streaming subgraph minibatches with GraphSAINT normalisation.

:class:`SubgraphStream` turns a seeded sampler into an epoch-indexed
stream of :class:`~repro.graph.Batch` objects, reusing the runtime
substrate end to end: per-subgraph seeds come from
:func:`repro.runtime.task_seeds`, sampling fans out through
:class:`repro.runtime.ParallelExecutor`, and batch assembly overlaps
with training through :class:`repro.runtime.PrefetchLoader`.

Seed architecture (the determinism contract tests pin down)::

    SeedSequence([stream_seed, 0])          → normalisation pilot
    SeedSequence([stream_seed, epoch + 1])  → epoch e's base seed
    task_seeds(base, samples_per_epoch)     → one seed per subgraph

Every subgraph therefore depends only on ``(stream_seed, epoch, index)``
— never on worker count, prefetch depth, or how many epochs ran before —
so a resumed run's epoch ``e`` is bit-identical to an uninterrupted
run's, and ``repro sample`` can reproduce any single subgraph offline.

Normalisation: GraphSAINT's loss weights ``α_v ≈ 1/λ_v`` counter the
sampler's node bias (hubs land in many more subgraphs than leaves). A
pilot run of ``norm_samples`` subgraphs estimates the inclusion
frequency ``λ_v`` once per stream; :meth:`SubgraphStream.node_norms`
returns Laplace-smoothed inverse frequencies, which the node-level loss
normalises to mean 1 within each batch.
"""

from __future__ import annotations

import numpy as np

from ..obs import current
from ..runtime import ParallelExecutor, PrefetchLoader, task_seeds
from ..graph import Batch
from .samplers import SubgraphSampler

__all__ = ["SubgraphStream"]


class _SampleJob:
    """Picklable ``seed → subgraph`` worker for the process pool."""

    def __init__(self, sampler: SubgraphSampler):
        self.sampler = sampler

    def __call__(self, seed: int):
        return self.sampler.sample(seed)


def _derive_seed(stream_seed: int, tag: int) -> int:
    """One independent 64-bit seed from ``(stream_seed, tag)``."""
    sequence = np.random.SeedSequence([stream_seed, tag])
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


class SubgraphStream:
    """Epoch-indexed minibatch stream over one sampler.

    Parameters
    ----------
    sampler:
        The seeded subgraph sampler to draw from.
    samples_per_epoch:
        Subgraphs per epoch (the "dataset size" the trainer sees).
    batch_size:
        Subgraphs per :class:`Batch`.
    seed:
        Stream seed — the only source of randomness (see module docs).
    executor:
        Optional :class:`ParallelExecutor` for fan-out; default serial.
    prefetch:
        Batches assembled ahead of the consumer (0 disables).
    norm_samples:
        Pilot size for the inclusion-frequency estimate.
    """

    def __init__(self, sampler: SubgraphSampler, *,
                 samples_per_epoch: int = 64, batch_size: int = 8,
                 seed: int = 0, executor: ParallelExecutor | None = None,
                 prefetch: int = 0, norm_samples: int = 100):
        if samples_per_epoch < 1 or batch_size < 1:
            raise ValueError("samples_per_epoch and batch_size must be >= 1")
        self.sampler = sampler
        self.samples_per_epoch = samples_per_epoch
        self.batch_size = batch_size
        self.seed = seed
        self.executor = executor or ParallelExecutor(workers=1)
        self.prefetch = prefetch
        self.norm_samples = norm_samples
        self._node_norms: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def dataset(self):
        return self.sampler.dataset

    def batches_per_epoch(self) -> int:
        return -(-self.samples_per_epoch // self.batch_size)

    # ------------------------------------------------------------------
    def node_norms(self) -> np.ndarray:
        """GraphSAINT loss weights ``α_v`` over all global node ids.

        ``α_v = (P + 1) / (count_v + 1)`` from a ``norm_samples``-subgraph
        pilot (tag-0 seed stream, computed once and cached) — the Laplace
        smoothing keeps never-sampled nodes finite. Consumers normalise
        within each batch, so only the ratios matter.
        """
        if self._node_norms is None:
            with current().span("sample/norm_pilot"):
                seeds = task_seeds(_derive_seed(self.seed, 0),
                                   self.norm_samples)
                counts = np.zeros(self.dataset.num_nodes, dtype=np.int64)
                for graph in self.executor.map(_SampleJob(self.sampler),
                                               seeds):
                    counts[graph.meta["node_id"]] += 1
            self._node_norms = ((self.norm_samples + 1.0)
                                / (counts + 1.0))
        return self._node_norms

    # ------------------------------------------------------------------
    def subgraphs(self, epoch: int = 0):
        """Lazily yield epoch ``epoch``'s subgraphs in stream order."""
        seeds = task_seeds(_derive_seed(self.seed, epoch + 1),
                           self.samples_per_epoch)
        job = _SampleJob(self.sampler)
        for start in range(0, len(seeds), self.batch_size):
            yield from self.executor.map(job,
                                         seeds[start:start + self.batch_size])

    def _assemble(self, epoch: int):
        seeds = task_seeds(_derive_seed(self.seed, epoch + 1),
                           self.samples_per_epoch)
        job = _SampleJob(self.sampler)
        norms = self.node_norms()
        for start in range(0, len(seeds), self.batch_size):
            graphs = self.executor.map(job,
                                       seeds[start:start + self.batch_size])
            batch = Batch(graphs)
            # Per-node loss weights aligned with the batch's node rows.
            batch_norms = np.concatenate(
                [norms[g.meta["node_id"]] for g in graphs])
            yield batch, batch_norms

    def batches(self, epoch: int = 0):
        """Epoch ``epoch`` as ``(Batch, node_norm_weights)`` pairs.

        Sampling runs through the executor (chunked one minibatch at a
        time so memory stays flat); with ``prefetch > 0`` assembly runs
        on a :class:`PrefetchLoader` producer thread while the consumer
        trains on the previous batch.
        """
        iterator = self._assemble(epoch)
        if self.prefetch > 0:
            return PrefetchLoader(iterator, prefetch=self.prefetch)
        return iterator
