"""GraphSAINT-style subgraph samplers over a :class:`NodeDataset`.

Each sampler draws a node set from the big graph and returns the induced
subgraph as an ordinary :class:`~repro.graph.Graph`, so everything
downstream — batching, augmentation, the SGCL model — works unchanged.
Provenance rides in ``meta``:

* ``meta["node_id"]`` — global node ids (sorted), the provenance map the
  normalisation statistics and the eval path key on;
* ``meta["node_y"]`` — the nodes' labels (the Graph's own ``y`` stays
  ``None``; supervision is per-node here).

Determinism contract (tested in ``tests/sampling/``): a sampler is a
pure function of ``(dataset, sampler config, seed)``. ``sample(seed)``
builds its own ``default_rng(seed)``, so feeding it the per-item seeds
from :func:`repro.runtime.task_seeds` gives streams that are
bit-identical across reruns and independent of worker count.

Induced-subgraph extraction is vectorised through the CSR adjacency
(``O(Σ deg(kept))``, never ``O(E)``), which is what keeps a 10⁶-node
graph sampleable on one core.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..obs import current
from .community import NodeDataset

__all__ = [
    "SubgraphSampler",
    "RandomWalkSampler",
    "NeighborSampler",
    "EdgeSampler",
    "induced_subgraph",
    "make_sampler",
]


def induced_subgraph(dataset: NodeDataset, nodes: np.ndarray) -> Graph:
    """Induced subgraph on the (deduplicated, sorted) global node ids.

    Edges are gathered from the kept nodes' CSR neighbourhoods and
    filtered by membership via ``searchsorted`` — both endpoints kept ⇒
    edge kept, relabelled to local ids.
    """
    nodes = np.unique(np.asarray(nodes, dtype=np.int64))
    csr = dataset.csr()
    src_local, dst_global = csr.neighborhood(nodes)
    position = np.searchsorted(nodes, dst_global)
    position = np.minimum(position, len(nodes) - 1)
    kept = nodes[position] == dst_global
    edge_index = np.stack([src_local[kept], position[kept]])
    meta = {"node_id": nodes, "node_y": dataset.y[nodes]}
    return Graph(dataset.x[nodes], edge_index, None, meta)


class SubgraphSampler:
    """Base sampler: seeded node-set selection + induced extraction.

    Subclasses set ``name`` (the ``sample/<name>`` span label and the CLI
    key) and implement :meth:`_sample_nodes`.
    """

    name = "base"

    def __init__(self, dataset: NodeDataset):
        self.dataset = dataset

    def sample(self, seed: int) -> Graph:
        """One subgraph from one integer seed (see module contract)."""
        with current().span(f"sample/{self.name}"):
            rng = np.random.default_rng(seed)
            nodes = self._sample_nodes(rng)
            graph = induced_subgraph(self.dataset, nodes)
            current().increment("sample/subgraphs")
            current().increment("sample/nodes", graph.num_nodes)
            return graph

    def _sample_nodes(self, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dataset={self.dataset.name!r})"


class RandomWalkSampler(SubgraphSampler):
    """GraphSAINT-RW: ``roots`` uniform roots, each walked ``walk_length``
    steps; the subgraph is induced on every visited node.

    The walk advances all roots in lock-step with array ops: one uniform
    neighbour index per live walker per step. Walkers on isolated nodes
    stay put (their degree-0 draw is redirected to themselves).
    """

    name = "walk"

    def __init__(self, dataset: NodeDataset, *, roots: int = 32,
                 walk_length: int = 8):
        super().__init__(dataset)
        self.roots = roots
        self.walk_length = walk_length

    def _sample_nodes(self, rng: np.random.Generator) -> np.ndarray:
        csr = self.dataset.csr()
        current_nodes = rng.integers(0, self.dataset.num_nodes,
                                     size=self.roots)
        visited = [current_nodes]
        for _ in range(self.walk_length):
            degree = csr.indptr[current_nodes + 1] - csr.indptr[current_nodes]
            # Draw against max(degree, 1) so isolated walkers stay valid.
            pick = rng.integers(0, np.maximum(degree, 1))
            stepped = csr.indices[np.minimum(
                csr.indptr[current_nodes] + pick, len(csr.indices) - 1)]
            current_nodes = np.where(degree > 0, stepped, current_nodes)
            visited.append(current_nodes)
        return np.concatenate(visited)


class NeighborSampler(SubgraphSampler):
    """GraphSAGE-style fan-out: ``roots`` uniform roots, then ``depth``
    rounds in which every frontier node draws ``fanout`` neighbours with
    replacement. The subgraph is induced on the union of all rounds.
    """

    name = "neighbor"

    def __init__(self, dataset: NodeDataset, *, roots: int = 16,
                 fanout: int = 5, depth: int = 2):
        super().__init__(dataset)
        self.roots = roots
        self.fanout = fanout
        self.depth = depth

    def _sample_nodes(self, rng: np.random.Generator) -> np.ndarray:
        csr = self.dataset.csr()
        frontier = rng.integers(0, self.dataset.num_nodes, size=self.roots)
        collected = [frontier]
        for _ in range(self.depth):
            degree = csr.indptr[frontier + 1] - csr.indptr[frontier]
            live = frontier[degree > 0]
            if live.size == 0:
                break
            live_degree = degree[degree > 0]
            pick = rng.integers(0, live_degree[:, None],
                                size=(live.size, self.fanout))
            neighbors = csr.indices[csr.indptr[live][:, None] + pick]
            frontier = np.unique(neighbors)
            collected.append(frontier)
        return np.concatenate(collected)


class EdgeSampler(SubgraphSampler):
    """GraphSAINT-Edge: ``edges`` uniform directed edge entries; the
    subgraph is induced on their endpoint set.
    """

    name = "edge"

    def __init__(self, dataset: NodeDataset, *, edges: int = 256):
        super().__init__(dataset)
        self.edges = edges

    def _sample_nodes(self, rng: np.random.Generator) -> np.ndarray:
        csr = self.dataset.csr()
        if csr.num_edges == 0:
            return rng.integers(0, self.dataset.num_nodes,
                                size=min(self.edges, self.dataset.num_nodes))
        picked = rng.integers(0, csr.num_edges, size=self.edges)
        src = np.searchsorted(csr.indptr, picked, side="right") - 1
        dst = csr.indices[picked]
        return np.concatenate([src, dst])


_SAMPLERS = {
    RandomWalkSampler.name: RandomWalkSampler,
    NeighborSampler.name: NeighborSampler,
    EdgeSampler.name: EdgeSampler,
}


def make_sampler(name: str, dataset: NodeDataset, **kwargs) -> SubgraphSampler:
    """Factory keyed by sampler name (``walk`` / ``neighbor`` / ``edge``)."""
    key = name.lower()
    if key not in _SAMPLERS:
        raise KeyError(f"unknown sampler {name!r}; "
                       f"available: {sorted(_SAMPLERS)}")
    return _SAMPLERS[key](dataset, **kwargs)
