"""Node-level datasets and the seeded ``community-1m`` generator.

Graph-level corpora (``repro.data``) hold many small graphs; the
node-level workload this package targets is the opposite shape — *one*
large graph (ogbn-products-like) whose supervision lives on nodes. A
:class:`NodeDataset` therefore stores a single feature matrix, a single
edge index (plus its cached :class:`~repro.sampling.csr.CSRAdjacency`)
and a per-node label vector, and gets its own registry so
``load_dataset`` keeps its many-small-graphs semantics untouched.

``community-1m`` is the bundled generator: a planted-community graph of
``1,000,000 × scale`` nodes (floor 256). Nodes are assigned to
contiguous community blocks; features are the community centroid plus
Gaussian noise; labels are the community id modulo ``num_classes`` with
a small flip fraction, so a linear probe over good embeddings beats the
noise floor but not trivially. All sampling is vectorised and driven by
one ``default_rng(seed)`` — identical ``(seed, scale)`` gives a
bit-identical dataset.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..graph import Graph
from .csr import CSRAdjacency

__all__ = [
    "NodeDataset",
    "register_node_dataset",
    "load_node_dataset",
    "available_node_datasets",
    "generate_community_graph",
]


class NodeDataset:
    """One large attributed graph with per-node labels.

    Parameters
    ----------
    name:
        Human-readable dataset name.
    x:
        Node feature matrix, shape ``(num_nodes, num_features)``.
    edge_index:
        ``(2, E)`` int array with both orientations of every edge.
    y:
        Per-node int labels, shape ``(num_nodes,)``.
    num_classes:
        Number of label classes.
    meta:
        Generator-side ground truth (community assignment etc.); never
        read by models.
    """

    def __init__(self, name: str, x: np.ndarray, edge_index: np.ndarray,
                 y: np.ndarray, num_classes: int, meta: dict | None = None):
        self.name = name
        self.x = np.asarray(x, dtype=np.float64)
        self.edge_index = np.asarray(edge_index, dtype=np.int64)
        self.y = np.asarray(y, dtype=np.int64)
        if self.x.ndim != 2:
            raise ValueError(f"x must be 2-D, got shape {self.x.shape}")
        if len(self.y) != self.x.shape[0]:
            raise ValueError("y must have one label per node")
        self.num_classes = num_classes
        self.meta = meta or {}
        self._csr: CSRAdjacency | None = None

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.x.shape[0]

    @property
    def num_features(self) -> int:
        return self.x.shape[1]

    @property
    def num_edges(self) -> int:
        """Directed edge entries (2× the undirected edge count)."""
        return self.edge_index.shape[1]

    def csr(self) -> CSRAdjacency:
        """CSR adjacency, built once and cached (samplers hit this hot)."""
        if self._csr is None:
            self._csr = CSRAdjacency.from_edge_index(self.edge_index,
                                                     self.num_nodes)
        return self._csr

    def degrees(self) -> np.ndarray:
        return self.csr().degrees()

    def statistics(self) -> dict[str, float]:
        degrees = self.degrees()
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges / 2,
            "num_features": self.num_features,
            "num_classes": self.num_classes,
            "avg_degree": float(degrees.mean()),
            "max_degree": int(degrees.max()),
        }

    def as_graph(self) -> Graph:
        """The whole graph as a :class:`Graph` (``y=None``, labels in meta).

        Only sensible at tiny scales — tests and the exact-eval path use
        it; production paths go through the samplers.
        """
        return Graph(self.x, self.edge_index, None,
                     {"node_y": self.y.copy(),
                      "node_id": np.arange(self.num_nodes)})

    def __repr__(self) -> str:
        return (f"NodeDataset({self.name!r}, num_nodes={self.num_nodes}, "
                f"num_edges={self.num_edges}, classes={self.num_classes})")


# ----------------------------------------------------------------------
# Registry — parallel to repro.data's, deliberately separate: a node
# dataset is not a GraphDataset and must not leak into load_dataset.
# ----------------------------------------------------------------------
_NODE_REGISTRY: dict[str, Callable[..., NodeDataset]] = {}


def register_node_dataset(name: str):
    """Decorator registering a node-level generator (case-insensitive)."""

    def decorator(fn: Callable[..., NodeDataset]):
        _NODE_REGISTRY[name.lower()] = fn
        return fn

    return decorator


def load_node_dataset(name: str, *, seed: int = 0, scale: float = 1.0,
                      **kwargs) -> NodeDataset:
    """Instantiate a registered node dataset.

    ``scale`` multiplies the dataset's reference node count (floor 256 so
    tiny smoke scales still produce a connected, sampleable graph).
    """
    key = name.lower()
    if key not in _NODE_REGISTRY:
        raise KeyError(f"unknown node dataset {name!r}; "
                       f"available: {available_node_datasets()}")
    return _NODE_REGISTRY[key](seed=seed, scale=scale, **kwargs)


def available_node_datasets() -> list[str]:
    return sorted(_NODE_REGISTRY)


# ----------------------------------------------------------------------
# community-1m generator
# ----------------------------------------------------------------------
def generate_community_graph(*, num_nodes: int, num_communities: int,
                             num_features: int, num_classes: int,
                             intra_edges_per_node: float,
                             inter_edges_per_node: float,
                             feature_noise: float, label_noise: float,
                             rng: np.random.Generator
                             ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                        np.ndarray]:
    """Planted-community graph: ``(x, edge_index, y, community)``.

    Nodes occupy contiguous community blocks (node ``i`` belongs to
    community ``i·C // n``), which keeps partner sampling a pure array
    operation: an intra-community edge draws a uniform node and a uniform
    partner from that node's block. Inter-community edges are uniform
    pairs. Self-loops are dropped, both orientations are emitted, and
    duplicates are removed with a deterministic sort — so the edge set is
    a pure function of the rng stream.
    """
    n, communities = num_nodes, num_communities
    community = (np.arange(n, dtype=np.int64) * communities) // n
    block_start = np.searchsorted(community, np.arange(communities))
    block_size = np.diff(np.concatenate([block_start, [n]]))

    centroids = rng.normal(0.0, 1.0, size=(communities, num_features))
    x = centroids[community] + rng.normal(0.0, feature_noise,
                                          size=(n, num_features))

    y = community % num_classes
    flip = rng.random(n) < label_noise
    y = np.where(flip, rng.integers(0, num_classes, size=n), y)

    m_intra = int(round(n * intra_edges_per_node))
    m_inter = int(round(n * inter_edges_per_node))
    u_intra = rng.integers(0, n, size=m_intra)
    blocks = community[u_intra]
    v_intra = block_start[blocks] + rng.integers(0, block_size[blocks])
    u_inter = rng.integers(0, n, size=m_inter)
    v_inter = rng.integers(0, n, size=m_inter)

    src = np.concatenate([u_intra, u_inter])
    dst = np.concatenate([v_intra, v_inter])
    keep = src != dst
    src, dst = src[keep], dst[keep]
    # Canonicalise (min, max), dedupe, then emit both orientations.
    low = np.minimum(src, dst)
    high = np.maximum(src, dst)
    flat = np.unique(low * np.int64(n) + high)
    low, high = flat // n, flat % n
    edge_index = np.stack([np.concatenate([low, high]),
                           np.concatenate([high, low])])
    return x, edge_index, y.astype(np.int64), community


@register_node_dataset("community-1m")
def community_1m(*, seed: int = 0, scale: float = 1.0,
                 num_features: int = 32, num_classes: int = 16,
                 feature_noise: float = 1.0,
                 label_noise: float = 0.05) -> NodeDataset:
    """The ogbn-products-shaped workload: 10⁶ nodes at ``scale=1.0``.

    Community count grows with the square root of the node count so
    communities stay a few hundred to a few thousand nodes across scales
    — large enough that random walks stay inside them, small enough that
    every scale has many of them.
    """
    num_nodes = max(256, int(round(1_000_000 * scale)))
    num_communities = max(num_classes, int(round(np.sqrt(num_nodes) / 2)))
    rng = np.random.default_rng(seed)
    x, edge_index, y, community = generate_community_graph(
        num_nodes=num_nodes, num_communities=num_communities,
        num_features=num_features, num_classes=num_classes,
        intra_edges_per_node=4.0, inter_edges_per_node=1.0,
        feature_noise=feature_noise, label_noise=label_noise, rng=rng)
    meta = {"community": community, "num_communities": num_communities,
            "seed": seed, "scale": scale}
    return NodeDataset("community-1m", x, edge_index, y, num_classes, meta)
