"""Compressed-sparse-row adjacency for large-graph sampling.

The samplers in this package take thousands of neighbourhood slices per
subgraph; the COO ``edge_index`` a :class:`~repro.graph.Graph` carries
would make each slice an ``O(E)`` scan. :class:`CSRAdjacency` sorts the
edges once (``O(E log E)``) and answers every neighbour query with two
array lookups, which is what turns random walks over a 10⁵–10⁶-node graph
into array arithmetic.

All construction is deterministic: the stable sort keeps parallel edges
in input order, so two builds from the same ``edge_index`` are
bit-identical — a requirement for the seeded-sampler reproducibility
contract (docs/SAMPLING.md).
"""

from __future__ import annotations

import numpy as np

__all__ = ["CSRAdjacency"]


class CSRAdjacency:
    """Adjacency in CSR form: ``indices[indptr[v]:indptr[v+1]]`` are ``v``'s
    out-neighbours.

    Undirected graphs (both edge orientations stored, the convention of
    this codebase) make out-neighbours == neighbours.
    """

    __slots__ = ("indptr", "indices", "num_nodes")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.num_nodes = len(self.indptr) - 1

    @classmethod
    def from_edge_index(cls, edge_index: np.ndarray,
                        num_nodes: int) -> "CSRAdjacency":
        """Build from a ``(2, E)`` COO edge index (stable edge order)."""
        edge_index = np.asarray(edge_index, dtype=np.int64)
        src, dst = edge_index
        order = np.argsort(src, kind="stable")
        counts = np.bincount(src, minlength=num_nodes)
        indptr = np.concatenate([[0], np.cumsum(counts)])
        return cls(indptr, dst[order])

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Directed edge entries (2× the undirected edge count)."""
        return len(self.indices)

    def degrees(self) -> np.ndarray:
        """Out-degree of every node (int64)."""
        return self.indptr[1:] - self.indptr[:-1]

    def neighbors(self, node: int) -> np.ndarray:
        """Neighbour ids of one node (a read-only view, do not mutate)."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def neighborhood(self, nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All neighbour slices of ``nodes`` at once.

        Returns ``(src_position, dst)`` where ``src_position[i]`` indexes
        into ``nodes`` and ``dst[i]`` is the neighbour id — the vectorised
        form of looping :meth:`neighbors` over ``nodes``.
        """
        nodes = np.asarray(nodes, dtype=np.int64)
        counts = self.indptr[nodes + 1] - self.indptr[nodes]
        total = int(counts.sum())
        if total == 0:
            return (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        src_position = np.repeat(np.arange(len(nodes)), counts)
        # Flat CSR positions: each kept node's run starts at indptr[node].
        starts = np.repeat(self.indptr[nodes], counts)
        within = np.arange(total) - np.repeat(np.cumsum(counts) - counts,
                                              counts)
        return src_position, self.indices[starts + within]

    def __repr__(self) -> str:
        return (f"CSRAdjacency(num_nodes={self.num_nodes}, "
                f"num_edges={self.num_edges})")
