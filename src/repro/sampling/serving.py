"""Per-node embedding serving over the existing graph-level fleet path.

The serving stack (:class:`repro.serve.EmbeddingService`, the sharded
fleet router) embeds *graphs* and caches by content digest. Rather than
grow a parallel per-node stack, a node's serving embedding is defined
PinSAGE-style as the pooled readout of its **deterministic ego-net**:

    ego(v) = induced subgraph on a fanout-bounded breadth-first
             neighbourhood of v, sampled by ``default_rng(
             SeedSequence([seed, v]))``

Determinism is the load-bearing property: the ego-net of ``(dataset,
seed, v)`` is bit-identical across processes and requests, so its graph
digest is stable and repeated queries for the same node hit the
service's content-addressed LRU — node ids ride the existing cache,
micro-batching, failover and canary machinery with zero serving-side
changes.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..obs import current
from .community import NodeDataset
from .samplers import induced_subgraph

__all__ = ["ego_subgraph", "NodeEmbeddingIndex"]


def ego_subgraph(dataset: NodeDataset, node_id: int, *, seed: int = 0,
                 hops: int = 2, fanout: int = 10) -> Graph:
    """Deterministic fanout-bounded ego-net of one node.

    Each hop expands every frontier node by ``fanout`` neighbours drawn
    with replacement from its CSR slice; the subgraph is induced on the
    union. The rng depends only on ``(seed, node_id)`` — never on query
    order — which is what keeps the graph digest stable (module docs).
    ``meta["center"]`` holds the queried node's local row.
    """
    node_id = int(node_id)
    if not 0 <= node_id < dataset.num_nodes:
        raise IndexError(f"node id {node_id} outside "
                         f"[0, {dataset.num_nodes})")
    rng = np.random.default_rng(np.random.SeedSequence([seed, node_id]))
    csr = dataset.csr()
    frontier = np.array([node_id], dtype=np.int64)
    collected = [frontier]
    for _ in range(hops):
        degree = csr.indptr[frontier + 1] - csr.indptr[frontier]
        live = frontier[degree > 0]
        if live.size == 0:
            break
        live_degree = degree[degree > 0]
        pick = rng.integers(0, live_degree[:, None],
                            size=(live.size, fanout))
        frontier = np.unique(csr.indices[csr.indptr[live][:, None] + pick])
        collected.append(frontier)
    graph = induced_subgraph(dataset, np.concatenate(collected))
    graph.meta["center"] = int(np.searchsorted(graph.meta["node_id"],
                                               node_id))
    return graph


class NodeEmbeddingIndex:
    """Answer per-node embedding queries through a graph-level service.

    Parameters
    ----------
    service:
        Anything with the :meth:`EmbeddingService.embed` contract —
        an :class:`~repro.serve.EmbeddingService` or a fleet router.
    dataset:
        The node corpus the ids refer to.
    seed / hops / fanout:
        Ego-net construction parameters; part of the embedding's
        identity (changing them changes every digest, i.e. a new
        logical index).
    """

    def __init__(self, service, dataset: NodeDataset, *, seed: int = 0,
                 hops: int = 2, fanout: int = 10):
        self.service = service
        self.dataset = dataset
        self.seed = seed
        self.hops = hops
        self.fanout = fanout

    def subgraph(self, node_id: int) -> Graph:
        """The ego-net a node id resolves to (exposed for inspection)."""
        return ego_subgraph(self.dataset, node_id, seed=self.seed,
                            hops=self.hops, fanout=self.fanout)

    def embed_nodes(self, node_ids) -> np.ndarray:
        """Embeddings for ``node_ids`` (one row per id, request order)."""
        node_ids = np.atleast_1d(np.asarray(node_ids, dtype=np.int64))
        if node_ids.size == 0:
            raise ValueError("embed_nodes() requires at least one node id")
        with current().span("serve/node_embed"):
            graphs = [self.subgraph(node_id) for node_id in node_ids]
            return self.service.embed(graphs)
