"""Node-level SGCL pre-training over sampled subgraphs.

The graph-level pipeline contrasts *pooled* anchor/view embeddings
(Eq. 21–24); on one large graph the contrastive unit is the node. Each
minibatch of sampled subgraphs runs the same towers — per-subgraph
``K_V`` through the :class:`~repro.core.lipschitz.
LipschitzConstantGenerator`, Lipschitz augmentation for the positive
view — but the loss is a local-to-local (L2L) InfoNCE between a node's
representation in the anchor subgraph and its representation in the
augmented view, with the other sampled nodes as negatives.

Two corrections keep the estimate honest on a sampled stream:

* **GraphSAINT normalisation** — nodes land in subgraphs with very
  different frequencies (hubs vs leaves); each node's loss term is
  weighted by the stream's ``α_v ≈ 1/λ_v`` estimate (normalised to mean
  1 within the batch) so the objective approximates the full-graph loss.
* **Augmentation-surviving pairs only** — a node dropped from the view
  has no positive; only survivors (``meta["parent_nodes"]``) enter the
  loss, capped at ``max_contrast_nodes`` uniformly at random so the
  ``O(m²)`` similarity matrix stays CPU-sized.

The complement loss (Eq. 25) is graph-level by construction (it
contrasts against pooled complement readouts) and is not applied here;
the generator's graph-likelihood objective and the weight regulariser
carry over unchanged.
"""

from __future__ import annotations

import time
import warnings
from pathlib import Path

import numpy as np

from ..core import SGCLConfig, SGCLModel
from ..core.losses import graph_likelihood_loss, weight_regularizer
from ..core.trainer import summarize_epoch
from ..graph import Batch
from ..nn import Adam, l2_normalize
from ..obs import current
from ..tensor import Tensor, gather
from ..validate.numerics import NumericsGuard, global_grad_norm
from .stream import SubgraphStream

__all__ = ["NodeSGCLTrainer", "node_info_nce", "node_contrastive_loss"]


def node_info_nce(z_anchor: Tensor, z_view: Tensor, tau: float,
                  weights: np.ndarray | None = None) -> Tensor:
    """L2L InfoNCE over matched node rows, optionally importance-weighted.

    Row ``i`` of ``z_anchor`` and ``z_view`` must be the same node in the
    anchor and augmented subgraph; every other row is a negative. With
    ``weights`` (the GraphSAINT ``α_v``), per-node terms are scaled by
    ``weights / mean(weights)`` — mean-1 within the batch, so only the
    relative sampling bias is corrected, not the loss scale.
    """
    n = len(z_anchor)
    if n < 2:
        raise ValueError("node InfoNCE needs at least 2 matched nodes")
    sims = (l2_normalize(z_anchor) @ l2_normalize(z_view).T) * (1.0 / tau)
    eye = np.eye(n, dtype=bool)
    positives = sims[(np.arange(n), np.arange(n))]
    masked = sims + Tensor(np.where(eye, -1e9, 0.0))
    row_max = Tensor(masked.data.max(axis=1, keepdims=True))
    log_denominator = ((masked - row_max).exp().sum(axis=1)).log() \
        + row_max.reshape(n)
    per_node = log_denominator - positives
    if weights is not None:
        scale = np.asarray(weights, dtype=np.float64)
        per_node = per_node * Tensor(scale / scale.mean())
    return per_node.mean()


def node_contrastive_loss(model: SGCLModel, batch: Batch,
                          node_norms: np.ndarray, rng: np.random.Generator, *,
                          max_contrast_nodes: int = 512
                          ) -> tuple[Tensor | None, dict[str, float]]:
    """Full node-level objective for one subgraph minibatch.

    Returns ``(loss, stats)``; ``loss`` is ``None`` when fewer than two
    nodes survive augmentation (nothing to contrast — the caller skips
    the batch, mirroring the graph-level "< 2 graphs" skip).
    """
    config = model.config
    scores = model.semantic_scores(batch)
    views, _ = model.generate_views(batch, scores, rng)
    anchor_rows = np.concatenate(
        [view.meta["parent_nodes"] + batch.node_offsets[graph_id]
         for graph_id, view in enumerate(views)])
    stats: dict[str, float] = {}
    constants = scores.constants.data
    stats["k_v_mean"] = float(constants.mean())
    stats["k_v_std"] = float(constants.std())
    stats["k_v_min"] = float(constants.min())
    stats["k_v_max"] = float(constants.max())
    stats["drop_fraction"] = 1.0 - len(anchor_rows) / batch.num_nodes
    if len(anchor_rows) < 2:
        return None, stats
    view_rows = np.arange(len(anchor_rows))
    if len(anchor_rows) > max_contrast_nodes:
        chosen = np.sort(rng.choice(len(anchor_rows), max_contrast_nodes,
                                    replace=False))
        anchor_rows, view_rows = anchor_rows[chosen], view_rows[chosen]
    stats["contrast_nodes"] = float(len(anchor_rows))

    z_anchor = model.projection(model.f_k(batch))
    z_view = model.projection(model.f_k(Batch(views)))
    loss_s = node_info_nce(gather(z_anchor, anchor_rows),
                           gather(z_view, view_rows), config.tau,
                           weights=node_norms[anchor_rows])
    total = loss_s
    stats["loss_s"] = loss_s.item()
    if config.lambda_g > 0:
        reps = model.generator.node_representations(batch)
        loss_g = graph_likelihood_loss(reps, batch.edge_index,
                                       batch.degrees(), model.edge_weight,
                                       rng)
        total = total + config.lambda_g * loss_g
        stats["loss_g"] = loss_g.item()
    if config.use_weight_reg and config.lambda_w > 0:
        reg = weight_regularizer(model)
        total = total + config.lambda_w * reg
        stats["theta_w"] = reg.item()
    stats["loss"] = total.item()
    return total, stats


class NodeSGCLTrainer:
    """Owns an :class:`SGCLModel` and the subgraph-stream training loop.

    The model is the unmodified graph-level :class:`SGCLModel` — both
    towers, the probability head, the generator objective — only the
    loss assembly differs (see :func:`node_contrastive_loss`). Checkpoint
    bundles use the standard format (``metadata["node_level"] = True``),
    so ``repro embed``/the serving fleet rebuild the encoder with the
    existing machinery.

    Epoch indexing doubles as the stream's epoch seed tag: epoch ``e``
    draws ``stream.batches(epoch=len(history))``, so a resumed trainer
    continues the exact sample stream an uninterrupted run would have
    seen.
    """

    def __init__(self, in_dim: int, config: SGCLConfig | None = None, *,
                 max_contrast_nodes: int = 512):
        self.config = config or SGCLConfig()
        self.in_dim = in_dim
        self.max_contrast_nodes = max_contrast_nodes
        root = np.random.default_rng(self.config.seed)
        self._init_rng = np.random.default_rng(root.integers(2 ** 63))
        self._shuffle_rng = np.random.default_rng(root.integers(2 ** 63))
        self._augment_rng = np.random.default_rng(root.integers(2 ** 63))
        self.model = SGCLModel(in_dim, self.config, rng=self._init_rng)
        self.optimizer = Adam(self.model.parameters(), lr=self.config.lr)
        self.history: list[dict[str, float]] = []
        self._best_loss = float("inf")

    # ------------------------------------------------------------------
    @property
    def encoder(self):
        return self.model.encoder

    # ------------------------------------------------------------------
    def pretrain(self, stream: SubgraphStream, epochs: int | None = None, *,
                 checkpoint_dir: str | Path | None = None,
                 save_every: int | None = None,
                 observer=None) -> list[dict[str, float]]:
        """Pre-train on the stream; returns per-epoch history rows.

        Mirrors :meth:`repro.core.SGCLTrainer.pretrain`: every batch runs
        under a :class:`NumericsGuard` (``config.numerics_policy`` +
        ``config.grad_clip``), epoch rows carry the loss components and
        ``K_V`` summary plus sampling counters (``num_batches``,
        ``skipped_batches``, ``contrast_nodes``), and ``checkpoint_dir``
        refreshes ``latest.npz`` / ``best.npz`` (and ``epoch-NNNN.npz``
        with ``save_every``) after every epoch. Batches are wrapped in
        ``pretrain/subgraph`` spans so ``repro profile`` attributes the
        node-level hot path separately from the graph-level one.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        obs = observer if observer is not None else current()
        parameters = self.model.parameters()
        guard = NumericsGuard(policy=self.config.numerics_policy,
                              grad_clip=self.config.grad_clip, observer=obs)
        self.model.train()
        for _ in range(epochs):
            epoch_stats: dict[str, list[float]] = {}
            num_batches = 0
            skipped_batches = 0
            started = time.perf_counter()
            with obs.span("pretrain/epoch"):
                for batch, norms in stream.batches(epoch=len(self.history)):
                    with obs.span("pretrain/subgraph"):
                        with obs.span("pretrain/loss"):
                            loss, stats = node_contrastive_loss(
                                self.model, batch, norms, self._augment_rng,
                                max_contrast_nodes=self.max_contrast_nodes)
                        if loss is None or not guard.check_loss(stats):
                            skipped_batches += 1
                            continue
                        self.optimizer.zero_grad()
                        with obs.span("pretrain/backward"):
                            loss.backward()
                        grad_norm = global_grad_norm(parameters)
                        if not guard.guard_gradients(parameters, grad_norm):
                            skipped_batches += 1
                            continue
                        if obs.enabled:
                            stats["grad_norm"] = grad_norm
                        with obs.span("pretrain/step"):
                            self.optimizer.step()
                    num_batches += 1
                    for key, value in stats.items():
                        epoch_stats.setdefault(key, []).append(value)
            summary = summarize_epoch(epoch_stats)
            if num_batches == 0:
                summary["loss"] = float("nan")
                warnings.warn(
                    f"epoch {len(self.history) + 1}: no subgraph batch was "
                    f"trained ({skipped_batches} skipped)",
                    RuntimeWarning, stacklevel=2)
            summary["epoch"] = len(self.history) + 1
            summary["num_batches"] = num_batches
            summary["skipped_batches"] = skipped_batches
            summary["epoch_seconds"] = time.perf_counter() - started
            self.history.append(summary)
            obs.event("epoch", method="SGCL-node", **summary)
            if checkpoint_dir is not None:
                self._checkpoint_epoch(Path(checkpoint_dir), summary,
                                       save_every)
        return self.history

    # ------------------------------------------------------------------
    def _checkpoint_epoch(self, directory: Path, summary: dict[str, float],
                          save_every: int | None) -> None:
        epoch = len(self.history)
        self.save_checkpoint(directory / "latest.npz")
        if save_every and epoch % save_every == 0:
            self.save_checkpoint(directory / f"epoch-{epoch:04d}.npz")
        loss = summary.get("loss", float("inf"))
        if np.isfinite(loss) and loss < self._best_loss:
            self._best_loss = loss
            self.save_checkpoint(directory / "best.npz")

    def save_checkpoint(self, path: str | Path,
                        metadata: dict | None = None) -> Path:
        """Standard checkpoint bundle, tagged ``node_level``."""
        from ..serve.checkpoint import save_checkpoint

        rng_state = {
            "shuffle": self._shuffle_rng.bit_generator.state,
            "augment": self._augment_rng.bit_generator.state,
        }
        return save_checkpoint(
            path, self.model, config=self.config, optimizer=self.optimizer,
            rng_state=rng_state,
            metadata={"history": self.history, "node_level": True,
                      **(metadata or {})})

    @classmethod
    def from_checkpoint(cls, path: str | Path, *,
                        max_contrast_nodes: int = 512) -> "NodeSGCLTrainer":
        """Rebuild a trainer that continues bit-identically (see
        :meth:`repro.core.SGCLTrainer.from_checkpoint`; epoch indexing
        re-derives the sample stream, so no loader state is needed)."""
        from ..serve.checkpoint import load_checkpoint

        checkpoint = load_checkpoint(path)
        config = checkpoint.config
        if config is None or checkpoint.in_dim is None:
            raise ValueError(
                "checkpoint lacks an SGCLConfig/in_dim; it was not written "
                "by NodeSGCLTrainer.save_checkpoint")
        trainer = cls(checkpoint.in_dim, config,
                      max_contrast_nodes=max_contrast_nodes)
        checkpoint.restore(trainer.model, trainer.optimizer)
        if checkpoint.rng_state is not None:
            trainer._shuffle_rng.bit_generator.state = \
                checkpoint.rng_state["shuffle"]
            trainer._augment_rng.bit_generator.state = \
                checkpoint.rng_state["augment"]
        trainer.history = list(checkpoint.metadata.get("history", []))
        losses = [row.get("loss") for row in trainer.history
                  if row.get("loss") is not None
                  and np.isfinite(row.get("loss"))]
        trainer._best_loss = min(losses, default=float("inf"))
        return trainer
