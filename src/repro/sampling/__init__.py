"""Subgraph-sampling subsystem: large-graph node-level SGCL.

Opens the ogbn-products-shaped workload — one graph too large to batch —
by training on sampled subgraphs (GraphSAINT-style): seeded synthetic
node corpora (:mod:`community`), CSR adjacency (:mod:`csr`), subgraph
samplers (:mod:`samplers`), the streaming minibatch pipeline
(:mod:`stream`), the node-level trainer (:mod:`pretrain`) and per-node
serving over the existing fleet path (:mod:`serving`). See
docs/SAMPLING.md for the walkthrough.
"""

from .community import (
    NodeDataset,
    available_node_datasets,
    generate_community_graph,
    load_node_dataset,
    register_node_dataset,
)
from .csr import CSRAdjacency
from .pretrain import NodeSGCLTrainer, node_contrastive_loss, node_info_nce
from .samplers import (
    EdgeSampler,
    NeighborSampler,
    RandomWalkSampler,
    SubgraphSampler,
    induced_subgraph,
    make_sampler,
)
from .serving import NodeEmbeddingIndex, ego_subgraph
from .stream import SubgraphStream

__all__ = [
    "CSRAdjacency",
    "NodeDataset",
    "register_node_dataset",
    "load_node_dataset",
    "available_node_datasets",
    "generate_community_graph",
    "SubgraphSampler",
    "RandomWalkSampler",
    "NeighborSampler",
    "EdgeSampler",
    "induced_subgraph",
    "make_sampler",
    "SubgraphStream",
    "NodeSGCLTrainer",
    "node_info_nce",
    "node_contrastive_loss",
    "NodeEmbeddingIndex",
    "ego_subgraph",
]
