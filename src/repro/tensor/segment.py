"""Gather / scatter / segment reductions — the message-passing kernels.

PyTorch Geometric implements GNN message passing with ``torch.index_select``
and ``scatter_*``; these functions are the numpy/autodiff equivalents. All of
them are differentiable with respect to the value tensor (never with respect
to the integer index arrays).

Conventions
-----------
* ``index`` arrays are 1-D ``int64`` ndarrays.
* ``num_segments`` must be passed explicitly (it may exceed ``index.max()+1``
  when a batch contains empty graphs).

Kernel strategy
---------------
Scatter-adds run through ``np.bincount`` on a flattened ``(row, column)``
index rather than ``np.add.at``. Both accumulate bins in input order, so
results are bit-identical, but ``bincount`` avoids ``add.at``'s generic
buffered-ufunc path (~6× faster at message-passing sizes on this box).
The flattened index depends only on ``(index, feature_width)``, so a
:class:`ScatterPlan` caches it — one plan per (edge set, direction) serves
every layer, epoch, and backward pass that routes over those edges.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "ScatterPlan",
    "gather",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "segment_count",
]


def _check_index(index: np.ndarray) -> np.ndarray:
    index = np.asarray(index)
    if index.ndim != 1:
        raise ValueError(f"index must be 1-D, got shape {index.shape}")
    return index.astype(np.int64, copy=False)


def _bincount_rows(flat: np.ndarray, values: np.ndarray,
                   length: int) -> np.ndarray:
    out = np.bincount(flat, weights=values.reshape(-1), minlength=length)
    if out.shape[0] != length:
        raise IndexError("segment index out of range for num_segments")
    return out


class ScatterPlan:
    """Reusable scatter-add recipe for one (index, num_segments) routing.

    Precomputes (lazily, per feature width) the flattened bin index that
    turns an N-D row scatter into a single 1-D ``np.bincount``, and caches
    segment counts. Build one per edge direction on a batch and thread it
    through :func:`gather` / :func:`segment_sum` / :func:`segment_softmax`
    — forward and backward passes then skip all index arithmetic.
    """

    __slots__ = ("index", "num_segments", "_flat", "_counts")

    def __init__(self, index: np.ndarray, num_segments: int):
        self.index = _check_index(index)
        self.num_segments = int(num_segments)
        self._flat: dict[int, np.ndarray] = {}
        self._counts: np.ndarray | None = None

    def flat_index(self, width: int) -> np.ndarray:
        flat = self._flat.get(width)
        if flat is None:
            flat = (self.index[:, None] * width
                    + np.arange(width, dtype=np.int64)).ravel()
            self._flat[width] = flat
        return flat

    def counts(self) -> np.ndarray:
        if self._counts is None:
            self._counts = np.bincount(
                self.index, minlength=self.num_segments).astype(np.float64)
        return self._counts

    def scatter_sum(self, values: np.ndarray) -> np.ndarray:
        """Sum ``values`` rows into ``num_segments`` bins (fresh float64)."""
        if values.ndim == 1:
            return _bincount_rows(self.index, values, self.num_segments)
        width = int(np.prod(values.shape[1:]))
        out = _bincount_rows(self.flat_index(width), values,
                             self.num_segments * width)
        return out.reshape((self.num_segments,) + values.shape[1:])


def _scatter_sum(values: np.ndarray, index: np.ndarray,
                 num_segments: int) -> np.ndarray:
    """Plan-less scatter-add (flat index built on the fly)."""
    if values.ndim == 1:
        return _bincount_rows(index, values, num_segments)
    width = int(np.prod(values.shape[1:]))
    flat = (index[:, None] * width + np.arange(width, dtype=np.int64)).ravel()
    out = _bincount_rows(flat, values, num_segments * width)
    return out.reshape((num_segments,) + values.shape[1:])


def gather(values: Tensor, index: np.ndarray, *,
           plan: ScatterPlan | None = None) -> Tensor:
    """Select rows ``values[index]``; gradient scatter-adds back.

    ``plan`` (if given) must route ``index`` into ``len(values)`` segments;
    the backward scatter then reuses its cached flat index.
    """
    values = as_tensor(values)
    if plan is not None:
        index = plan.index

        def backward(out: Tensor) -> None:
            values._accumulate(plan.scatter_sum(out.grad), own=True)
    else:
        index = _check_index(index)

        def backward(out: Tensor) -> None:
            values._accumulate(
                _scatter_sum(out.grad, index, len(values.data)), own=True)

    return Tensor._make(values.data[index], (values,), backward)


def segment_sum(values: Tensor, index: np.ndarray, num_segments: int, *,
                plan: ScatterPlan | None = None) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets given by ``index``.

    ``out[s] = sum_{i : index[i] == s} values[i]`` — the core aggregation of
    every GNN layer (messages → destination nodes) and of graph pooling
    (nodes → graphs).
    """
    values = as_tensor(values)
    if plan is not None:
        index = plan.index
        data = plan.scatter_sum(values.data)
    else:
        index = _check_index(index)
        data = _scatter_sum(values.data, index, num_segments)

    def backward(out: Tensor) -> None:
        values._accumulate(out.grad[index], own=True)

    return Tensor._make(data, (values,), backward)


def segment_count(index: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of rows routed to each segment (plain ndarray)."""
    index = _check_index(index)
    return np.bincount(index, minlength=num_segments).astype(np.float64)


def segment_mean(values: Tensor, index: np.ndarray, num_segments: int, *,
                 plan: ScatterPlan | None = None) -> Tensor:
    """Mean-aggregate rows per segment; empty segments yield zeros."""
    totals = segment_sum(values, index, num_segments, plan=plan)
    counts = plan.counts() if plan is not None \
        else segment_count(index, num_segments)
    counts = np.maximum(counts, 1.0)
    return totals * Tensor(1.0 / counts).reshape(
        (num_segments,) + (1,) * (totals.ndim - 1))


def segment_max(values: Tensor, index: np.ndarray, num_segments: int,
                fill: float = 0.0, *,
                plan: ScatterPlan | None = None) -> Tensor:
    """Max-aggregate rows per segment.

    Empty segments are filled with ``fill``. Gradient flows to the (first)
    argmax element per segment/feature, matching scatter-max semantics.
    """
    values = as_tensor(values)
    index = plan.index if plan is not None else _check_index(index)
    out_shape = (num_segments,) + values.shape[1:]
    data = np.full(out_shape, -np.inf, dtype=np.float64)
    np.maximum.at(data, index, values.data)
    empty = ~np.isfinite(data)
    data = np.where(empty, fill, data)

    def backward(out: Tensor) -> None:
        # Route gradient to entries equal to their segment max; split ties.
        winners = (values.data == data[index]) & ~empty[index]
        winner_weights = winners.astype(np.float64)
        if plan is not None:
            tie_counts = plan.scatter_sum(winner_weights)
        else:
            tie_counts = _scatter_sum(winner_weights, index, num_segments)
        tie_counts = np.maximum(tie_counts, 1.0)
        grad = np.where(winners, out.grad[index] / tie_counts[index], 0.0)
        values._accumulate(grad, own=True)

    return Tensor._make(data, (values,), backward)


def segment_softmax(values: Tensor, index: np.ndarray, num_segments: int, *,
                    plan: ScatterPlan | None = None) -> Tensor:
    """Softmax over groups of rows sharing the same segment (GAT attention).

    Implemented as a composition of differentiable primitives, so it needs no
    bespoke vjp: ``softmax_i = exp(v_i - max_seg) / sum_seg exp(...)``. After
    the max shift every non-empty segment's denominator includes an exp(0)=1
    term, so no epsilon is needed and rows sum to exactly 1 (matching
    ``Tensor.softmax``).
    """
    values = as_tensor(values)
    index = plan.index if plan is not None else _check_index(index)
    seg_max = segment_max(values, index, num_segments, fill=0.0, plan=plan)
    shifted = values - gather(seg_max, index, plan=plan)
    exps = shifted.exp()
    denom = gather(segment_sum(exps, index, num_segments, plan=plan),
                   index, plan=plan)
    return exps / denom


# ----------------------------------------------------------------------
# Profiler op table (consumed by repro.obs.profiler)
# ----------------------------------------------------------------------
def _flops_scatter(args, kwargs, out) -> float:
    """One add/compare per scattered input row element."""
    values = args[0]
    size = values.data.size if isinstance(values, Tensor) else np.size(values)
    return float(size)


def _flops_gather(args, kwargs, out) -> float:
    """Data movement only."""
    return 0.0


#: Module-level functions profiled by :class:`repro.obs.profiler.OpProfiler`.
#: The composite ops (``segment_mean``, ``segment_softmax``) are built from
#: the primitives below, so their *self* time in a profile excludes the
#: nested ``segment_sum``/``gather``/``exp`` calls, which report separately.
PROFILED_OPS = [
    ("gather", "gather", _flops_gather),
    ("segment_sum", "segment_sum", _flops_scatter),
    ("segment_mean", "segment_mean", _flops_scatter),
    ("segment_max", "segment_max", _flops_scatter),
    ("segment_softmax", "segment_softmax", _flops_scatter),
]
