"""Gather / scatter / segment reductions — the message-passing kernels.

PyTorch Geometric implements GNN message passing with ``torch.index_select``
and ``scatter_*``; these functions are the numpy/autodiff equivalents. All of
them are differentiable with respect to the value tensor (never with respect
to the integer index arrays).

Conventions
-----------
* ``index`` arrays are 1-D ``int64`` ndarrays.
* ``num_segments`` must be passed explicitly (it may exceed ``index.max()+1``
  when a batch contains empty graphs).
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, as_tensor

__all__ = [
    "gather",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "segment_count",
]


def _check_index(index: np.ndarray) -> np.ndarray:
    index = np.asarray(index)
    if index.ndim != 1:
        raise ValueError(f"index must be 1-D, got shape {index.shape}")
    return index.astype(np.int64, copy=False)


def gather(values: Tensor, index: np.ndarray) -> Tensor:
    """Select rows ``values[index]``; gradient scatter-adds back."""
    values = as_tensor(values)
    index = _check_index(index)

    def backward(out: Tensor) -> None:
        grad = np.zeros_like(values.data, dtype=np.float64)
        np.add.at(grad, index, out.grad)
        values._accumulate(grad)

    return Tensor._make(values.data[index], (values,), backward)


def segment_sum(values: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``values`` into ``num_segments`` buckets given by ``index``.

    ``out[s] = sum_{i : index[i] == s} values[i]`` — the core aggregation of
    every GNN layer (messages → destination nodes) and of graph pooling
    (nodes → graphs).
    """
    values = as_tensor(values)
    index = _check_index(index)
    out_shape = (num_segments,) + values.shape[1:]
    data = np.zeros(out_shape, dtype=np.float64)
    np.add.at(data, index, values.data)

    def backward(out: Tensor) -> None:
        values._accumulate(out.grad[index])

    return Tensor._make(data, (values,), backward)


def segment_count(index: np.ndarray, num_segments: int) -> np.ndarray:
    """Number of rows routed to each segment (plain ndarray)."""
    index = _check_index(index)
    return np.bincount(index, minlength=num_segments).astype(np.float64)


def segment_mean(values: Tensor, index: np.ndarray, num_segments: int) -> Tensor:
    """Mean-aggregate rows per segment; empty segments yield zeros."""
    totals = segment_sum(values, index, num_segments)
    counts = np.maximum(segment_count(index, num_segments), 1.0)
    return totals * Tensor(1.0 / counts).reshape(
        (num_segments,) + (1,) * (totals.ndim - 1))


def segment_max(values: Tensor, index: np.ndarray, num_segments: int,
                fill: float = 0.0) -> Tensor:
    """Max-aggregate rows per segment.

    Empty segments are filled with ``fill``. Gradient flows to the (first)
    argmax element per segment/feature, matching scatter-max semantics.
    """
    values = as_tensor(values)
    index = _check_index(index)
    out_shape = (num_segments,) + values.shape[1:]
    data = np.full(out_shape, -np.inf, dtype=np.float64)
    np.maximum.at(data, index, values.data)
    empty = ~np.isfinite(data)
    data = np.where(empty, fill, data)

    def backward(out: Tensor) -> None:
        # Route gradient to entries equal to their segment max; split ties.
        winners = (values.data == data[index]) & ~empty[index]
        tie_counts = np.zeros(out_shape, dtype=np.float64)
        np.add.at(tie_counts, index, winners.astype(np.float64))
        tie_counts = np.maximum(tie_counts, 1.0)
        grad = np.where(winners, out.grad[index] / tie_counts[index], 0.0)
        values._accumulate(grad)

    return Tensor._make(data, (values,), backward)


def segment_softmax(values: Tensor, index: np.ndarray,
                    num_segments: int) -> Tensor:
    """Softmax over groups of rows sharing the same segment (GAT attention).

    Implemented as a composition of differentiable primitives, so it needs no
    bespoke vjp: ``softmax_i = exp(v_i - max_seg) / sum_seg exp(...)``.
    """
    values = as_tensor(values)
    index = _check_index(index)
    seg_max = segment_max(values, index, num_segments, fill=0.0)
    shifted = values - gather(seg_max, index)
    exps = shifted.exp()
    denom = gather(segment_sum(exps, index, num_segments), index)
    return exps / (denom + 1e-16)


# ----------------------------------------------------------------------
# Profiler op table (consumed by repro.obs.profiler)
# ----------------------------------------------------------------------
def _flops_scatter(args, kwargs, out) -> float:
    """One add/compare per scattered input row element."""
    values = args[0]
    size = values.data.size if isinstance(values, Tensor) else np.size(values)
    return float(size)


def _flops_gather(args, kwargs, out) -> float:
    """Data movement only."""
    return 0.0


#: Module-level functions profiled by :class:`repro.obs.profiler.OpProfiler`.
#: The composite ops (``segment_mean``, ``segment_softmax``) are built from
#: the primitives below, so their *self* time in a profile excludes the
#: nested ``segment_sum``/``gather``/``exp`` calls, which report separately.
PROFILED_OPS = [
    ("gather", "gather", _flops_gather),
    ("segment_sum", "segment_sum", _flops_scatter),
    ("segment_mean", "segment_mean", _flops_scatter),
    ("segment_max", "segment_max", _flops_scatter),
    ("segment_softmax", "segment_softmax", _flops_scatter),
]
