"""Autodiff substrate: :class:`Tensor`, primitive ops, and segment kernels."""

from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    is_grad_enabled,
    no_grad,
    stack,
    where,
)
from .segment import (
    ScatterPlan,
    gather,
    segment_count,
    segment_max,
    segment_mean,
    segment_softmax,
    segment_sum,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "ScatterPlan",
    "gather",
    "segment_sum",
    "segment_mean",
    "segment_max",
    "segment_softmax",
    "segment_count",
]
