"""Reverse-mode automatic differentiation on numpy arrays.

This module is the computational substrate for the whole reproduction: the
paper's models were written against PyTorch, which is unavailable here, so we
implement the needed subset — a :class:`Tensor` wrapping an ``ndarray``, a
dynamic tape, and vector-Jacobian products for every primitive the GNN stack
uses.

Design notes
------------
* The tape is implicit: each ``Tensor`` produced by an op keeps references to
  its parents and a ``_backward`` vjp that accumulates gradients into
  them. ``Tensor.backward`` topologically sorts the graph and runs vjps
  in reverse order.
* Gradients are plain ``numpy`` arrays stored on ``Tensor.grad``.
* Broadcasting follows numpy semantics; ``_unbroadcast`` reduces gradients
  back to the parent's shape.
* A module-level switch (:func:`no_grad`) disables taping for inference.
* ``backward`` is *consuming*: it releases each visited node's vjp,
  parent references and intermediate (non-leaf) gradient buffer as soon as
  they have been used, so a training step holds no tape garbage after the
  pass. A second ``backward`` on the same tape raises instead of silently
  double-accumulating (pass ``retain_graph=True`` to opt back into the
  re-runnable-tape behaviour, in which gradients accumulate across calls).
* Vjps donate freshly allocated arrays to :meth:`Tensor._accumulate`
  (``own=True``), which then adopts the buffer instead of copying into a
  zero-initialised one — the backward pass allocates roughly half as many
  arrays as a naive implementation.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "as_tensor"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient taping inside its block."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether ops executed now will be recorded on the tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dimensions that were 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def as_tensor(value, requires_grad: bool = False) -> "Tensor":
    """Coerce ``value`` (Tensor, ndarray, scalar, list) to a Tensor."""
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64), requires_grad=requires_grad)


class Tensor:
    """A numpy array with reverse-mode autodiff support.

    Parameters
    ----------
    data:
        Array-like payload; stored as ``float64`` unless already a float
        ndarray.
    requires_grad:
        Whether gradients should be accumulated for this leaf.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_consumed")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype.kind != "f":
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Callable[["Tensor"], None] | None = None
        self._parents: tuple["Tensor", ...] = ()
        self._consumed: bool = False

    # ------------------------------------------------------------------
    # Basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new Tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    # ------------------------------------------------------------------
    # Tape plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[["Tensor"], None] | None) -> "Tensor":
        """Create an op output; record it on the tape if grad is enabled."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires and backward is not None:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray, own: bool = False) -> None:
        """Add ``grad`` into ``self.grad`` (allocating on first touch).

        ``own=True`` promises that ``grad`` is a freshly allocated float64
        array the caller will not touch again, letting the first
        accumulation adopt the buffer instead of copying it. Vjps in this
        module use it for every gradient they materialise themselves;
        pass-through gradients (views of ``out.grad``) keep ``own=False``.
        """
        if not self.requires_grad:
            return
        if self.grad is None:
            if grad.shape != self.data.shape:
                grad = np.broadcast_to(grad, self.data.shape)
                own = False
            self.grad = grad if own else np.array(grad, dtype=np.float64)
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None, *,
                 retain_graph: bool = False) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Seed gradient; defaults to ones (scalar outputs may omit it).
        retain_graph:
            By default the tape is *consumed*: every visited node's vjp,
            parent links and intermediate gradient buffer are released as
            soon as the pass is done with them, and a second ``backward``
            on the same tensor raises ``RuntimeError`` (it would otherwise
            silently double-accumulate into the leaves). Pass ``True`` to
            keep the tape alive for another pass.
        """
        if self._consumed:
            raise RuntimeError(
                "backward() on an already-consumed tape: the first call "
                "released its intermediate state, so a second pass would "
                "silently accumulate garbage. Recompute the forward pass, "
                "or use backward(retain_graph=True) on the first call.")
        if grad is None:
            grad = np.ones_like(self.data, dtype=np.float64)
        else:
            grad = np.asarray(grad, dtype=np.float64)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(topo):
            backward_fn = node._backward
            if backward_fn is not None:
                if node.grad is not None:
                    backward_fn(node)
                # An intermediate's gradient buffer is dead weight once
                # propagated — and must not survive into a retained-tape
                # second pass, where it would compound. Leaves (no vjp)
                # keep their accumulated .grad for the optimiser.
                node.grad = None
                if not retain_graph:
                    # Release the tape as we go: the vjp and the parent
                    # links are only needed again under retain_graph.
                    node._backward = None
                    node._parents = ()
        if not retain_graph:
            self._consumed = True

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            grad = out.grad
            g_self = _unbroadcast(grad, self.shape)
            self._accumulate(g_self, own=g_self is not grad)
            g_other = _unbroadcast(grad, other.shape)
            other._accumulate(g_other, own=g_other is not grad)

        return Tensor._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            grad = out.grad
            g_self = _unbroadcast(grad, self.shape)
            self._accumulate(g_self, own=g_self is not grad)
            other._accumulate(_unbroadcast(-grad, other.shape), own=True)

        return Tensor._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            grad = out.grad
            self._accumulate(_unbroadcast(grad * other.data, self.shape),
                             own=True)
            other._accumulate(_unbroadcast(grad * self.data, other.shape),
                              own=True)

        return Tensor._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)

        def backward(out: Tensor) -> None:
            grad = out.grad
            self._accumulate(_unbroadcast(grad / other.data, self.shape),
                             own=True)
            other._accumulate(_unbroadcast(
                -grad * self.data / (other.data ** 2), other.shape), own=True)

        return Tensor._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(-out.grad, own=True)

        return Tensor._make(-self.data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        exponent = float(exponent)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1),
                             own=True)

        return Tensor._make(self.data ** exponent, (self,), backward)

    # Comparisons return plain boolean ndarrays (non-differentiable).
    def __gt__(self, other):
        return self.data > (other.data if isinstance(other, Tensor) else other)

    def __lt__(self, other):
        return self.data < (other.data if isinstance(other, Tensor) else other)

    def __ge__(self, other):
        return self.data >= (other.data if isinstance(other, Tensor) else other)

    def __le__(self, other):
        return self.data <= (other.data if isinstance(other, Tensor) else other)

    # ------------------------------------------------------------------
    # Matrix ops
    # ------------------------------------------------------------------
    def __matmul__(self, other) -> "Tensor":
        """Matrix product supporting the 1-D/2-D combinations numpy allows.

        Batched (>2-D) matmul is intentionally unsupported — the GNN stack
        works on flat node matrices.
        """
        other = as_tensor(other)
        if self.ndim > 2 or other.ndim > 2:
            raise ValueError("matmul supports only 1-D and 2-D operands")

        def backward(out: Tensor) -> None:
            grad = out.grad
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:        # dot product → scalar
                self._accumulate(grad * b, own=True)
                other._accumulate(grad * a, own=True)
            elif a.ndim == 2 and b.ndim == 2:      # (n,k)@(k,m)
                self._accumulate(grad @ b.T, own=True)
                other._accumulate(a.T @ grad, own=True)
            elif a.ndim == 1:                      # (k,)@(k,m) → (m,)
                self._accumulate(b @ grad, own=True)
                other._accumulate(np.outer(a, grad), own=True)
            else:                                  # (n,k)@(k,) → (n,)
                self._accumulate(np.outer(grad, b), own=True)
                other._accumulate(a.T @ grad, own=True)

        return Tensor._make(self.data @ other.data, (self, other), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def transpose(self, axes: tuple[int, ...] | None = None) -> "Tensor":
        def backward(out: Tensor) -> None:
            if axes is None:
                self._accumulate(out.grad.T)
            else:
                inverse = np.argsort(axes)
                self._accumulate(out.grad.transpose(inverse))

        data = self.data.T if axes is None else self.data.transpose(axes)
        return Tensor._make(data, (self,), backward)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad.reshape(original))

        return Tensor._make(self.data.reshape(shape), (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = np.zeros_like(self.data, dtype=np.float64)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad, own=True)

        return Tensor._make(self.data[index], (self,), backward)

    # ------------------------------------------------------------------
    # Nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        value = np.exp(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * value, own=True)

        return Tensor._make(value, (self,), backward)

    def log(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(out.grad / self.data, own=True)

        return Tensor._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        value = np.sqrt(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * 0.5 / np.maximum(value, 1e-12),
                             own=True)

        return Tensor._make(value, (self,), backward)

    def abs(self) -> "Tensor":
        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * np.sign(self.data), own=True)

        return Tensor._make(np.abs(self.data), (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask, own=True)

        return Tensor._make(self.data * mask, (self,), backward)

    def leaky_relu(self, slope: float = 0.2) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, slope)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * scale, own=True)

        return Tensor._make(self.data * scale, (self,), backward)

    def sigmoid(self) -> "Tensor":
        value = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * value * (1.0 - value), own=True)

        return Tensor._make(value, (self,), backward)

    def tanh(self) -> "Tensor":
        value = np.tanh(self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * (1.0 - value ** 2), own=True)

        return Tensor._make(value, (self,), backward)

    def softplus(self) -> "Tensor":
        """``log(1 + e^x)`` — the ρ(x) of the paper's Lemma 2, stable form."""
        value = np.logaddexp(0.0, self.data)

        def backward(out: Tensor) -> None:
            self._accumulate(
                out.grad / (1.0 + np.exp(-np.clip(self.data, -60, 60))),
                own=True)

        return Tensor._make(value, (self,), backward)

    def clip(self, low: float | None, high: float | None) -> "Tensor":
        lo = -np.inf if low is None else low
        hi = np.inf if high is None else high
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(out: Tensor) -> None:
            self._accumulate(out.grad * mask, own=True)

        return Tensor._make(np.clip(self.data, lo, hi), (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None,
            keepdims: bool = False) -> "Tensor":
        def backward(out: Tensor) -> None:
            grad = out.grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.ndim for a in axes):
                    grad = np.expand_dims(grad, ax)
            # broadcast_to gives a read-only view; _accumulate copies it on
            # first touch and adds through it afterwards — one pass either
            # way, instead of the old explicit .copy() plus add.
            self._accumulate(np.broadcast_to(grad, self.shape))

        return Tensor._make(self.data.sum(axis=axis, keepdims=keepdims),
                            (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None,
             keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        value = self.data.max(axis=axis, keepdims=keepdims)

        def backward(out: Tensor) -> None:
            grad = out.grad
            full = value
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                full = np.expand_dims(value, axis)
            mask = (self.data == full)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None \
                else mask.sum()
            self._accumulate(mask * (grad / counts), own=True)

        return Tensor._make(value, (self,), backward)

    def norm(self, axis: int | None = None, keepdims: bool = False,
             eps: float = 1e-12) -> "Tensor":
        """L2 norm, differentiable at 0 via an epsilon floor."""
        squared = (self * self).sum(axis=axis, keepdims=keepdims)
        return (squared + eps).sqrt()

    # ------------------------------------------------------------------
    # Softmax family (row-wise, numerically stable)
    # ------------------------------------------------------------------
    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        value = shifted - log_z
        softmax = np.exp(value)

        def backward(out: Tensor) -> None:
            grad_sum = out.grad.sum(axis=axis, keepdims=True)
            self._accumulate(out.grad - softmax * grad_sum, own=True)

        return Tensor._make(value, (self,), backward)

    def softmax(self, axis: int = -1) -> "Tensor":
        return self.log_softmax(axis=axis).exp()


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(out: Tensor) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            index = [slice(None)] * out.ndim
            index[axis] = slice(start, stop)
            tensor._accumulate(out.grad[tuple(index)])

    data = np.concatenate([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stacking along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]

    def backward(out: Tensor) -> None:
        for i, tensor in enumerate(tensors):
            tensor._accumulate(np.take(out.grad, i, axis=axis), own=True)

    data = np.stack([t.data for t in tensors], axis=axis)
    return Tensor._make(data, tensors, backward)


def where(condition, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable select; ``condition`` is a boolean ndarray or Tensor.

    A Tensor condition contributes its (non-differentiable) ``.data`` —
    coercing the Tensor object itself through ``np.asarray`` would build a
    bogus 0-d object array instead of reading the payload.
    """
    a, b = as_tensor(a), as_tensor(b)
    if isinstance(condition, Tensor):
        condition = condition.data
    condition = np.asarray(condition, dtype=bool)

    def backward(out: Tensor) -> None:
        grad = out.grad
        a._accumulate(_unbroadcast(grad * condition, a.shape), own=True)
        b._accumulate(_unbroadcast(grad * ~condition, b.shape), own=True)

    return Tensor._make(np.where(condition, a.data, b.data), (a, b), backward)


# ----------------------------------------------------------------------
# Profiler op table (consumed by repro.obs.profiler)
# ----------------------------------------------------------------------
def _size_of(value) -> int:
    if isinstance(value, Tensor):
        return value.data.size
    if isinstance(value, np.ndarray):
        return value.size
    return 1


def _flops_elementwise(args, kwargs, out) -> float:
    """One fused pass over the output (forward only)."""
    return float(_size_of(out))


def _flops_matmul(args, kwargs, out) -> float:
    """2·k multiply-adds per output element, k = the contracted dim."""
    a = args[0]
    k = a.shape[-1] if a.ndim else 1
    return 2.0 * k * _size_of(out)


def _flops_reduction(args, kwargs, out) -> float:
    """One pass over the *input* (sum/mean/max read every element)."""
    return float(_size_of(args[0]))


def _flops_zero(args, kwargs, out) -> float:
    """Data movement only (transpose/reshape/indexing/concat)."""
    return 0.0


#: ``(target, op label, flops estimator)`` rows consumed by
#: :class:`repro.obs.profiler.OpProfiler`. ``target`` is either
#: ``"Tensor.<method>"`` (patched on the class, so every call site sees
#: it) or a module-level function name (patched in this module and
#: re-bound in every importing ``repro.*`` module). Estimators receive
#: ``(args, kwargs, result)`` and return forward-pass flops; ``backward``
#: is timed but carries no static estimate (its work depends on the tape).
PROFILED_OPS = [
    ("Tensor.__add__", "add", _flops_elementwise),
    ("Tensor.__radd__", "add", _flops_elementwise),
    ("Tensor.__sub__", "sub", _flops_elementwise),
    ("Tensor.__rsub__", "sub", _flops_elementwise),
    ("Tensor.__mul__", "mul", _flops_elementwise),
    ("Tensor.__rmul__", "mul", _flops_elementwise),
    ("Tensor.__truediv__", "div", _flops_elementwise),
    ("Tensor.__rtruediv__", "div", _flops_elementwise),
    ("Tensor.__neg__", "neg", _flops_elementwise),
    ("Tensor.__pow__", "pow", _flops_elementwise),
    ("Tensor.__matmul__", "matmul", _flops_matmul),
    ("Tensor.__getitem__", "getitem", _flops_zero),
    ("Tensor.transpose", "transpose", _flops_zero),
    ("Tensor.reshape", "reshape", _flops_zero),
    ("Tensor.exp", "exp", _flops_elementwise),
    ("Tensor.log", "log", _flops_elementwise),
    ("Tensor.sqrt", "sqrt", _flops_elementwise),
    ("Tensor.abs", "abs", _flops_elementwise),
    ("Tensor.relu", "relu", _flops_elementwise),
    ("Tensor.leaky_relu", "leaky_relu", _flops_elementwise),
    ("Tensor.sigmoid", "sigmoid", _flops_elementwise),
    ("Tensor.tanh", "tanh", _flops_elementwise),
    ("Tensor.softplus", "softplus", _flops_elementwise),
    ("Tensor.clip", "clip", _flops_elementwise),
    ("Tensor.sum", "sum", _flops_reduction),
    ("Tensor.mean", "mean", _flops_reduction),
    ("Tensor.max", "max", _flops_reduction),
    ("Tensor.norm", "norm", _flops_reduction),
    ("Tensor.log_softmax", "log_softmax", _flops_elementwise),
    ("Tensor.softmax", "softmax", _flops_elementwise),
    ("Tensor.backward", "backward", None),
    ("concatenate", "concatenate", _flops_zero),
    ("stack", "stack", _flops_zero),
    ("where", "where", _flops_elementwise),
]
