"""Deterministic process-pool map — the substrate of every parallel path.

:class:`ParallelExecutor` runs a picklable function over a list of items
on a pool of worker processes while keeping the *results* indistinguishable
from a serial run:

* **Deterministic chunking** — items are split into contiguous chunks by
  index before submission, and results are reassembled by chunk index, so
  the output order never depends on worker scheduling.
* **Per-task seeding** — :meth:`ParallelExecutor.map_seeded` derives one
  independent child seed per item from the run seed via
  :class:`numpy.random.SeedSequence`, so a task's RNG stream depends only
  on ``(base_seed, item index)`` — not on which worker ran it or how many
  workers there were.
* **Bounded retries** — a failed chunk is resubmitted up to ``retries``
  extra times (covering workers killed by the OOM killer or flaky I/O);
  the original traceback travels back as text and is raised in the parent
  as :class:`ParallelExecutionError` once the budget is exhausted.
* **Fault containment** — the pool is self-managed (one task inbox and one
  private result pipe per worker process — no lock is ever shared between
  workers, so a worker killed at any instant cannot strand a lock a
  sibling needs), and the parent can *see* sick workers:
  a worker that dies mid-chunk (``resilience/worker_deaths``) is replaced
  and its chunk resubmitted; a worker that exceeds the per-chunk
  ``timeout`` is declared hung (``resilience/hung_workers``), terminated
  and replaced; after ``max_pool_failures`` such events the executor
  stops trusting process workers and finishes the remaining chunks
  serially (``resilience/serial_degradations``). Because chunks are
  deterministic and reassembled by index, none of this changes results —
  the bit-identical serial-vs-parallel guarantee holds through every
  recovery path.
* **Serial fallback** — with ``workers <= 1``, a single item, or on
  platforms without ``fork``, ``map`` degrades to an in-process loop over
  the *same* task wrapper, so the serial and parallel code paths cannot
  drift apart.

The worker function must be picklable (defined at module level) for the
process-pool path; the serial fallback accepts any callable. Worker counts
come from the explicit argument, else the ``REPRO_WORKERS`` environment
variable, else 1 (see :func:`resolve_workers`).
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import os
import time
import traceback
from collections import deque
from typing import Callable, Sequence

import numpy as np

from ..obs import current
from ..resilience import RetryPolicy

__all__ = ["ParallelExecutor", "ParallelExecutionError", "resolve_workers",
           "task_seeds"]

_WORKERS_ENV = "REPRO_WORKERS"

# Parent poll interval while waiting for results; bounds how stale the
# liveness/deadline checks can be, so a hung worker is detected within
# roughly `timeout + _TICK` seconds.
_TICK = 0.05


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: explicit arg > ``REPRO_WORKERS`` env > 1.

    Values below 1 are clamped to 1 (serial); a malformed environment
    variable is ignored rather than crashing the run.
    """
    if workers is None:
        raw = os.environ.get(_WORKERS_ENV, "")
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
    return max(1, workers)


def fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def task_seeds(base_seed: int, n: int) -> list[int]:
    """``n`` independent per-task seeds derived from ``base_seed``.

    Uses ``SeedSequence.spawn`` so streams are statistically independent
    and depend only on ``(base_seed, index)`` — identical whether the tasks
    later run serially or across any number of workers.
    """
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(child.generate_state(1, dtype=np.uint64)[0])
            for child in children]


class ParallelExecutionError(RuntimeError):
    """A task failed on every attempt; carries the worker-side traceback.

    For exceptions raised inside the worker function, ``remote_traceback``
    is the formatted remote traceback; for workers that died or hung,
    it describes the process-level failure instead.
    """

    def __init__(self, index: int, attempts: int, remote_traceback: str):
        self.index = index
        self.attempts = attempts
        self.remote_traceback = remote_traceback
        super().__init__(
            f"task {index} failed after {attempts} attempt(s); "
            f"worker traceback:\n{remote_traceback}")


def _worker_init() -> None:
    """Reset observability in forked workers.

    A forked child inherits the parent's activation stack — including any
    JSONL sink's open file descriptor; letting every worker append to the
    parent's run log would interleave writes. Workers therefore run under
    the shared no-op observer; telemetry for parallel work is emitted from
    the parent around the map (the serial fallback, which runs in-process,
    keeps full ambient observability).
    """
    from ..obs.observer import _ACTIVE, NULL_OBSERVER

    _ACTIVE[:] = [NULL_OBSERVER]


def _run_chunk(fn: Callable, chunk: list) -> tuple[bool, object]:
    """Run one chunk of items; never raises across the process boundary."""
    try:
        return True, [fn(item) for item in chunk]
    except BaseException:  # noqa: BLE001 — serialised and re-raised in parent
        return False, traceback.format_exc()


def _worker_main(fn: Callable, inbox, result_conn) -> None:
    """Worker loop: pull ``(chunk_index, chunk)`` tasks until the sentinel.

    Results go back over this worker's *private* pipe, synchronously from
    this thread. That matters for fault containment: the pipe has exactly
    one writer, so no shared lock exists that a killed worker could leave
    held (``multiprocessing.Queue``'s background feeder thread would — a
    task calling ``os._exit`` can strand the queue's write-lock and
    deadlock every sibling's results).
    """
    _worker_init()
    while True:
        task = inbox.get()
        if task is None:
            return
        index, chunk = task
        ok, payload = _run_chunk(fn, chunk)
        result_conn.send((index, ok, payload))


class _SeededTask:
    """Picklable wrapper calling ``fn(item, seed)`` for map_seeded."""

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, pair):
        item, seed = pair
        return self.fn(item, seed)


class _WorkerHandle:
    """One managed worker: process, private task inbox, private result pipe."""

    __slots__ = ("process", "inbox", "reader")

    def __init__(self, process, inbox, reader):
        self.process = process
        self.inbox = inbox
        self.reader = reader

    def stop(self, *, force: bool = False) -> None:
        """Best-effort shutdown: sentinel first, escalation if needed.

        The result pipe is closed unread — a worker terminated mid-send
        leaves a partial frame, and abandoning the pipe (rather than ever
        calling ``recv`` on it) is what keeps that from blocking anyone.
        """
        if self.process.is_alive() and not force:
            try:
                self.inbox.put(None)
            except (OSError, ValueError):
                pass
            self.process.join(timeout=0.5)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=0.5)
        if self.process.is_alive():  # pragma: no cover — terminate refused
            self.process.kill()
            self.process.join(timeout=0.5)
        try:
            self.reader.close()
        except OSError:  # pragma: no cover — already closed
            pass


class ParallelExecutor:
    """Order-preserving map over a process pool (or serially, identically).

    Parameters
    ----------
    workers:
        Worker process count; ``None`` reads ``REPRO_WORKERS`` (default 1).
        ``workers <= 1`` — or a platform without ``fork`` — runs serially.
    chunk_size:
        Items per submitted task. ``None`` picks
        ``ceil(len(items) / (4 * workers))`` (a few chunks per worker so
        stragglers rebalance) — always at least 1.
    retries:
        Extra attempts for a failed chunk before raising
        :class:`ParallelExecutionError`. Worker deaths and hangs consume
        the same budget as in-task exceptions.
    timeout:
        Per-chunk attempt budget in seconds; a worker that exceeds it is
        declared hung, terminated and replaced, and the chunk resubmitted.
        ``None`` (default) disables hang detection.
    max_pool_failures:
        Process-level failures (deaths + hangs) tolerated before the
        executor degrades to completing the remaining chunks serially.
    backoff:
        Optional :class:`repro.resilience.RetryPolicy` used purely for its
        deterministic backoff schedule between resubmissions of a failed
        chunk (attempt counting stays with the executor). Default: no
        delay.

    Examples
    --------
    >>> executor = ParallelExecutor(workers=2)
    >>> executor.map(math.sqrt, [1.0, 4.0, 9.0])
    [1.0, 2.0, 3.0]
    """

    def __init__(self, workers: int | None = None, *,
                 chunk_size: int | None = None, retries: int = 1,
                 timeout: float | None = None, max_pool_failures: int = 3,
                 backoff: RetryPolicy | None = None):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        if max_pool_failures < 1:
            raise ValueError("max_pool_failures must be >= 1")
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.retries = retries
        self.timeout = timeout
        self.max_pool_failures = max_pool_failures
        self.backoff = backoff

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether ``map`` will actually use worker processes."""
        return self.workers > 1 and fork_available()

    def map(self, fn: Callable, items: Sequence) -> list:
        """``[fn(item) for item in items]``, possibly across processes.

        Results are returned in input order regardless of completion
        order. With ``workers <= 1`` (or no ``fork``) this is an ordinary
        in-process loop sharing the retry/error handling of the pool path.
        """
        items = list(items)
        obs = current()
        obs.set_gauge("runtime/workers", self.workers)
        with obs.span("runtime/map"):
            obs.increment("runtime/tasks", len(items))
            if not items:
                return []
            if not self.parallel or len(items) == 1:
                return self._map_serial(fn, items)
            return self._map_pool(fn, items)

    def map_seeded(self, fn: Callable, items: Sequence, base_seed: int) -> list:
        """``fn(item, seed)`` per item with deterministic per-task seeds.

        ``seed`` is an integer suitable for ``np.random.default_rng``; see
        :func:`task_seeds` for the derivation contract.
        """
        items = list(items)
        pairs = list(zip(items, task_seeds(base_seed, len(items))))
        return self.map(_SeededTask(fn), pairs)

    # ------------------------------------------------------------------
    def _pause_before_retry(self, attempt: int) -> None:
        """Deterministic backoff between chunk attempts (off by default)."""
        if self.backoff is None:
            return
        pause = self.backoff.delay(attempt)
        if pause > 0:
            self.backoff.sleep(pause)

    def _map_serial(self, fn: Callable, items: list) -> list:
        results = []
        for index, item in enumerate(items):
            for attempt in range(self.retries + 1):
                ok, payload = _run_chunk(fn, [item])
                if ok:
                    results.append(payload[0])
                    break
                current().increment("runtime/retries")
                if attempt == self.retries:
                    raise ParallelExecutionError(index, attempt + 1, payload)
                self._pause_before_retry(attempt)
        return results

    def _run_chunk_serially(self, fn: Callable, chunks: list, index: int,
                            chunk_size: int, first_attempt: int) -> list:
        """Finish one chunk in-process, honouring its remaining attempts."""
        for attempt in range(first_attempt, self.retries + 1):
            ok, payload = _run_chunk(fn, chunks[index])
            if ok:
                return payload
            current().increment("runtime/retries")
            if attempt == self.retries:
                raise ParallelExecutionError(
                    index * chunk_size, attempt + 1, payload)
            self._pause_before_retry(attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # Self-managed worker pool
    # ------------------------------------------------------------------
    def _map_pool(self, fn: Callable, items: list) -> list:
        obs = current()
        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = max(1, -(-len(items) // (4 * self.workers)))
        chunks = [items[start:start + chunk_size]
                  for start in range(0, len(items), chunk_size)]
        results: list = [None] * len(chunks)
        done = [False] * len(chunks)
        completed = 0
        # (chunk_index, attempt) queue; failed chunks rejoin at the front so
        # stragglers retry before fresh work piles on.
        pending: deque[tuple[int, int]] = deque(
            (i, 0) for i in range(len(chunks)))

        context = multiprocessing.get_context("fork")
        worker_ids = itertools.count()
        workers: dict[int, _WorkerHandle] = {}
        # worker_id -> (chunk_index, attempt, deadline | None)
        outstanding: dict[int, tuple[int, int, float | None]] = {}
        pool_failures = 0
        degraded = False

        def spawn_worker() -> None:
            worker_id = next(worker_ids)
            inbox = context.SimpleQueue()
            reader, writer = context.Pipe(duplex=False)
            process = context.Process(
                target=_worker_main, args=(fn, inbox, writer),
                name=f"repro-worker-{worker_id}", daemon=True)
            process.start()
            writer.close()  # the child keeps its copy; ours would mask EOF
            workers[worker_id] = _WorkerHandle(process, inbox, reader)

        def retire_worker(worker_id: int, *, force: bool) -> None:
            handle = workers.pop(worker_id)
            outstanding.pop(worker_id, None)
            handle.stop(force=force)

        def handle_pool_failure(worker_id: int, counter: str,
                                description: str) -> None:
            """A worker died or hung mid-chunk: contain, count, resubmit."""
            nonlocal pool_failures, degraded
            index, attempt, _ = outstanding[worker_id]
            retire_worker(worker_id, force=True)
            pool_failures += 1
            obs.increment(counter)
            obs.increment("runtime/retries")
            if attempt >= self.retries:
                raise ParallelExecutionError(
                    index * chunk_size, attempt + 1, description)
            self._pause_before_retry(attempt)
            pending.appendleft((index, attempt + 1))
            if pool_failures >= self.max_pool_failures:
                degraded = True
            else:
                spawn_worker()

        def check_workers() -> None:
            now = time.monotonic()
            for worker_id in list(outstanding):
                index, _, deadline = outstanding[worker_id]
                process = workers[worker_id].process
                if not process.is_alive():
                    handle_pool_failure(
                        worker_id, "resilience/worker_deaths",
                        f"worker process for chunk {index} died with "
                        f"exitcode {process.exitcode} before returning a "
                        f"result")
                elif deadline is not None and now > deadline:
                    handle_pool_failure(
                        worker_id, "resilience/hung_workers",
                        f"worker process for chunk {index} exceeded the "
                        f"{self.timeout}s per-chunk timeout and was "
                        f"terminated")

        def accept_result(worker_id: int, index: int, ok: bool,
                          payload) -> None:
            nonlocal completed
            entry = outstanding.pop(worker_id, None)
            if done[index] or entry is None:
                # Retired workers' pipes are never read, so this is purely
                # defensive: nothing to record, nothing to double-count.
                return
            if ok:
                results[index] = payload
                done[index] = True
                completed += 1
                return
            attempt = entry[1]
            obs.increment("runtime/retries")
            if attempt >= self.retries:
                raise ParallelExecutionError(
                    index * chunk_size, attempt + 1, payload)
            self._pause_before_retry(attempt)
            pending.appendleft((index, attempt + 1))

        try:
            for _ in range(min(self.workers, len(chunks))):
                spawn_worker()
            while completed < len(chunks) and not degraded:
                # Dispatch to idle workers.
                idle = [wid for wid in workers if wid not in outstanding]
                for worker_id in idle:
                    if not pending:
                        break
                    index, attempt = pending.popleft()
                    try:
                        workers[worker_id].inbox.put((index, chunks[index]))
                    except (OSError, ValueError):
                        # Inbox pipe already broken — treat as a dead worker.
                        pending.appendleft((index, attempt))
                        retire_worker(worker_id, force=True)
                        spawn_worker()
                        continue
                    deadline = None if self.timeout is None \
                        else time.monotonic() + self.timeout
                    outstanding[worker_id] = (index, attempt, deadline)
                # Collect whatever results are ready (or time out and run
                # health checks). Only *live* workers' pipes are waited on;
                # a retired worker's pipe may hold a partial frame and is
                # never touched again.
                readers = {handle.reader: wid
                           for wid, handle in workers.items()}
                ready = multiprocessing.connection.wait(
                    list(readers), timeout=_TICK)
                if not ready:
                    check_workers()
                    continue
                for conn in ready:
                    worker_id = readers[conn]
                    if worker_id not in workers:
                        continue  # retired earlier in this same batch
                    try:
                        index, ok, payload = conn.recv()
                    except (EOFError, OSError):
                        # The worker died with nothing (complete) to read;
                        # check_workers attributes and handles the death.
                        check_workers()
                        continue
                    accept_result(worker_id, index, ok, payload)
            if degraded:
                # The pool has failed too often to be trusted; reclaim every
                # in-flight chunk and finish the job in-process. Results are
                # keyed by chunk index, so the output is bit-identical to an
                # all-parallel (or all-serial) run.
                obs.increment("resilience/serial_degradations")
                obs.set_gauge("runtime/degraded", 1)
                for worker_id in list(workers):
                    entry = outstanding.get(worker_id)
                    if entry is not None:
                        pending.appendleft((entry[0], entry[1]))
                    retire_worker(worker_id, force=True)
                while pending:
                    index, attempt = pending.popleft()
                    if done[index]:
                        continue
                    results[index] = self._run_chunk_serially(
                        fn, chunks, index, chunk_size, attempt)
                    done[index] = True
                    completed += 1
        finally:
            for worker_id in list(workers):
                retire_worker(worker_id, force=False)
        return [value for chunk in results for value in chunk]
