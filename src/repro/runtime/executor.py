"""Deterministic process-pool map — the substrate of every parallel path.

:class:`ParallelExecutor` runs a picklable function over a list of items
on a pool of worker processes while keeping the *results* indistinguishable
from a serial run:

* **Deterministic chunking** — items are split into contiguous chunks by
  index before submission, and results are reassembled by chunk index, so
  the output order never depends on worker scheduling.
* **Per-task seeding** — :meth:`ParallelExecutor.map_seeded` derives one
  independent child seed per item from the run seed via
  :class:`numpy.random.SeedSequence`, so a task's RNG stream depends only
  on ``(base_seed, item index)`` — not on which worker ran it or how many
  workers there were.
* **Bounded retries** — a failed chunk is resubmitted up to ``retries``
  extra times (covering workers killed by the OOM killer or flaky I/O);
  the original traceback travels back as text and is raised in the parent
  as :class:`ParallelExecutionError` once the budget is exhausted.
* **Serial fallback** — with ``workers <= 1``, a single item, or on
  platforms without ``fork``, ``map`` degrades to an in-process loop over
  the *same* task wrapper, so the serial and parallel code paths cannot
  drift apart.

The worker function must be picklable (defined at module level) for the
process-pool path; the serial fallback accepts any callable. Worker counts
come from the explicit argument, else the ``REPRO_WORKERS`` environment
variable, else 1 (see :func:`resolve_workers`).
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from typing import Callable, Sequence

import numpy as np

from ..obs import current

__all__ = ["ParallelExecutor", "ParallelExecutionError", "resolve_workers",
           "task_seeds"]

_WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Effective worker count: explicit arg > ``REPRO_WORKERS`` env > 1.

    Values below 1 are clamped to 1 (serial); a malformed environment
    variable is ignored rather than crashing the run.
    """
    if workers is None:
        raw = os.environ.get(_WORKERS_ENV, "")
        try:
            workers = int(raw)
        except ValueError:
            workers = 1
    return max(1, workers)


def fork_available() -> bool:
    """Whether the platform supports the ``fork`` start method."""
    return "fork" in multiprocessing.get_all_start_methods()


def task_seeds(base_seed: int, n: int) -> list[int]:
    """``n`` independent per-task seeds derived from ``base_seed``.

    Uses ``SeedSequence.spawn`` so streams are statistically independent
    and depend only on ``(base_seed, index)`` — identical whether the tasks
    later run serially or across any number of workers.
    """
    children = np.random.SeedSequence(base_seed).spawn(n)
    return [int(child.generate_state(1, dtype=np.uint64)[0])
            for child in children]


class ParallelExecutionError(RuntimeError):
    """A task failed on every attempt; carries the worker-side traceback."""

    def __init__(self, index: int, attempts: int, remote_traceback: str):
        self.index = index
        self.attempts = attempts
        self.remote_traceback = remote_traceback
        super().__init__(
            f"task {index} failed after {attempts} attempt(s); "
            f"worker traceback:\n{remote_traceback}")


def _worker_init() -> None:
    """Reset observability in forked workers.

    A forked child inherits the parent's activation stack — including any
    JSONL sink's open file descriptor; letting every worker append to the
    parent's run log would interleave writes. Workers therefore run under
    the shared no-op observer; telemetry for parallel work is emitted from
    the parent around the map (the serial fallback, which runs in-process,
    keeps full ambient observability).
    """
    from ..obs.observer import _ACTIVE, NULL_OBSERVER

    _ACTIVE[:] = [NULL_OBSERVER]


def _run_chunk(fn: Callable, chunk: list) -> tuple[bool, object]:
    """Run one chunk of items; never raises across the process boundary."""
    try:
        return True, [fn(item) for item in chunk]
    except BaseException:  # noqa: BLE001 — serialised and re-raised in parent
        return False, traceback.format_exc()


class _SeededTask:
    """Picklable wrapper calling ``fn(item, seed)`` for map_seeded."""

    def __init__(self, fn: Callable):
        self.fn = fn

    def __call__(self, pair):
        item, seed = pair
        return self.fn(item, seed)


class ParallelExecutor:
    """Order-preserving map over a process pool (or serially, identically).

    Parameters
    ----------
    workers:
        Worker process count; ``None`` reads ``REPRO_WORKERS`` (default 1).
        ``workers <= 1`` — or a platform without ``fork`` — runs serially.
    chunk_size:
        Items per submitted task. ``None`` picks
        ``ceil(len(items) / (4 * workers))`` (a few chunks per worker so
        stragglers rebalance) — always at least 1.
    retries:
        Extra attempts for a failed chunk before raising
        :class:`ParallelExecutionError`.

    Examples
    --------
    >>> executor = ParallelExecutor(workers=2)
    >>> executor.map(math.sqrt, [1.0, 4.0, 9.0])
    [1.0, 2.0, 3.0]
    """

    def __init__(self, workers: int | None = None, *,
                 chunk_size: int | None = None, retries: int = 1):
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.workers = resolve_workers(workers)
        self.chunk_size = chunk_size
        self.retries = retries

    # ------------------------------------------------------------------
    @property
    def parallel(self) -> bool:
        """Whether ``map`` will actually use worker processes."""
        return self.workers > 1 and fork_available()

    def map(self, fn: Callable, items: Sequence) -> list:
        """``[fn(item) for item in items]``, possibly across processes.

        Results are returned in input order regardless of completion
        order. With ``workers <= 1`` (or no ``fork``) this is an ordinary
        in-process loop sharing the retry/error handling of the pool path.
        """
        items = list(items)
        obs = current()
        obs.set_gauge("runtime/workers", self.workers)
        with obs.span("runtime/map"):
            obs.increment("runtime/tasks", len(items))
            if not items:
                return []
            if not self.parallel or len(items) == 1:
                return self._map_serial(fn, items)
            return self._map_pool(fn, items)

    def map_seeded(self, fn: Callable, items: Sequence, base_seed: int) -> list:
        """``fn(item, seed)`` per item with deterministic per-task seeds.

        ``seed`` is an integer suitable for ``np.random.default_rng``; see
        :func:`task_seeds` for the derivation contract.
        """
        items = list(items)
        pairs = list(zip(items, task_seeds(base_seed, len(items))))
        return self.map(_SeededTask(fn), pairs)

    # ------------------------------------------------------------------
    def _map_serial(self, fn: Callable, items: list) -> list:
        results = []
        for index, item in enumerate(items):
            for attempt in range(self.retries + 1):
                ok, payload = _run_chunk(fn, [item])
                if ok:
                    results.append(payload[0])
                    break
                current().increment("runtime/retries")
                if attempt == self.retries:
                    raise ParallelExecutionError(index, attempt + 1, payload)
        return results

    def _map_pool(self, fn: Callable, items: list) -> list:
        chunk_size = self.chunk_size
        if chunk_size is None:
            chunk_size = max(1, -(-len(items) // (4 * self.workers)))
        chunks = [items[start:start + chunk_size]
                  for start in range(0, len(items), chunk_size)]
        results: list = [None] * len(chunks)
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=self.workers,
                                 mp_context=context,
                                 initializer=_worker_init) as pool:
            pending = {pool.submit(_run_chunk, fn, chunk): (index, 0)
                       for index, chunk in enumerate(chunks)}
            while pending:
                done, _ = futures_wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index, attempts = pending.pop(future)
                    ok, payload = future.result()
                    if ok:
                        results[index] = payload
                        continue
                    current().increment("runtime/retries")
                    if attempts >= self.retries:
                        first_failed = index * chunk_size
                        raise ParallelExecutionError(
                            first_failed, attempts + 1, payload)
                    retry = pool.submit(_run_chunk, fn, chunks[index])
                    pending[retry] = (index, attempts + 1)
        return [value for chunk in results for value in chunk]
