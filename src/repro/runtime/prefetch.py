"""Background batch prefetching over a bounded queue.

:class:`PrefetchLoader` wraps any iterable of batches (normally a
:class:`repro.data.DataLoader`) and assembles batches on a producer thread
while the consumer trains on the previous one. Two invariants make it a
drop-in replacement:

* **Exact batch order** — one producer iterates the inner loader
  sequentially and tags every batch with its index; the consumer yields
  them in index order, so the stream is identical to iterating the inner
  loader directly.
* **Shuffle determinism** — the inner loader's own RNG performs the
  shuffling (on the producer thread, once per epoch, in iteration order),
  so a seeded ``DataLoader`` produces the same epoch permutations with or
  without prefetching.

The queue is bounded (``prefetch`` batches), so memory stays flat no
matter how far the producer could run ahead. Abandoning iteration early
(``break``) stops the producer promptly — the generator's ``finally``
block signals it and drains the queue — and :meth:`PrefetchLoader.close`
(also reachable via ``with PrefetchLoader(...) as loader:``) shuts down
*every* producer the loader ever started, covering consumers whose
abandoned generator is not finalised promptly (reference cycles,
alternative interpreters), so a partially consumed epoch can never leave
a thread blocked on a full queue.

Batch assembly in this codebase is pure numpy concatenation, which
releases the GIL, so a single producer thread overlaps usefully with
training math even without processes.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator

from ..obs import current

__all__ = ["PrefetchLoader"]

_STOP = object()


class PrefetchLoader:
    """Iterate a loader with background batch assembly.

    Parameters
    ----------
    loader:
        The wrapped loader. Re-iterable loaders (like ``DataLoader``) make
        the ``PrefetchLoader`` re-iterable too — one producer thread per
        epoch.
    prefetch:
        Maximum batches assembled ahead of the consumer (queue bound).

    Examples
    --------
    >>> loader = DataLoader(graphs, 128, shuffle=True, rng=rng)
    >>> for batch in PrefetchLoader(loader, prefetch=2):
    ...     step(batch)          # same batches, same order as `loader`
    """

    def __init__(self, loader, *, prefetch: int = 2):
        if prefetch < 1:
            raise ValueError("prefetch must be >= 1")
        self.loader = loader
        self.prefetch = prefetch
        # Live producer epochs: (stop event, queue, thread). Entries are
        # removed when an epoch ends normally; `close()` sweeps the rest.
        self._epochs: list[tuple[threading.Event, queue.Queue,
                                 threading.Thread]] = []

    def __len__(self) -> int:
        return len(self.loader)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @staticmethod
    def _shutdown(stop: threading.Event, out: queue.Queue,
                  producer: threading.Thread) -> None:
        stop.set()
        while True:  # unblock a producer stuck on a full queue
            try:
                out.get_nowait()
            except queue.Empty:
                break
        producer.join(timeout=5.0)

    def close(self) -> None:
        """Stop every producer thread this loader started.

        Idempotent and safe mid-epoch: each live producer is signalled,
        its queue drained and the thread joined. Call it (or use the
        loader as a context manager) when abandoning consumption so no
        producer is left blocked on a full queue.
        """
        while self._epochs:
            stop, out, producer = self._epochs.pop()
            self._shutdown(stop, out, producer)

    def __enter__(self) -> "PrefetchLoader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator:
        obs = current()
        out: queue.Queue = queue.Queue(maxsize=self.prefetch)
        stop = threading.Event()

        def produce() -> None:
            try:
                for index, batch in enumerate(self.loader):
                    while not stop.is_set():
                        try:
                            out.put((index, batch), timeout=0.1)
                            break
                        except queue.Full:
                            continue
                    if stop.is_set():
                        return
                out.put(_STOP)
            except BaseException as error:  # noqa: BLE001 — re-raised below
                out.put(error)

        producer = threading.Thread(target=produce, name="repro-prefetch",
                                    daemon=True)
        with obs.span("runtime/prefetch"):
            producer.start()
        record = (stop, out, producer)
        self._epochs.append(record)
        expected = 0
        try:
            while True:
                item = out.get()
                obs.set_gauge("runtime/prefetch_depth", out.qsize())
                if item is _STOP:
                    return
                if isinstance(item, BaseException):
                    raise item
                index, batch = item
                assert index == expected, "prefetch order violated"
                expected += 1
                yield batch
        finally:
            if record in self._epochs:
                self._epochs.remove(record)
            self._shutdown(stop, out, producer)
