"""Background batch prefetching over a bounded queue.

:class:`PrefetchLoader` wraps any iterable of batches (normally a
:class:`repro.data.DataLoader`) and assembles batches on a producer thread
while the consumer trains on the previous one. Two invariants make it a
drop-in replacement:

* **Exact batch order** — one producer iterates the inner loader
  sequentially and tags every batch with its index; the consumer yields
  them in index order, so the stream is identical to iterating the inner
  loader directly.
* **Shuffle determinism** — the inner loader's own RNG performs the
  shuffling (on the producer thread, once per epoch, in iteration order),
  so a seeded ``DataLoader`` produces the same epoch permutations with or
  without prefetching.

The queue is bounded (``prefetch`` batches), so memory stays flat no
matter how far the producer could run ahead. Abandoning iteration early
(``break``) stops the producer promptly — the generator's ``finally``
block signals it and drains the queue.

Batch assembly in this codebase is pure numpy concatenation, which
releases the GIL, so a single producer thread overlaps usefully with
training math even without processes.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator

from ..obs import current

__all__ = ["PrefetchLoader"]

_STOP = object()


class PrefetchLoader:
    """Iterate a loader with background batch assembly.

    Parameters
    ----------
    loader:
        The wrapped loader. Re-iterable loaders (like ``DataLoader``) make
        the ``PrefetchLoader`` re-iterable too — one producer thread per
        epoch.
    prefetch:
        Maximum batches assembled ahead of the consumer (queue bound).

    Examples
    --------
    >>> loader = DataLoader(graphs, 128, shuffle=True, rng=rng)
    >>> for batch in PrefetchLoader(loader, prefetch=2):
    ...     step(batch)          # same batches, same order as `loader`
    """

    def __init__(self, loader, *, prefetch: int = 2):
        if prefetch < 1:
            raise ValueError("prefetch must be >= 1")
        self.loader = loader
        self.prefetch = prefetch

    def __len__(self) -> int:
        return len(self.loader)

    def __iter__(self) -> Iterator:
        obs = current()
        out: queue.Queue = queue.Queue(maxsize=self.prefetch)
        stop = threading.Event()

        def produce() -> None:
            try:
                for index, batch in enumerate(self.loader):
                    while not stop.is_set():
                        try:
                            out.put((index, batch), timeout=0.1)
                            break
                        except queue.Full:
                            continue
                    if stop.is_set():
                        return
                out.put(_STOP)
            except BaseException as error:  # noqa: BLE001 — re-raised below
                out.put(error)

        producer = threading.Thread(target=produce, name="repro-prefetch",
                                    daemon=True)
        with obs.span("runtime/prefetch"):
            producer.start()
        expected = 0
        try:
            while True:
                item = out.get()
                obs.set_gauge("runtime/prefetch_depth", out.qsize())
                if item is _STOP:
                    return
                if isinstance(item, BaseException):
                    raise item
                index, batch = item
                assert index == expected, "prefetch order violated"
                expected += 1
                yield batch
        finally:
            stop.set()
            while True:  # unblock a producer stuck on a full queue
                try:
                    out.get_nowait()
                except queue.Empty:
                    break
            producer.join(timeout=5.0)
