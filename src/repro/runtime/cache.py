"""Content-addressed on-disk cache for static per-graph quantities.

Quantities that depend only on a graph's content (and a computation
config) — topology distances, normalized adjacency, Lipschitz constants
under a *frozen* encoder — are recomputed constantly across CV folds,
seeds and benches. :class:`PrecomputeCache` stores them once, keyed by

    ``<graph fingerprint>-<config hash>``

where the fingerprint hashes the graph's feature matrix and edge index
(shape, dtype and bytes — :func:`repro.obs.dataset_fingerprint` applied
to one graph) and the config hash is a canonical-JSON SHA-256 of the
computation spec (:func:`config_hash`). Content addressing means there is
no invalidation problem: perturbing the graph or the config changes the
key, and stale entries are simply never read again.

Entries are ``.npz`` archives written through the atomic
temp-file-and-rename helper of :mod:`repro.data.io`, so concurrent
writers (parallel eval folds, two bench processes) can race on the same
key and the loser's write simply replaces the winner's identical bytes —
never a truncated file. Hits and misses are counted on the ambient
:func:`repro.obs.current` observer (``runtime/cache_hit`` /
``runtime/cache_miss``).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

from ..data.io import atomic_write
from ..graph import Graph
from ..obs import current, dataset_fingerprint

__all__ = ["PrecomputeCache", "config_hash", "graph_fingerprint"]


def graph_fingerprint(graph: Graph) -> str:
    """Content hash (hex, 16 chars) of one graph's features + edges."""
    return dataset_fingerprint([graph])


def _canonical(value):
    """Reduce a config value to something ``json.dumps`` renders stably."""
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, np.ndarray):
        return {"__ndarray__": hashlib.sha256(
            np.ascontiguousarray(value).tobytes()).hexdigest(),
            "shape": list(value.shape), "dtype": str(value.dtype)}
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value


def config_hash(spec: dict) -> str:
    """Canonical hash (hex, 16 chars) of a computation spec.

    Key order does not matter; numpy scalars and arrays are allowed
    (arrays contribute their content hash, so a spec can pin e.g. encoder
    parameters without embedding megabytes of JSON).
    """
    rendered = json.dumps(_canonical(spec), sort_keys=True,
                          separators=(",", ":"))
    return hashlib.sha256(rendered.encode()).hexdigest()[:16]


class PrecomputeCache:
    """Directory of content-addressed ``.npz`` entries.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first write). Entries are
        sharded into 256 sub-directories by fingerprint prefix so huge
        corpora do not produce one enormous flat directory.
    namespace:
        Optional logical partition mixed into every key's config-hash
        half — e.g. a dataset-version fingerprint, so a refreshed
        dataset version never reads the previous version's precomputes
        even for byte-identical graphs. ``None`` (the default) keeps
        keys identical to un-namespaced caches.

    Examples
    --------
    >>> cache = PrecomputeCache(tmp_path / "precompute")
    >>> spec = {"kind": "topology", "version": 1}
    >>> arrays = cache.get_or_compute(graph, spec,
    ...     lambda: {"topo": topology_distance(graph.degrees())})
    """

    def __init__(self, root: str | Path, *, namespace: str | None = None):
        self.root = Path(root)
        self.namespace = namespace
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key(self, graph: Graph, spec: dict) -> str:
        if self.namespace is not None:
            spec = {"namespace": self.namespace, "spec": spec}
        return f"{graph_fingerprint(graph)}-{config_hash(spec)}"

    def path(self, graph: Graph, spec: dict) -> Path:
        key = self.key(graph, spec)
        return self.root / key[:2] / f"{key}.npz"

    # ------------------------------------------------------------------
    def get(self, graph: Graph, spec: dict) -> dict[str, np.ndarray] | None:
        """Cached arrays for ``(graph, spec)``, or ``None`` on a miss.

        A corrupt entry (interrupted filesystem, foreign file) counts as a
        miss and will be overwritten by the next :meth:`put`.
        """
        path = self.path(graph, spec)
        try:
            with np.load(path, allow_pickle=False) as archive:
                arrays = {name: archive[name] for name in archive.files
                          if name != "__spec__"}
        except (OSError, ValueError, KeyError):
            self.misses += 1
            current().increment("runtime/cache_miss")
            return None
        self.hits += 1
        current().increment("runtime/cache_hit")
        return arrays

    def put(self, graph: Graph, spec: dict,
            arrays: dict[str, np.ndarray]) -> Path:
        """Atomically store ``arrays`` under the ``(graph, spec)`` key.

        The spec itself is embedded (JSON, under ``__spec__``) so cache
        directories stay auditable with plain ``np.load``.
        """
        if "__spec__" in arrays:
            raise ValueError("'__spec__' is a reserved entry name")
        path = self.path(graph, spec)
        payload = {name: np.asarray(value) for name, value in arrays.items()}
        payload["__spec__"] = np.frombuffer(
            json.dumps(_canonical(spec), sort_keys=True).encode(),
            dtype=np.uint8)
        with atomic_write(path, suffix=".npz") as tmp:
            np.savez_compressed(tmp, **payload)
        return path

    def get_or_compute(self, graph: Graph, spec: dict,
                       compute) -> dict[str, np.ndarray]:
        """Return cached arrays, or run ``compute()`` and store its result."""
        cached = self.get(graph, spec)
        if cached is not None:
            return cached
        arrays = compute()
        self.put(graph, spec, arrays)
        return arrays

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Hit/miss counts of this handle plus on-disk entry count."""
        entries = sum(1 for _ in self.root.glob("*/*.npz")) \
            if self.root.exists() else 0
        return {"hits": self.hits, "misses": self.misses, "entries": entries}

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if self.root.exists():
            for entry in self.root.glob("*/*.npz"):
                entry.unlink()
                removed += 1
        return removed
