"""Parallel runtime: worker pools, prefetching loaders, precompute cache.

The execution substrate behind every ``--workers`` flag:

* :class:`ParallelExecutor` — deterministic process-pool map (contiguous
  chunking, per-task seeds derived from the run seed, bounded retries,
  serial fallback when ``workers <= 1`` or the platform lacks ``fork``).
* :class:`PrefetchLoader` — background batch assembly over a bounded
  queue, preserving exact batch order and shuffle determinism.
* :class:`PrecomputeCache` — content-addressed on-disk store for static
  per-graph quantities (keys: graph fingerprint + config hash; atomic
  writes).
* :mod:`~repro.runtime.precompute` — fan-out helpers for topology
  statics and frozen-generator Lipschitz constants.

The determinism contract across the subsystem: with a fixed seed, any
worker count (including serial) produces bit-identical results — workers
change wall-time, never numbers. See docs/RUNTIME.md.
"""

from .cache import PrecomputeCache, config_hash, graph_fingerprint
from .executor import (
    ParallelExecutionError,
    ParallelExecutor,
    fork_available,
    resolve_workers,
    task_seeds,
)
from .prefetch import PrefetchLoader
from .precompute import (
    generator_spec,
    graph_statics,
    precompute_node_constants,
    precompute_statics,
)

__all__ = [
    "ParallelExecutor",
    "ParallelExecutionError",
    "fork_available",
    "resolve_workers",
    "task_seeds",
    "PrefetchLoader",
    "PrecomputeCache",
    "config_hash",
    "graph_fingerprint",
    "generator_spec",
    "graph_statics",
    "precompute_node_constants",
    "precompute_statics",
]
