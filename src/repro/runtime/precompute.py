"""Fan-out precompute of static per-graph quantities.

Two families of quantities are static enough to precompute and cache:

* **Topology statics** — the topology distance vector ``D_T`` (Eq. 5,
  one entry per single-node drop) and the symmetrically normalized
  adjacency ``D^{-1/2}(A+I)D^{-1/2}``; they depend only on the graph.
* **Lipschitz constants** ``K_V`` under a *frozen* generator — used by the
  Fig. 7 visualisation, ``repro inspect`` and the semantic-identification
  diagnostics, all of which walk a corpus with fixed parameters. The cache
  spec pins the generator's mode and a content hash of its parameters, so
  a fine-tuned generator can never serve stale constants.

Both precompute paths run per graph — never batching several graphs into
one encoder pass — so the results are bit-identical to the serial
one-graph-at-a-time code they replace, with any worker count.
"""

from __future__ import annotations

import numpy as np

from ..graph import Batch, Graph
from ..tensor import no_grad
from .cache import PrecomputeCache, config_hash
from .executor import ParallelExecutor

__all__ = ["graph_statics", "precompute_statics",
           "precompute_node_constants", "generator_spec"]

_STATICS_SPEC = {"kind": "graph_statics", "version": 1}


def graph_statics(graph: Graph) -> dict[str, np.ndarray]:
    """Topology distance vector and normalized adjacency of one graph."""
    from ..core.lipschitz import topology_distance

    adjacency = graph.adjacency() + np.eye(graph.num_nodes)
    inv_sqrt_deg = 1.0 / np.sqrt(adjacency.sum(axis=1))
    return {
        "topology_distance": topology_distance(graph.degrees()),
        "normalized_adjacency":
            adjacency * inv_sqrt_deg[:, None] * inv_sqrt_deg[None, :],
    }


def _statics_job(graph: Graph) -> dict[str, np.ndarray]:
    return graph_statics(graph)


def precompute_statics(graphs, *, workers: int | None = None,
                       cache: PrecomputeCache | None = None
                       ) -> list[dict[str, np.ndarray]]:
    """``graph_statics`` for every graph, parallel and optionally cached.

    Returns one dict per input graph, in input order. Cache lookups happen
    in the parent (they are cheap I/O); only the misses fan out.
    """
    return _cached_fan_out(graphs, _STATICS_SPEC, _statics_job,
                           workers=workers, cache=cache)


# ----------------------------------------------------------------------
# Frozen-generator Lipschitz constants
# ----------------------------------------------------------------------
def generator_spec(generator) -> dict:
    """Cache spec pinning a generator's mode + parameter content."""
    return {
        "kind": "lipschitz_kv",
        "version": 1,
        "mode": generator.mode,
        "params": config_hash(generator.state_dict()),
    }


class _ConstantsJob:
    """Picklable per-graph K_V computation under a frozen generator."""

    def __init__(self, generator):
        self.generator = generator

    def __call__(self, graph: Graph) -> dict[str, np.ndarray]:
        with no_grad():
            constants = self.generator.node_constants(Batch([graph])).data
        return {"k_v": np.asarray(constants, dtype=np.float64)}


def precompute_node_constants(generator, graphs, *,
                              workers: int | None = None,
                              cache: PrecomputeCache | None = None
                              ) -> list[np.ndarray]:
    """Per-node ``K_V`` of every graph under the generator's current
    parameters; one 1-D array per graph, in input order.

    The generator is shipped to workers by pickle (a few KB of numpy
    parameters), each worker computes its graphs' constants independently,
    and results are reassembled in order — bit-identical to calling
    ``generator.node_constants(Batch([g]))`` in a loop.
    """
    results = _cached_fan_out(graphs, generator_spec(generator),
                              _ConstantsJob(generator),
                              workers=workers, cache=cache)
    return [entry["k_v"] for entry in results]


# ----------------------------------------------------------------------
def _cached_fan_out(graphs, spec: dict, job, *, workers: int | None,
                    cache: PrecomputeCache | None) -> list[dict]:
    graphs = list(graphs)
    results: list[dict | None] = [None] * len(graphs)
    missing: list[int] = []
    if cache is not None:
        for index, graph in enumerate(graphs):
            cached = cache.get(graph, spec)
            if cached is not None:
                results[index] = cached
            else:
                missing.append(index)
    else:
        missing = list(range(len(graphs)))
    if missing:
        executor = ParallelExecutor(workers)
        computed = executor.map(job, [graphs[i] for i in missing])
        for index, arrays in zip(missing, computed):
            results[index] = arrays
            if cache is not None:
                cache.put(graphs[index], spec, arrays)
    return results
