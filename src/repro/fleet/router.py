"""The fleet front door: consistent-hash routing with replica failover.

:class:`FleetRouter` puts N replicas (:class:`~repro.fleet.FleetWorker`
or :class:`~repro.fleet.ProcessReplica`) behind one ``embed(graphs)``
call:

* **sharding** — each request graph is digested
  (:func:`~repro.serve.graph_digest`) and routed to its home shard on a
  :class:`~repro.fleet.HashRing`, so every digest is cached on exactly
  one replica and the fleet-wide hit rate approaches that of one cache
  with N× the capacity (``policy="random"`` exists purely as the
  baseline the bench compares against — N independent LRUs that each
  re-embed whatever lands on them).
* **failover** — a replica that is dead, breaker-open, or raises is
  skipped and its items are retried on the digest's next-preferred
  shard (``HashRing.preference`` order; a seeded per-request permutation
  under the random policy), counted under ``fleet/failover``. Only when
  every replica has refused an item does the request fail, with
  :class:`FleetExhaustedError`.
* **version integrity** — replicas stamp every row with the model
  version that produced it; :meth:`embed_detailed` returns the tags so
  callers (and the chaos tests) can verify a request never mixes
  versions for one digest, even across failover and hot swap.
* **hot swap** — :meth:`deploy_canary` installs a canary model on every
  replica for a deterministic slice of the digest space;
  :meth:`promote` / :meth:`rollback` finish the swap (see
  :class:`~repro.fleet.CanaryController` for the telemetry-driven
  decision).

All routing is traced (``fleet/route`` spans) and counted through the
router's :class:`~repro.obs.MetricsRegistry` plus the ambient observer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import Graph
from ..obs import current
from ..obs.metrics import MetricsRegistry
from ..resilience import Deadline, ResilienceError
from ..serve.checkpoint import load_checkpoint
from ..serve.service import EmbeddingService, graph_digest
from .hashing import HashRing
from .worker import FleetWorker

__all__ = ["FleetRouter", "FleetResult", "FleetExhaustedError", "build_fleet"]


class FleetExhaustedError(ResilienceError):
    """Every replica refused (or failed) an item; the fleet cannot serve it."""


@dataclass
class FleetResult:
    """One fleet response: rows plus per-row provenance.

    ``versions[i]`` is the model version that produced ``embeddings[i]``
    and ``workers[i]`` the replica that served it — the audit trail the
    zero-version-mixing guarantee is asserted against.
    """

    embeddings: np.ndarray
    versions: list[str]
    workers: list[str]

    def served_versions(self) -> set[str]:
        return set(self.versions)


class FleetRouter:
    """Route ``embed`` traffic across replicas with failover.

    Parameters
    ----------
    workers:
        Replica objects (any mix of in-process workers and process
        replicas); their ``worker_id``s must be unique.
    vnodes:
        Virtual nodes per worker on the hash ring.
    policy:
        ``"hash"`` (consistent-hash sharding, the default) or
        ``"random"`` (seeded uniform routing; the bench's baseline).
    seed:
        Seed of the random-policy routing stream (unused under "hash").
    deadline_seconds:
        Optional per-request budget checked between shard dispatches.
    telemetry:
        Injectable :class:`MetricsRegistry` (e.g. an observer's) —
        a private one is created if omitted.
    """

    def __init__(self, workers, *, vnodes: int = 64, policy: str = "hash",
                 seed: int = 0, deadline_seconds: float | None = None,
                 telemetry: MetricsRegistry | None = None):
        workers = list(workers)
        if not workers:
            raise ValueError("a fleet needs at least one worker")
        if policy not in ("hash", "random"):
            raise ValueError(f"unknown routing policy {policy!r}; "
                             "use 'hash' or 'random'")
        ids = [w.worker_id for w in workers]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate worker ids: {sorted(ids)}")
        self._workers = {w.worker_id: w for w in workers}
        self.ring = HashRing(ids, vnodes=vnodes)
        self.policy = policy
        self.deadline_seconds = deadline_seconds
        self.telemetry = telemetry if telemetry is not None \
            else MetricsRegistry()
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    @property
    def workers(self) -> list:
        """Replicas, ordered by worker id."""
        return [self._workers[wid] for wid in sorted(self._workers)]

    def worker(self, worker_id: str):
        return self._workers[worker_id]

    @property
    def num_alive(self) -> int:
        return sum(1 for w in self._workers.values() if w.alive)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _candidates(self, digest: str) -> list[str]:
        if self.policy == "hash":
            return self.ring.preference(digest)
        order = list(self.ring.workers)
        self._rng.shuffle(order)
        return order

    def home(self, graph_or_digest) -> str:
        """Home shard id of a graph (or a precomputed digest)."""
        digest = graph_or_digest if isinstance(graph_or_digest, str) \
            else graph_digest(graph_or_digest)
        return self.ring.assign(digest)

    def embed(self, graphs) -> np.ndarray:
        """Embeddings for ``graphs`` (one row per graph, request order)."""
        return self.embed_detailed(graphs).embeddings

    def embed_detailed(self, graphs) -> FleetResult:
        """Embed with per-row provenance (serving version + worker id).

        Items are grouped by their current candidate shard and dispatched
        group-wise; a group whose replica is down, breaker-open or
        raising moves to each item's next-preferred shard
        (``fleet/failover`` per rerouted dispatch). Raises
        :class:`FleetExhaustedError` once an item has been refused by
        every replica and :class:`~repro.resilience.DeadlineExceeded`
        when a configured request deadline expires between dispatches.
        """
        if isinstance(graphs, Graph):
            graphs = [graphs]
        graphs = list(graphs)
        if not graphs:
            raise ValueError("embed() requires at least one graph")
        obs = current()
        deadline = Deadline(self.deadline_seconds) \
            if self.deadline_seconds is not None else None
        with obs.span("fleet/route"), self.telemetry.timer("route_seconds"):
            self.telemetry.increment("requests")
            self.telemetry.increment("graphs", len(graphs))
            digests = [graph_digest(graph) for graph in graphs]
            candidates = {i: self._candidates(digest)
                          for i, digest in enumerate(digests)}
            rows: list[np.ndarray | None] = [None] * len(graphs)
            versions: list[str | None] = [None] * len(graphs)
            served_by: list[str | None] = [None] * len(graphs)
            pending = list(range(len(graphs)))
            while pending:
                # Group the still-unserved items by their next candidate.
                groups: dict[str, list[int]] = {}
                exhausted = [i for i in pending if not candidates[i]]
                if exhausted:
                    self.telemetry.increment("exhausted", len(exhausted))
                    obs.increment("fleet/exhausted", len(exhausted))
                    raise FleetExhaustedError(
                        f"{len(exhausted)} graph(s) refused by every "
                        f"replica ({len(self._workers)} worker(s), "
                        f"{self.num_alive} alive)")
                for i in pending:
                    groups.setdefault(candidates[i].pop(0), []).append(i)
                pending = []
                for worker_id, indices in groups.items():
                    if deadline is not None:
                        deadline.check("fleet request")
                    worker = self._workers[worker_id]
                    if not worker.alive or not worker.breaker.allow():
                        self._count_reroute(worker_id, indices)
                        pending.extend(indices)
                        continue
                    items = [(digests[i], graphs[i]) for i in indices]
                    try:
                        with obs.span(f"fleet/shard/{worker_id}"):
                            got_rows, got_versions = worker.embed_items(items)
                    except Exception:
                        worker.breaker.record_failure()
                        self.telemetry.increment("worker_errors")
                        obs.increment("fleet/worker_errors")
                        self._count_reroute(worker_id, indices)
                        pending.extend(indices)
                        continue
                    worker.breaker.record_success()
                    self.telemetry.increment(f"routed/{worker_id}",
                                             len(indices))
                    for i, row, version in zip(indices, got_rows,
                                               got_versions):
                        rows[i] = row
                        versions[i] = version
                        served_by[i] = worker_id
            return FleetResult(np.stack(rows), versions, served_by)

    def _count_reroute(self, worker_id: str, indices: list[int]) -> None:
        """Count items leaving a refused shard for their next candidate."""
        self.telemetry.increment("failover", len(indices))
        self.telemetry.increment(f"failover/{worker_id}", len(indices))
        current().increment("fleet/failover", len(indices))

    # ------------------------------------------------------------------
    # Hot swap / canary
    # ------------------------------------------------------------------
    def deploy_canary(self, make_service, version: str,
                      slice_fraction: float) -> None:
        """Install a canary on every replica for a slice of the key space.

        ``make_service()`` is called once per replica so each shard keeps
        its own canary cache (mirroring the stable slots). The slice is
        digest-deterministic — the same graphs ride the canary fleet-wide.
        """
        for worker in self.workers:
            worker.deploy_canary(make_service(), version, slice_fraction)
        self.telemetry.increment("canary_deploys")
        current().event("fleet_canary", action="deploy", version=version,
                        slice=slice_fraction)

    def promote(self) -> str:
        """Make the canary the stable model on every replica."""
        version = ""
        for worker in self.workers:
            version = worker.promote_canary()
        self.telemetry.increment("promotions")
        current().increment("fleet/promotions")
        current().event("fleet_canary", action="promote", version=version)
        return version

    def rollback(self) -> str:
        """Drop the canary on every replica; stable keeps serving."""
        version = ""
        for worker in self.workers:
            version = worker.rollback_canary()
        self.telemetry.increment("rollbacks")
        current().increment("fleet/rollbacks")
        current().event("fleet_canary", action="rollback", version=version)
        return version

    def invalidate(self, digests) -> int:
        """Evict ``digests`` from every replica's caches; returns rows dropped.

        The fleet half of an incremental refresh: after a model swap,
        only the digests whose source graphs changed are dropped
        (``fleet/invalidated``), so unchanged graphs keep serving warm.
        Replicas without an ``invalidate`` surface (process replicas from
        older deployments) are skipped.
        """
        digests = list(digests)
        removed = 0
        for worker in self.workers:
            invalidate = getattr(worker, "invalidate", None)
            if invalidate is not None:
                removed += invalidate(digests)
        self.telemetry.increment("invalidated", removed)
        current().increment("fleet/invalidated", removed)
        return removed

    @property
    def canary_version(self) -> str | None:
        slots = {w.canary.version for w in self.workers
                 if w.canary is not None}
        return slots.pop() if len(slots) == 1 else None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut every replica down (kills process replicas)."""
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "FleetRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Fleet-wide aggregates plus per-replica detail.

        The ``cache`` block sums every replica's stable-service cache:
        under hash routing ``size`` counts *distinct* digests fleet-wide
        (each digest lives on one shard), which is exactly why the
        fleet-wide ``hit_rate`` beats N independent caches.

        ``latency`` is the router's own ``route_seconds`` view;
        ``service_latency`` merges every replica's raw ``embed_seconds``
        samples (:meth:`MetricsRegistry.merge`) into genuine fleet-wide
        percentiles, including p99.
        """
        per_worker = [w.stats() for w in self.workers]
        hits = sum(w["service"]["cache"]["hits"] for w in per_worker)
        misses = sum(w["service"]["cache"]["misses"] for w in per_worker)
        lookups = hits + misses
        size = sum(w["service"]["cache"]["size"] for w in per_worker)
        capacity = sum(w["service"]["cache"]["capacity"] for w in per_worker)
        latency = self.telemetry.summary("route_seconds")
        # True fleet-wide service latency: merge every replica's raw
        # telemetry samples into one registry, so p50/p99 are percentiles
        # over the union of observations — percentiles of per-worker
        # summaries would be wrong whenever load (or speed) is skewed.
        merged = MetricsRegistry()
        for w in per_worker:
            merged.merge(w.get("service_telemetry", {}))
        service = merged.summary("embed_seconds")
        return {
            "policy": self.policy,
            "workers": len(self._workers),
            "alive": self.num_alive,
            "requests": int(self.telemetry.count("requests")),
            "graphs": int(self.telemetry.count("graphs")),
            "failover": int(self.telemetry.count("failover")),
            "worker_errors": int(self.telemetry.count("worker_errors")),
            "exhausted": int(self.telemetry.count("exhausted")),
            "promotions": int(self.telemetry.count("promotions")),
            "rollbacks": int(self.telemetry.count("rollbacks")),
            "cache": {
                "hits": int(hits),
                "misses": int(misses),
                "hit_rate": hits / lookups if lookups else float("nan"),
                "size": int(size),
                "capacity": int(capacity),
                "occupancy": size / capacity if capacity else float("nan"),
            },
            "latency": {
                "requests": latency["count"],
                "mean_ms": latency["mean"] * 1e3,
                "p50_ms": latency["p50"] * 1e3,
                "p95_ms": latency["p95"] * 1e3,
            },
            "service_latency": {
                "requests": service["count"],
                "mean_ms": service["mean"] * 1e3,
                "p50_ms": service["p50"] * 1e3,
                "p95_ms": service["p95"] * 1e3,
                "p99_ms": merged.percentile("embed_seconds", 99) * 1e3,
            },
            "per_worker": per_worker,
        }


# ----------------------------------------------------------------------
def build_fleet(checkpoint: str, num_workers: int, *,
                version: str | None = None,
                cache_size: int = 1024, max_batch_size: int = 64,
                policy: str = "hash", vnodes: int = 64, seed: int = 0,
                deadline_seconds: float | None = None,
                service_kwargs: dict | None = None) -> FleetRouter:
    """Checkpoint → N-shard in-process fleet in one call.

    The bundle is read from disk **once**; each replica gets its own
    encoder instance rebuilt from the stored spec (bit-identical weights,
    independent service caches). ``version`` defaults to the checkpoint's
    registered name (``metadata["name"]``) or the file stem.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    bundle = load_checkpoint(checkpoint)
    if version is None:
        from pathlib import Path

        version = bundle.metadata.get("name") or Path(checkpoint).stem
    workers = []
    for i in range(num_workers):
        service = EmbeddingService(
            bundle.build_encoder(), cache_size=cache_size,
            max_batch_size=max_batch_size, **(service_kwargs or {}))
        workers.append(FleetWorker(f"w{i}", service, version=version))
    return FleetRouter(workers, vnodes=vnodes, policy=policy, seed=seed,
                       deadline_seconds=deadline_seconds)
