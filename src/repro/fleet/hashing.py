"""Consistent-hash ring over the ``graph_digest`` key space.

The fleet shards its content-addressed embedding cache by graph digest:
every digest has exactly one **home shard**, so a graph is cached on one
worker fleet-wide instead of once per worker that happens to see it.
:class:`HashRing` provides the assignment with the two properties the
fleet needs:

* **process-independent determinism** — ring points are derived from
  sha256 of the worker id (and of the digest on lookup), never from
  Python's seeded ``hash()``; the same digest maps to the same worker in
  every process, under every ``PYTHONHASHSEED``, forever.
* **minimal remapping** — each worker owns ``vnodes`` points on the ring,
  so removing one worker of N remaps only the ~1/N of keys it owned (each
  to the next worker clockwise) and adding a worker steals ~1/(N+1) of
  keys, all of them to the new worker. Every other key keeps its home
  shard and therefore its warm cache.

:meth:`preference` extends :meth:`assign` to an ordered failover
sequence: the home shard first, then the distinct workers encountered
walking the ring clockwise — the order :class:`~repro.fleet.FleetRouter`
tries replicas in when a shard is down.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right

__all__ = ["HashRing"]


def _point(key: str) -> int:
    """Position of ``key`` on the ring: the first 8 bytes of its sha256."""
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")


class HashRing:
    """Consistent hashing of digest strings onto named workers.

    Parameters
    ----------
    workers:
        Worker ids (strings); order does not matter.
    vnodes:
        Virtual nodes per worker. More vnodes smooth the load split at
        the cost of a larger (still tiny) sorted ring; 64 keeps the
        imbalance across a handful of workers within a few percent.
    """

    def __init__(self, workers=(), *, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._workers: set[str] = set()
        self._ring: list[tuple[int, str]] = []  # sorted (point, worker_id)
        for worker_id in workers:
            self.add(worker_id)

    # ------------------------------------------------------------------
    @property
    def workers(self) -> list[str]:
        """Current worker ids, sorted."""
        return sorted(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    # ------------------------------------------------------------------
    def add(self, worker_id: str) -> None:
        """Add a worker's vnodes to the ring (idempotent-hostile: raises)."""
        if not worker_id:
            raise ValueError("worker_id must be a non-empty string")
        if worker_id in self._workers:
            raise ValueError(f"worker {worker_id!r} is already on the ring")
        self._workers.add(worker_id)
        for i in range(self.vnodes):
            self._ring.append((_point(f"{worker_id}#{i}"), worker_id))
        self._ring.sort()

    def remove(self, worker_id: str) -> None:
        """Drop a worker; only the keys it owned are remapped."""
        if worker_id not in self._workers:
            raise KeyError(f"worker {worker_id!r} is not on the ring")
        self._workers.discard(worker_id)
        self._ring = [(p, w) for p, w in self._ring if w != worker_id]

    # ------------------------------------------------------------------
    def assign(self, digest: str) -> str:
        """Home shard for ``digest``: the first vnode clockwise of its point."""
        if not self._ring:
            raise LookupError("hash ring has no workers")
        index = bisect_right(self._ring, (_point(digest), "￿"))
        if index == len(self._ring):
            index = 0
        return self._ring[index][1]

    def preference(self, digest: str, n: int | None = None) -> list[str]:
        """Failover order for ``digest``: home shard, then ring successors.

        Returns up to ``n`` (default: all) **distinct** worker ids in the
        order they appear walking clockwise from the digest's point —
        a deterministic per-digest permutation whose first entry is
        :meth:`assign`'s answer.
        """
        if not self._ring:
            raise LookupError("hash ring has no workers")
        limit = len(self._workers) if n is None else min(n, len(self._workers))
        start = bisect_right(self._ring, (_point(digest), "￿"))
        order: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._ring)):
            worker_id = self._ring[(start + offset) % len(self._ring)][1]
            if worker_id not in seen:
                seen.add(worker_id)
                order.append(worker_id)
                if len(order) == limit:
                    break
        return order

    # ------------------------------------------------------------------
    def table(self, digests) -> dict[str, str]:
        """Assignment of every digest in ``digests`` (stability testing)."""
        return {digest: self.assign(digest) for digest in digests}

    def __repr__(self) -> str:
        return (f"HashRing(workers={len(self._workers)}, "
                f"vnodes={self.vnodes})")
