"""Fleet replicas: an :class:`EmbeddingService` behind a shard identity.

A :class:`FleetWorker` is one shard of the fleet — an in-process
:class:`~repro.serve.EmbeddingService` (its own LRU cache, its own
encoder breaker) plus everything the router needs around it:

* a **worker id** (its name on the consistent-hash ring) and a
  **per-replica** :class:`~repro.resilience.CircuitBreaker` fed by the
  router — repeated failures open it and traffic fails over to the
  digest's next-preferred shard until the recovery probe passes;
* a **liveness flag** — :meth:`kill` models a crashed replica (chaos
  tests flip it mid-load; the process backend's equivalent is a real
  ``SIGKILL``), :meth:`revive` brings it back with its cache intact;
* two **model slots** — ``stable`` and an optional ``canary``. Each
  request digest is served by exactly one slot, decided by the
  deterministic slice coordinate :func:`canary_fraction`, so a given
  graph always maps to one model version no matter which replica ends
  up serving it. :meth:`promote_canary` / :meth:`rollback_canary` are
  the two ends of a hot swap; both are atomic between requests.

A canary that fails is *contained*: its items fall back to the stable
slot for that request (counted under ``canary_fallbacks`` and in the
canary service's own failure telemetry), so a broken canary shows up in
the metrics the :class:`~repro.fleet.CanaryController` watches instead
of taking the shard down.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from ..graph import Graph
from ..obs.metrics import MetricsRegistry
from ..resilience import CircuitBreaker, ResilienceError
from ..serve.service import EmbeddingService

__all__ = ["FleetWorker", "ModelSlot", "WorkerDownError", "canary_fraction"]

_SLICE_DIGITS = 12  # leading hex digits of the digest used as the slice axis


class WorkerDownError(ResilienceError):
    """The targeted replica is not alive (crashed, killed, or closed)."""


def canary_fraction(digest: str) -> float:
    """Deterministic slice coordinate of a digest in ``[0, 1)``.

    Derived from the digest's leading hex digits, so the canary slice is
    a fixed subset of the key space: the same graphs ride the canary on
    every request, on every replica, in every process — a digest is never
    served by two model versions within one deployment.
    """
    return int(digest[:_SLICE_DIGITS], 16) / float(16 ** _SLICE_DIGITS)


class ModelSlot(NamedTuple):
    """One servable model: an embedding service tagged with its version."""

    service: EmbeddingService
    version: str


class FleetWorker:
    """One in-process shard: embedding service + breaker + model slots.

    Parameters
    ----------
    worker_id:
        Name on the consistent-hash ring (``"w0"``, ``"w1"``, …).
    service:
        The stable :class:`EmbeddingService` this replica serves from.
    version:
        Version tag of the stable model (a registry name, checkpoint
        stem, or free-form string); stamped onto every embedding served
        from the stable slot.
    breaker:
        Per-replica :class:`CircuitBreaker` consulted by the router
        before dispatch; a default (3 failures, 5 s recovery) is created
        if omitted.
    """

    backend = "inprocess"

    def __init__(self, worker_id: str, service: EmbeddingService, *,
                 version: str = "v1",
                 breaker: CircuitBreaker | None = None):
        self.worker_id = worker_id
        self.stable = ModelSlot(service, version)
        self.canary: ModelSlot | None = None
        self.canary_slice = 0.0
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=3, recovery_timeout=5.0,
            name=f"fleet-{worker_id}")
        self.telemetry = MetricsRegistry()
        self._alive = True

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self._alive

    @property
    def version(self) -> str:
        """Version tag of the stable slot."""
        return self.stable.version

    def kill(self) -> None:
        """Model a replica crash: every request raises until revived."""
        self._alive = False

    def revive(self) -> None:
        """Bring a killed replica back, warm cache and all."""
        self._alive = True

    def close(self) -> None:
        """Release the replica (in-process: same as :meth:`kill`)."""
        self._alive = False

    # ------------------------------------------------------------------
    # Hot swap / canary
    # ------------------------------------------------------------------
    def swap_model(self, service: EmbeddingService, version: str) -> None:
        """Replace the stable slot outright (no canary phase)."""
        self.stable = ModelSlot(service, version)

    def deploy_canary(self, service: EmbeddingService, version: str,
                      slice_fraction: float) -> None:
        """Install ``service`` as the canary for a slice of the key space."""
        if not 0.0 < slice_fraction <= 1.0:
            raise ValueError(
                f"slice_fraction must be in (0, 1], got {slice_fraction}")
        self.canary = ModelSlot(service, version)
        self.canary_slice = slice_fraction

    def promote_canary(self) -> str:
        """Canary becomes stable; returns the newly stable version."""
        if self.canary is None:
            raise ValueError(f"worker {self.worker_id!r} has no canary")
        self.stable = self.canary
        self.canary = None
        self.canary_slice = 0.0
        return self.stable.version

    def rollback_canary(self) -> str:
        """Drop the canary; returns the (unchanged) stable version."""
        if self.canary is None:
            raise ValueError(f"worker {self.worker_id!r} has no canary")
        dropped = self.canary.version
        self.canary = None
        self.canary_slice = 0.0
        return dropped

    def invalidate(self, digests) -> int:
        """Evict ``digests`` from both slots' caches; returns rows dropped.

        Selective refresh hook: after an incremental model refresh, only
        the digests whose source graphs changed are invalidated — every
        other entry keeps serving warm from cache.
        """
        digests = list(digests)
        removed = 0
        for slot in (self.stable, self.canary):
            if slot is None:
                continue
            invalidate = getattr(slot.service, "invalidate", None)
            if invalidate is not None:
                removed += invalidate(digests)
        if removed:
            self.telemetry.increment("invalidated", removed)
        return removed

    def slot_for(self, digest: str) -> ModelSlot:
        """The model slot a digest is assigned to under the current deploy."""
        if self.canary is not None \
                and canary_fraction(digest) < self.canary_slice:
            return self.canary
        return self.stable

    def version_for(self, digest: str) -> str:
        return self.slot_for(digest).version

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def embed_items(self, items: list[tuple[str, Graph]]
                    ) -> tuple[list[np.ndarray], list[str]]:
        """Embed ``(digest, graph)`` pairs; returns aligned rows + versions.

        Digests in the canary slice go to the canary slot; a canary
        failure falls back to the stable slot for those items (the
        failure stays visible in the canary service's telemetry and this
        worker's ``canary_fallbacks`` counter). Stable-slot failures
        propagate — the router records them against this replica's
        breaker and fails the items over to the next shard.
        """
        if not self._alive:
            raise WorkerDownError(f"worker {self.worker_id!r} is down")
        rows: list[np.ndarray | None] = [None] * len(items)
        versions: list[str | None] = [None] * len(items)
        stable_idx, canary_idx = [], []
        for i, (digest, _) in enumerate(items):
            if self.slot_for(digest) is self.stable:
                stable_idx.append(i)
            else:
                canary_idx.append(i)
        if canary_idx:
            graphs = [items[i][1] for i in canary_idx]
            try:
                canary_rows = self.canary.service.embed(graphs)
            except Exception:
                # Contain the canary: serve these items from stable and
                # let the telemetry (not the caller) carry the bad news.
                self.telemetry.increment("canary_fallbacks", len(canary_idx))
                stable_idx = sorted(stable_idx + canary_idx)
            else:
                for i, row in zip(canary_idx, canary_rows):
                    rows[i] = row
                    versions[i] = self.canary.version
        if stable_idx:
            stable_rows = self.stable.service.embed(
                [items[i][1] for i in stable_idx])
            for i, row in zip(stable_idx, stable_rows):
                rows[i] = row
                versions[i] = self.stable.version
        self.telemetry.increment("served", len(items))
        return rows, versions  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Replica health + the underlying service's cache/latency stats."""
        # Raw-sample snapshot of the stable service's telemetry — a plain
        # dict, so it survives the process-replica pipe and the router can
        # merge true fleet-wide latency percentiles instead of averaging
        # per-worker summaries. Stub services without telemetry report an
        # empty snapshot.
        telemetry = getattr(self.stable.service, "telemetry", None)
        service_telemetry = (telemetry.snapshot(samples=True)
                             if telemetry is not None
                             else {"counters": {}, "gauges": {},
                                   "series": {}, "samples": {}})
        payload = {
            "worker_id": self.worker_id,
            "backend": self.backend,
            "alive": self._alive,
            "version": self.stable.version,
            "canary_version": None if self.canary is None
            else self.canary.version,
            "canary_slice": self.canary_slice,
            "served": int(self.telemetry.count("served")),
            "canary_fallbacks": int(self.telemetry.count("canary_fallbacks")),
            "breaker": self.breaker.stats(),
            "service": self.stable.service.stats(),
            "service_telemetry": service_telemetry,
        }
        if self.canary is not None:
            payload["canary_service"] = self.canary.service.stats()
        return payload
