"""Sharded embedding fleet: routing, failover, hot model swap.

The serving tier's scale-out layer, built on four existing subsystems
(`serve`, `resilience`, `obs`, `runtime`):

* :class:`HashRing` — consistent hashing of ``graph_digest`` space;
  process- and hash-seed-independent, ~1/N remap per membership change.
* :class:`FleetWorker` — one shard: an :class:`~repro.serve.EmbeddingService`
  plus liveness, a per-replica :class:`~repro.resilience.CircuitBreaker`
  and stable/canary model slots.
* :class:`ProcessReplica` — the same shard surface served from a forked
  child over a private pipe (real kill/hang detection; requires fork).
* :class:`FleetRouter` — ``embed(graphs)`` across N shards: each digest
  has one home shard (fleet-wide cache hit rate beats N independent
  LRUs), dead/breaker-open/raising shards fail over along the ring
  (``fleet/failover``), every row is stamped with the model version and
  worker that produced it.
* :class:`CanaryController` — telemetry-thresholded promote/rollback of
  a hot-swapped model version, with
  :func:`fleet_from_registry` / :func:`deploy_canary_from_registry`
  tying the flow to :class:`~repro.serve.ModelRegistry`.

`benchmarks/bench_serving_load.py` drives all of it with a synthetic
open/closed-loop zipfian load and writes ``BENCH_serving.json``; the
``repro serve`` CLI is the command-line entry point. See docs/SERVING.md.
"""

from .canary import (
    CanaryController,
    deploy_canary_from_registry,
    fleet_from_registry,
)
from .hashing import HashRing
from .process import ProcessReplica
from .router import FleetExhaustedError, FleetResult, FleetRouter, build_fleet
from .worker import FleetWorker, ModelSlot, WorkerDownError, canary_fraction

__all__ = [
    "HashRing",
    "FleetWorker",
    "ModelSlot",
    "WorkerDownError",
    "canary_fraction",
    "ProcessReplica",
    "FleetRouter",
    "FleetResult",
    "FleetExhaustedError",
    "build_fleet",
    "CanaryController",
    "fleet_from_registry",
    "deploy_canary_from_registry",
]
