"""Multiprocess fleet backend: one embedding service per forked child.

:class:`ProcessReplica` is the process-isolated twin of
:class:`~repro.fleet.FleetWorker`: same duck-typed surface the
:class:`~repro.fleet.FleetRouter` dispatches to (``worker_id`` /
``alive`` / ``breaker`` / ``embed_items`` / ``stats`` / the hot-swap
verbs), but the service lives in a forked child that rebuilds its
encoder from a checkpoint path. A replica OOM-killed or ``SIGKILL``-ed
mid-request is detected by the parent's liveness poll and surfaces as
:class:`~repro.fleet.WorkerDownError` — exactly the signal the router's
failover path consumes, so a real process death drains onto the
surviving shards the same way an in-process ``kill()`` does.

The fault-containment lessons from :class:`repro.runtime.ParallelExecutor`
carry over:

* each replica talks over its **own private duplex pipe** — a single
  writer per direction, no shared queue lock a dying child could strand;
* the child runs under the **null observer** (a forked child inherits
  the parent's activation stack, and letting every replica append to
  one JSONL log would interleave writes);
* requests are bounded by ``response_timeout`` — a hung child reads as
  down rather than blocking the fleet.

Chaos hook: ``fault`` is a picklable callable invoked in the child with
the running request ordinal before each embed —
:class:`repro.validate.faults.KillWorkerOnce` drops straight in to kill
the replica on request *k* exactly once per marker file.

Requires ``fork`` (see :func:`repro.runtime.fork_available`); construct
in-process :class:`FleetWorker`\\ s on platforms without it.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback

from ..resilience import CircuitBreaker, Deadline, DeadlineExceeded
from ..runtime import fork_available
from ..serve.service import EmbeddingService
from .worker import FleetWorker, WorkerDownError

__all__ = ["ProcessReplica"]


def _child_main(conn, worker_id: str, checkpoint: str, version: str,
                cache_size: int, max_batch_size: int, fault) -> None:
    """Child loop: serve embed/stats/hot-swap requests until ``stop``.

    Wraps a regular :class:`FleetWorker` around a service rebuilt from
    the checkpoint, so slot selection, canary fallback and telemetry
    behave identically to the in-process backend.
    """
    from ..obs.observer import _ACTIVE, NULL_OBSERVER

    _ACTIVE[:] = [NULL_OBSERVER]
    worker = FleetWorker(
        worker_id,
        EmbeddingService.from_checkpoint(checkpoint, cache_size=cache_size,
                                         max_batch_size=max_batch_size),
        version=version)
    requests = 0
    while True:
        try:
            message = conn.recv()
        except EOFError:
            return
        kind, *payload = message
        try:
            if kind == "stop":
                conn.send(("ok", None))
                return
            if kind == "embed":
                requests += 1
                if fault is not None:
                    fault(requests - 1)
                result = worker.embed_items(payload[0])
            elif kind == "stats":
                result = worker.stats()
            elif kind == "canary":
                service, slot_version, slice_fraction = payload
                worker.deploy_canary(service, slot_version, slice_fraction)
                result = None
            elif kind == "promote":
                result = worker.promote_canary()
            elif kind == "rollback":
                result = worker.rollback_canary()
            elif kind == "swap":
                worker.swap_model(*payload)
                result = payload[1]
            else:
                raise ValueError(f"unknown fleet message {kind!r}")
        except Exception:  # noqa: BLE001 — serialised back to the parent
            conn.send(("err", traceback.format_exc()))
        else:
            conn.send(("ok", result))


class ProcessReplica:
    """A fleet shard served from a forked child process.

    Parameters
    ----------
    worker_id:
        Name on the hash ring.
    checkpoint:
        Bundle the child rebuilds its encoder from (read in the child —
        N replicas do N reads, but no encoder ever crosses the pipe at
        startup).
    version:
        Stable model version tag (defaults to the checkpoint stem).
    cache_size / max_batch_size:
        Forwarded to the child's :class:`EmbeddingService`.
    response_timeout:
        Seconds the parent waits on any single reply before declaring
        the replica down (hung-child detection).
    fault:
        Picklable chaos hook called with the request ordinal in the
        child before each embed (e.g. ``KillWorkerOnce``).
    breaker:
        Parent-side per-replica breaker (router-fed); defaults match
        :class:`FleetWorker`.
    """

    backend = "process"

    def __init__(self, worker_id: str, checkpoint, *,
                 version: str | None = None, cache_size: int = 1024,
                 max_batch_size: int = 64, response_timeout: float = 60.0,
                 fault=None, breaker: CircuitBreaker | None = None):
        if not fork_available():
            raise RuntimeError(
                "ProcessReplica requires the fork start method; use "
                "in-process FleetWorker objects on this platform")
        if response_timeout <= 0:
            raise ValueError(
                f"response_timeout must be positive, got {response_timeout}")
        if version is None:
            from pathlib import Path

            version = Path(str(checkpoint)).stem
        self.worker_id = worker_id
        self.version = version
        self.response_timeout = response_timeout
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=3, recovery_timeout=5.0,
            name=f"fleet-{worker_id}")
        self.canary_version: str | None = None
        self.canary_slice = 0.0
        ctx = mp.get_context("fork")
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_child_main,
            args=(child_conn, worker_id, str(checkpoint), version,
                  cache_size, max_batch_size, fault),
            daemon=True)
        self._proc.start()
        child_conn.close()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return not self._closed and self._proc.is_alive()

    @property
    def canary(self):
        """Canary slot mirror (version only; the service lives remotely)."""
        if self.canary_version is None:
            return None
        from .worker import ModelSlot

        return ModelSlot(None, self.canary_version)

    # ------------------------------------------------------------------
    def _request(self, *message):
        """One round trip; any process-level failure is WorkerDownError."""
        if not self.alive:
            raise WorkerDownError(f"replica {self.worker_id!r} is down")
        try:
            self._conn.send(message)
        except (BrokenPipeError, OSError) as error:
            raise WorkerDownError(
                f"replica {self.worker_id!r} pipe is broken: {error}"
            ) from error
        deadline = Deadline(self.response_timeout)
        while not self._conn.poll(0.05):
            if not self._proc.is_alive():
                raise WorkerDownError(
                    f"replica {self.worker_id!r} died mid-request "
                    f"(exit code {self._proc.exitcode})")
            try:
                deadline.check(f"replica {self.worker_id!r} reply")
            except DeadlineExceeded as error:
                raise WorkerDownError(str(error)) from error
        try:
            kind, payload = self._conn.recv()
        except (EOFError, OSError) as error:
            raise WorkerDownError(
                f"replica {self.worker_id!r} hung up mid-reply: {error}"
            ) from error
        if kind == "err":
            raise RuntimeError(
                f"replica {self.worker_id!r} request failed; child "
                f"traceback:\n{payload}")
        return payload

    # ------------------------------------------------------------------
    def embed_items(self, items):
        return self._request("embed", items)

    def stats(self) -> dict:
        """Child-side worker stats; a down replica reports a dead stub."""
        if not self.alive:
            return {
                "worker_id": self.worker_id, "backend": self.backend,
                "alive": False, "version": self.version,
                "canary_version": self.canary_version,
                "canary_slice": self.canary_slice, "served": 0,
                "canary_fallbacks": 0, "breaker": self.breaker.stats(),
                "service": {
                    "cache": {"size": 0, "capacity": 0, "hits": 0,
                              "misses": 0, "hit_rate": float("nan"),
                              "evictions": 0, "lookups": 0,
                              "occupancy": float("nan")},
                    "encoder": {"batches": 0, "graphs": 0,
                                "mean_batch_size": float("nan")},
                    "latency": {"requests": 0, "mean_ms": float("nan"),
                                "p50_ms": float("nan"),
                                "p95_ms": float("nan")},
                    "resilience": {"shed": 0, "timeouts": 0,
                                   "encoder_failures": 0},
                },
                "service_telemetry": {"counters": {}, "gauges": {},
                                      "series": {}, "samples": {}},
            }
        stats = self._request("stats")
        stats["backend"] = self.backend
        stats["breaker"] = self.breaker.stats()
        return stats

    # ------------------------------------------------------------------
    # Hot swap — the service object crosses the pipe (numpy state only)
    # ------------------------------------------------------------------
    def deploy_canary(self, service: EmbeddingService, version: str,
                      slice_fraction: float) -> None:
        self._request("canary", service, version, slice_fraction)
        self.canary_version = version
        self.canary_slice = slice_fraction

    def promote_canary(self) -> str:
        version = self._request("promote")
        self.version = version
        self.canary_version = None
        self.canary_slice = 0.0
        return version

    def rollback_canary(self) -> str:
        dropped = self._request("rollback")
        self.canary_version = None
        self.canary_slice = 0.0
        return dropped

    def swap_model(self, service: EmbeddingService, version: str) -> None:
        self._request("swap", service, version)
        self.version = version

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """SIGKILL the child — the real thing, not a flag."""
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout=5.0)

    def close(self) -> None:
        """Graceful stop (falls back to kill on a wedged child)."""
        if self._closed:
            return
        if self._proc.is_alive():
            try:
                self._conn.send(("stop",))
                self._proc.join(timeout=2.0)
            except (BrokenPipeError, OSError):
                pass
            if self._proc.is_alive():
                self.kill()
        self._conn.close()
        self._closed = True

    def __del__(self):  # pragma: no cover — best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
