"""Telemetry-driven canary promotion / rollback for hot model swaps.

The fleet's hot-swap flow is two mechanical operations
(:meth:`FleetRouter.deploy_canary`, then :meth:`promote` or
:meth:`rollback`) separated by a judgement call: *is the canary healthy
enough to take all traffic?* :class:`CanaryController` makes that call
from the same ``obs/`` telemetry everything else in the system records —
no side channel, no bespoke health protocol:

* **failure rate** — encoder failures + sheds + timeouts across every
  replica's canary service, per graph served;
* **canary fallbacks** — requests the workers had to bounce back to the
  stable slot because the canary raised;
* **latency** — canary p95 request latency relative to the stable
  slots' p95 (a canary that is *correct but slow* is still a bad swap).

:meth:`evaluate` is pure (returns ``"warmup" | "healthy" | "unhealthy"``
plus the evidence); :meth:`step` acts on it — promoting, rolling back,
or waiting for more traffic — and emits a ``fleet_canary`` decision
event through the ambient observer.

Pair with :class:`~repro.serve.ModelRegistry` for the full flow::

    router = fleet_from_registry(registry, "sgcl-v1", num_workers=4)
    deploy_canary_from_registry(router, registry, "sgcl-v2", slice_fraction=0.2)
    controller = CanaryController(router)
    for batch in traffic:
        router.embed(batch)
        if controller.step() != "continue":
            break   # promoted or rolled back
"""

from __future__ import annotations

from ..obs import current
from ..serve.registry import ModelRegistry
from ..serve.service import EmbeddingService
from .router import FleetRouter

__all__ = ["CanaryController", "deploy_canary_from_registry",
           "fleet_from_registry"]


class CanaryController:
    """Promote-or-rollback policy over a deployed canary's telemetry.

    Parameters
    ----------
    router:
        The fleet with a canary deployed (deploying after construction
        is fine too; :meth:`step` is a no-op without one).
    min_graphs:
        Canary traffic (graphs served by the canary slots, fallbacks
        included) required before any verdict — protects a healthy
        canary from being judged on two requests.
    max_failure_rate:
        Ceiling on (encoder failures + sheds + timeouts + fallbacks) per
        canary graph; above it the canary is unhealthy.
    max_latency_ratio:
        Ceiling on canary p95 request latency as a multiple of the
        stable p95 (ignored while either side lacks latency samples).
    """

    def __init__(self, router: FleetRouter, *, min_graphs: int = 32,
                 max_failure_rate: float = 0.02,
                 max_latency_ratio: float = 3.0):
        if min_graphs < 1:
            raise ValueError(f"min_graphs must be >= 1, got {min_graphs}")
        if max_failure_rate < 0:
            raise ValueError("max_failure_rate must be >= 0")
        if max_latency_ratio <= 0:
            raise ValueError("max_latency_ratio must be positive")
        self.router = router
        self.min_graphs = min_graphs
        self.max_failure_rate = max_failure_rate
        self.max_latency_ratio = max_latency_ratio

    # ------------------------------------------------------------------
    def observations(self) -> dict:
        """Aggregate canary vs stable telemetry across every replica."""
        graphs = failures = fallbacks = 0
        canary_p95 = stable_p95 = 0.0
        canary_samples = stable_samples = 0
        for worker in self.router.workers:
            stats = worker.stats()
            fallbacks += stats["canary_fallbacks"]
            stable_latency = stats["service"]["latency"]
            if stable_latency["requests"]:
                stable_p95 = max(stable_p95, stable_latency["p95_ms"])
                stable_samples += stable_latency["requests"]
            canary_stats = stats.get("canary_service")
            if canary_stats is None:
                continue
            graphs += canary_stats["encoder"]["graphs"] \
                + canary_stats["cache"]["hits"]
            failures += canary_stats["resilience"]["encoder_failures"] \
                + canary_stats["resilience"]["shed"] \
                + canary_stats["resilience"]["timeouts"]
            if canary_stats["latency"]["requests"]:
                canary_p95 = max(canary_p95,
                                 canary_stats["latency"]["p95_ms"])
                canary_samples += canary_stats["latency"]["requests"]
        graphs += fallbacks  # traffic the canary *should* have served
        bad = failures + fallbacks
        return {
            "canary_graphs": graphs,
            "failures": failures,
            "fallbacks": fallbacks,
            "failure_rate": bad / graphs if graphs else 0.0,
            "canary_p95_ms": canary_p95 if canary_samples else None,
            "stable_p95_ms": stable_p95 if stable_samples else None,
            "latency_ratio": (canary_p95 / stable_p95
                              if canary_samples and stable_samples
                              and stable_p95 > 0 else None),
        }

    def evaluate(self) -> tuple[str, dict]:
        """``(verdict, evidence)`` without acting on it.

        Verdicts: ``"warmup"`` (not enough canary traffic yet),
        ``"unhealthy"`` (a threshold is breached), ``"healthy"``.
        """
        evidence = self.observations()
        if evidence["failure_rate"] > self.max_failure_rate:
            return "unhealthy", evidence
        if evidence["latency_ratio"] is not None \
                and evidence["latency_ratio"] > self.max_latency_ratio:
            return "unhealthy", evidence
        if evidence["canary_graphs"] < self.min_graphs:
            return "warmup", evidence
        return "healthy", evidence

    def step(self) -> str:
        """Evaluate and act: ``"promote"``, ``"rollback"`` or ``"continue"``.

        An unhealthy canary is rolled back even during warmup — waiting
        for more traffic through a failing model helps nobody.
        """
        if self.router.canary_version is None:
            return "continue"
        verdict, evidence = self.evaluate()
        if verdict == "unhealthy":
            version = self.router.rollback()
            decision = "rollback"
        elif verdict == "healthy":
            version = self.router.promote()
            decision = "promote"
        else:
            return "continue"
        current().event("fleet_canary", action="decision", decision=decision,
                        version=version, **{k: v for k, v in evidence.items()
                                            if v is not None})
        return decision


# ----------------------------------------------------------------------
# ModelRegistry glue
# ----------------------------------------------------------------------
def fleet_from_registry(registry: ModelRegistry, name: str,
                        num_workers: int, **fleet_kwargs) -> FleetRouter:
    """Serve a registered model as an N-shard fleet (version = its name)."""
    from .router import build_fleet

    return build_fleet(registry.path(name), num_workers, version=name,
                       **fleet_kwargs)


def deploy_canary_from_registry(router: FleetRouter, registry: ModelRegistry,
                                name: str, slice_fraction: float, *,
                                cache_size: int = 1024,
                                max_batch_size: int = 64) -> None:
    """Canary a registered model version onto an existing fleet.

    The checkpoint is read once; each replica's canary slot gets its own
    service over a freshly rebuilt encoder, mirroring how
    :func:`~repro.fleet.build_fleet` provisions stable slots.
    """
    from ..serve.checkpoint import load_checkpoint

    bundle = load_checkpoint(registry.path(name))
    router.deploy_canary(
        lambda: EmbeddingService(bundle.build_encoder(),
                                 cache_size=cache_size,
                                 max_batch_size=max_batch_size),
        name, slice_fraction)
