"""Numerical guard rails for the training hot path.

A single NaN loss or an overflowing gradient silently poisons every
parameter it touches — and contrastive pre-training keeps running,
producing an encoder that embeds everything to garbage. The
:class:`NumericsGuard` sits between ``model.loss`` and
``optimizer.step`` in :meth:`repro.core.SGCLTrainer.pretrain` and
:meth:`repro.baselines.BasePretrainer.pretrain` and checks every batch:

* the loss components reported by the model (``loss``, ``loss_s``, …)
  must all be finite;
* the global gradient norm must be finite after ``backward()``;
* optionally, gradients are rescaled so their global L2 norm never
  exceeds ``grad_clip``.

What happens on a non-finite value is the guard's *policy*:

``"raise"``
    Abort with :class:`NumericsError` — strict mode for CI and debugging.
``"skip"``
    Drop the batch (no optimizer step), count it under
    ``numerics/skipped_batches``, and keep training. The default: one bad
    batch costs one batch, not the run.
``"warn"``
    Emit a :class:`RuntimeWarning` and proceed anyway (the pre-guard
    behaviour, but visible).

The guard never draws random numbers and never touches model state
unless a check fires (or ``grad_clip`` is set), so seeded runs are
bit-identical with and without it as long as no guard triggers.
"""

from __future__ import annotations

import math
import warnings

import numpy as np

from ..obs import current

__all__ = ["NumericsError", "NumericsGuard", "global_grad_norm"]

#: valid guard policies, in strictness order
POLICIES = ("raise", "skip", "warn")


class NumericsError(FloatingPointError):
    """A non-finite loss or gradient was detected under policy ``raise``."""


def global_grad_norm(parameters) -> float:
    """L2 norm over every parameter gradient (0.0 if none are set)."""
    total = 0.0
    for param in parameters:
        grad = param.grad
        if grad is not None:
            total += float((grad * grad).sum())
    return math.sqrt(total)


class NumericsGuard:
    """Per-batch NaN/Inf detection and optional gradient clipping.

    Parameters
    ----------
    policy:
        ``"raise"`` / ``"skip"`` / ``"warn"`` — see the module docstring.
    grad_clip:
        Maximum global gradient L2 norm; gradients are rescaled in place
        when the norm exceeds it. ``None`` (default) disables clipping.
    observer:
        Observer receiving the ``numerics/*`` counters; defaults to the
        ambient :func:`repro.obs.current` at check time.

    Attributes
    ----------
    flagged_batches:
        Batches in which any check found a non-finite value.
    skipped_batches:
        Batches dropped under policy ``"skip"``.
    clipped_batches:
        Batches whose gradients were rescaled by ``grad_clip``.
    """

    def __init__(self, policy: str = "skip", grad_clip: float | None = None,
                 observer=None):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown numerics policy {policy!r}; choose from {POLICIES}")
        if grad_clip is not None and not grad_clip > 0:
            raise ValueError(f"grad_clip must be positive, got {grad_clip}")
        self.policy = policy
        self.grad_clip = grad_clip
        self._observer = observer
        self.flagged_batches = 0
        self.skipped_batches = 0
        self.clipped_batches = 0

    # ------------------------------------------------------------------
    def _obs(self):
        return self._observer if self._observer is not None else current()

    def _flag(self, where: str, detail: str) -> bool:
        """Apply the policy to one finding; returns whether to proceed."""
        self.flagged_batches += 1
        obs = self._obs()
        obs.increment("numerics/nonfinite_batches")
        message = f"non-finite {where}: {detail}"
        if self.policy == "raise":
            raise NumericsError(message)
        if self.policy == "skip":
            self.skipped_batches += 1
            obs.increment("numerics/skipped_batches")
            return False
        warnings.warn(f"{message} (continuing under policy 'warn')",
                      RuntimeWarning, stacklevel=3)
        return True

    # ------------------------------------------------------------------
    def check_loss(self, stats: dict[str, float]) -> bool:
        """Check every reported loss component; True = safe to backward.

        ``stats`` is the per-batch dict the models already produce
        (``loss``, ``loss_s``, ``loss_g``, ``k_v_mean``, …); any NaN or
        ±Inf value triggers the policy.
        """
        bad = {key: value for key, value in stats.items()
               if not np.isfinite(value)}
        if not bad:
            return True
        detail = ", ".join(f"{key}={value}" for key, value
                           in sorted(bad.items()))
        return self._flag("loss", detail)

    def guard_gradients(self, parameters, grad_norm: float) -> bool:
        """Check (and optionally clip) gradients; True = safe to step.

        ``grad_norm`` is the already-computed global L2 norm (the trainer
        computes it once and reuses it for telemetry). Clipping rescales
        every ``param.grad`` in place so the global norm equals
        ``grad_clip``.
        """
        if not np.isfinite(grad_norm):
            return self._flag("gradient", f"global grad norm is {grad_norm}")
        if self.grad_clip is not None and grad_norm > self.grad_clip:
            scale = self.grad_clip / grad_norm
            for param in parameters:
                if param.grad is not None:
                    param.grad *= scale
            self.clipped_batches += 1
            self._obs().increment("numerics/clipped_batches")
        return True
