"""Deterministic fault injection for testing the guard rails.

The validators and the :class:`~repro.validate.NumericsGuard` exist to
catch corruption that should never happen — so tests (and ``repro
doctor`` development) need a way to *make* it happen, reproducibly.
Every helper here either returns a corrupted **copy** of a graph (the
original is never touched) or temporarily patches a model so a chosen
batch produces a NaN loss.

These are test utilities: nothing in the library imports them outside of
``tests/`` and the examples.
"""

from __future__ import annotations

from contextlib import contextmanager
from itertools import count

import numpy as np

from ..graph import Graph

__all__ = ["corrupt_features", "break_edge_symmetry", "point_edge_out_of_bounds",
           "corrupt_label", "inject_nan_loss"]


def corrupt_features(graph: Graph, node: int = 0, feature: int = 0,
                     value: float = float("nan")) -> Graph:
    """Copy of ``graph`` with one feature entry replaced (NaN by default)."""
    corrupted = graph.copy()
    corrupted.x[node, feature] = value
    return corrupted


def break_edge_symmetry(graph: Graph, edge: int = 0) -> Graph:
    """Copy of ``graph`` with one directed edge entry deleted.

    Undirected storage keeps both orientations; removing a single entry
    leaves its reverse orphaned, violating the ``edge_symmetry``
    invariant. ``edge`` indexes the directed entry to delete.
    """
    if graph.num_edges == 0:
        raise ValueError("graph has no edges to desymmetrise")
    keep = np.ones(graph.num_edges, dtype=bool)
    keep[edge] = False
    return Graph(graph.x.copy(), graph.edge_index[:, keep], graph.y,
                 dict(graph.meta))


def point_edge_out_of_bounds(graph: Graph, edge: int = 0) -> Graph:
    """Copy of ``graph`` with one edge endpoint pointing past the nodes.

    :class:`~repro.graph.Graph` rejects this at construction, so the copy
    is mutated after the fact — exactly the kind of post-construction
    corruption (buggy transform, bad deserialisation) the validator must
    catch.
    """
    if graph.num_edges == 0:
        raise ValueError("graph has no edges to corrupt")
    corrupted = graph.copy()
    edge_index = corrupted.edge_index.copy()
    edge_index[1, edge] = graph.num_nodes  # first invalid node id
    corrupted.edge_index = edge_index
    return corrupted


def corrupt_label(graph: Graph, value=-1) -> Graph:
    """Copy of ``graph`` with its label replaced (out-of-domain by default)."""
    corrupted = graph.copy()
    corrupted.y = value
    return corrupted


@contextmanager
def inject_nan_loss(model, batches=(0,), attr: str = "loss"):
    """Patch ``model.<attr>`` so the listed batch indices yield NaN losses.

    Works on both loss conventions in the library: a method returning
    ``(Tensor, stats_dict)`` (:meth:`SGCLModel.loss`) and one returning a
    bare ``Tensor`` (:meth:`BasePretrainer.step`). The wrapped call runs
    the *real* computation first — RNG consumption is identical to an
    uncorrupted run, so everything after the faulty batch stays on the
    seeded trajectory.

    Usage::

        with inject_nan_loss(trainer.model, batches={1}):
            trainer.pretrain(graphs, epochs=1)
    """
    batches = frozenset(batches)
    original = getattr(model, attr)
    calls = count()

    def wrapped(*args, **kwargs):
        result = original(*args, **kwargs)
        if next(calls) not in batches:
            return result
        if isinstance(result, tuple):
            loss, stats = result
            poisoned = {key: float("nan") for key in stats}
            return loss * float("nan"), poisoned
        return result * float("nan")

    setattr(model, attr, wrapped)
    try:
        yield
    finally:
        delattr(model, attr)  # uncover the original bound method
