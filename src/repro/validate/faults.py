"""Deterministic fault injection for testing the guard rails.

The validators and the :class:`~repro.validate.NumericsGuard` exist to
catch corruption that should never happen — so tests (and ``repro
doctor`` development) need a way to *make* it happen, reproducibly.
Every helper here either returns a corrupted **copy** of a graph (the
original is never touched) or temporarily patches a model so a chosen
batch produces a NaN loss.

The second half of the module is the **chaos harness** backing
``tests/resilience/``: process-level injectors that kill
(:class:`KillWorkerOnce`) or hang (:class:`HangWorkerOnce`) a pool
worker exactly once per marker file, on-disk checkpoint corruption
(:func:`corrupt_checkpoint`: truncation, bit garbage, emptying), and a
:class:`FlakyIO` wrapper that fails a callable's first N calls. All are
deterministic — kill/hang injectors coordinate through a marker file so
the *retry* of the same chunk succeeds, proving recovery rather than
luck. ``REPRO_CHAOS=1`` (see :func:`chaos_enabled`) gates the expensive
process-level legs in CI.

These are test utilities: nothing in the library imports them outside of
``tests/`` and the examples.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from itertools import count
from pathlib import Path

import numpy as np

from ..graph import Graph

__all__ = ["corrupt_features", "break_edge_symmetry", "point_edge_out_of_bounds",
           "corrupt_label", "inject_nan_loss",
           "chaos_enabled", "crash_point", "KillWorkerOnce", "HangWorkerOnce",
           "corrupt_checkpoint", "FlakyIO"]


def corrupt_features(graph: Graph, node: int = 0, feature: int = 0,
                     value: float = float("nan")) -> Graph:
    """Copy of ``graph`` with one feature entry replaced (NaN by default)."""
    corrupted = graph.copy()
    corrupted.x[node, feature] = value
    return corrupted


def break_edge_symmetry(graph: Graph, edge: int = 0) -> Graph:
    """Copy of ``graph`` with one directed edge entry deleted.

    Undirected storage keeps both orientations; removing a single entry
    leaves its reverse orphaned, violating the ``edge_symmetry``
    invariant. ``edge`` indexes the directed entry to delete.
    """
    if graph.num_edges == 0:
        raise ValueError("graph has no edges to desymmetrise")
    keep = np.ones(graph.num_edges, dtype=bool)
    keep[edge] = False
    return Graph(graph.x.copy(), graph.edge_index[:, keep], graph.y,
                 dict(graph.meta))


def point_edge_out_of_bounds(graph: Graph, edge: int = 0) -> Graph:
    """Copy of ``graph`` with one edge endpoint pointing past the nodes.

    :class:`~repro.graph.Graph` rejects this at construction, so the copy
    is mutated after the fact — exactly the kind of post-construction
    corruption (buggy transform, bad deserialisation) the validator must
    catch.
    """
    if graph.num_edges == 0:
        raise ValueError("graph has no edges to corrupt")
    corrupted = graph.copy()
    edge_index = corrupted.edge_index.copy()
    edge_index[1, edge] = graph.num_nodes  # first invalid node id
    corrupted.edge_index = edge_index
    return corrupted


def corrupt_label(graph: Graph, value=-1) -> Graph:
    """Copy of ``graph`` with its label replaced (out-of-domain by default)."""
    corrupted = graph.copy()
    corrupted.y = value
    return corrupted


@contextmanager
def inject_nan_loss(model, batches=(0,), attr: str = "loss"):
    """Patch ``model.<attr>`` so the listed batch indices yield NaN losses.

    Works on both loss conventions in the library: a method returning
    ``(Tensor, stats_dict)`` (:meth:`SGCLModel.loss`) and one returning a
    bare ``Tensor`` (:meth:`BasePretrainer.step`). The wrapped call runs
    the *real* computation first — RNG consumption is identical to an
    uncorrupted run, so everything after the faulty batch stays on the
    seeded trajectory.

    Usage::

        with inject_nan_loss(trainer.model, batches={1}):
            trainer.pretrain(graphs, epochs=1)
    """
    batches = frozenset(batches)
    original = getattr(model, attr)
    calls = count()

    def wrapped(*args, **kwargs):
        result = original(*args, **kwargs)
        if next(calls) not in batches:
            return result
        if isinstance(result, tuple):
            loss, stats = result
            poisoned = {key: float("nan") for key in stats}
            return loss * float("nan"), poisoned
        return result * float("nan")

    setattr(model, attr, wrapped)
    try:
        yield
    finally:
        delattr(model, attr)  # uncover the original bound method


# ----------------------------------------------------------------------
# Chaos harness: process, checkpoint and I/O fault injectors
# ----------------------------------------------------------------------
def chaos_enabled() -> bool:
    """Whether the expensive chaos legs are enabled (``REPRO_CHAOS=1``)."""
    return os.environ.get("REPRO_CHAOS") == "1"


def crash_point(name: str, *, exit_code: int = 9) -> None:
    """SIGKILL-equivalent crash injector for named points in a pipeline.

    Library code sprinkles ``crash_point("stage/step")`` calls at the
    interesting commit boundaries (the ingest/refresh loop does); each
    call is a no-op unless the ``REPRO_CRASH_AT`` environment variable
    names exactly that point, in which case the process dies via
    ``os._exit`` — no ``finally`` blocks, no atexit, exactly like a
    ``kill -9`` landing between two syscalls.

    When ``REPRO_CRASH_MARKER`` names a directory, the crash fires **once
    per marker**: the first hit writes ``<name>.crashed`` there and dies,
    the restarted process sails through — the marker-file protocol of
    :class:`KillWorkerOnce`, generalised to in-process pipelines so a
    chaos driver can re-run the same script and assert recovery.
    """
    if os.environ.get("REPRO_CRASH_AT") != name:
        return
    marker_dir = os.environ.get("REPRO_CRASH_MARKER")
    if marker_dir:
        marker = Path(marker_dir) / (name.replace("/", "__") + ".crashed")
        if marker.exists():
            return
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.write_text(name)
    os._exit(exit_code)


class KillWorkerOnce:
    """Picklable task fn that hard-kills the worker process once.

    The first call with ``item`` (before the marker file exists) writes
    the marker and calls ``os._exit`` — the worker dies without returning
    a result or running ``finally`` blocks, exactly like an OOM kill.
    Every other call (including the retry of the same item) computes
    ``fn``-less identity ``item``, so a recovered map returns the full
    deterministic result.
    """

    def __init__(self, marker: str | Path, item=0, exit_code: int = 9):
        self.marker = str(marker)
        self.item = item
        self.exit_code = exit_code

    def __call__(self, x):
        marker = Path(self.marker)
        if x == self.item and not marker.exists():
            marker.write_text("killed")
            os._exit(self.exit_code)
        return x

    def fired(self) -> bool:
        """Whether the kill already happened (marker exists)."""
        return Path(self.marker).exists()


class HangWorkerOnce:
    """Picklable task fn that hangs the worker process once.

    The first call with ``item`` writes the marker and sleeps for
    ``seconds`` (default: effectively forever relative to any test
    timeout) — simulating a deadlocked or livelocked worker. Retries of
    the same item return immediately.
    """

    def __init__(self, marker: str | Path, item=0, seconds: float = 300.0):
        self.marker = str(marker)
        self.item = item
        self.seconds = seconds

    def __call__(self, x):
        marker = Path(self.marker)
        if x == self.item and not marker.exists():
            marker.write_text("hung")
            time.sleep(self.seconds)
        return x

    def fired(self) -> bool:
        return Path(self.marker).exists()


def corrupt_checkpoint(path: str | Path, mode: str = "truncate") -> Path:
    """Damage a checkpoint file on disk, deterministically.

    Modes
    -----
    ``"truncate"``
        Cut the file to half its length — a crash mid-write (the exact
        failure :func:`repro.data.io.atomic_write` prevents for *our*
        writers, but external copies/transfers can still produce).
    ``"garbage"``
        Overwrite 64 bytes in the middle with a fixed pattern — bit rot
        or a bad block. The zip container often still opens; the sha256
        checksum is what catches this one.
    ``"empty"``
        Truncate to zero bytes.
    """
    path = Path(path)
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[:len(data) // 2])
    elif mode == "garbage":
        if len(data) < 128:
            raise ValueError(f"{path} too small to garble ({len(data)} B)")
        middle = len(data) // 2
        corrupted = bytearray(data)
        corrupted[middle:middle + 64] = b"\xde\xad\xbe\xef" * 16
        path.write_bytes(bytes(corrupted))
    elif mode == "empty":
        path.write_bytes(b"")
    else:
        raise ValueError(
            f"unknown corruption mode {mode!r}; "
            "use 'truncate', 'garbage' or 'empty'")
    return path


class FlakyIO:
    """Wrap a callable so its first ``failures`` calls raise ``OSError``.

    Deterministic flaky-I/O injector for exercising
    :class:`repro.resilience.RetryPolicy` and executor retries: the
    failure count is per-instance state, so a policy with
    ``max_attempts > failures`` always recovers and one with fewer never
    does.
    """

    def __init__(self, fn, failures: int = 2):
        self.fn = fn
        self.failures = failures
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        if self.calls <= self.failures:
            raise OSError(
                f"injected flaky I/O failure {self.calls}/{self.failures}")
        return self.fn(*args, **kwargs)
