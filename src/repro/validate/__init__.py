"""Validation and numerical-robustness subsystem.

Guard rails between the data and the training hot path:

* :class:`GraphValidator` / :class:`DatasetValidator` — structural
  invariants (edge bounds, undirected symmetry, finite features,
  non-empty graphs, label domain) with ``raise`` / ``drop`` / ``warn``
  policies, counted under ``validate/*`` in the ambient
  :class:`~repro.obs.MetricsRegistry`.
* :class:`NumericsGuard` — per-batch NaN/Inf detection for losses and
  gradients (``raise`` / ``skip`` / ``warn``) plus optional global
  gradient clipping; wired into :meth:`repro.core.SGCLTrainer.pretrain`
  and :meth:`repro.baselines.BasePretrainer.pretrain` via
  ``SGCLConfig.numerics_policy`` / ``SGCLConfig.grad_clip``.
* :func:`run_doctor` — the ``repro doctor`` CLI: full invariant suite
  over a dataset plus a guarded smoke pre-train.
* :mod:`repro.validate.faults` — deterministic corruption helpers that
  prove the guards fire (test/CI use only).

See the "Validation" section of docs/API.md.
"""

from .doctor import render_doctor_report, run_doctor
from .numerics import NumericsError, NumericsGuard, global_grad_norm
from .validators import (
    DatasetValidator,
    GraphValidator,
    ValidationError,
    ValidationIssue,
    ValidationReport,
)

__all__ = [
    "GraphValidator",
    "DatasetValidator",
    "ValidationIssue",
    "ValidationReport",
    "ValidationError",
    "NumericsGuard",
    "NumericsError",
    "global_grad_norm",
    "run_doctor",
    "render_doctor_report",
]
