"""Structural invariant checks for graphs and datasets.

Every synthetic generator, ``.npz`` loader and user-supplied corpus feeds
the same training stack, and a single malformed graph — an edge pointing
past the node count, a NaN feature row, a label outside the class domain —
either crashes mid-epoch or, worse, trains through silently. The
validators here check the invariants the rest of the library assumes:

* ``edge_bounds`` — ``edge_index`` is ``(2, E)`` integer, entries in
  ``[0, num_nodes)``;
* ``edge_symmetry`` — undirected storage carries both orientations of
  every edge (PyG-style), with matching multiplicities;
* ``finite_features`` — no NaN/Inf in ``x``;
* ``non_empty`` — at least one node;
* ``label_domain`` — classification labels are integers in
  ``[0, num_classes)``; multitask label vectors have one entry per task,
  each 0/1 or NaN (missing).

:class:`DatasetValidator` applies a policy to the findings: ``raise``
(abort on the first invalid corpus), ``drop`` (filter invalid graphs out,
counted), or ``warn`` (report and keep). All outcomes are counted through
the ambient :class:`~repro.obs.MetricsRegistry` under ``validate/*``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..graph import Graph
from ..obs import current

__all__ = ["ValidationIssue", "ValidationReport", "ValidationError",
           "GraphValidator", "DatasetValidator"]

#: valid dataset policies
POLICIES = ("raise", "drop", "warn")


@dataclass(frozen=True)
class ValidationIssue:
    """One failed invariant on one graph."""

    check: str                 #: invariant name (``edge_bounds``, …)
    message: str               #: human-readable detail
    graph_index: int | None = None  #: position in the validated sequence

    def __str__(self) -> str:
        where = "" if self.graph_index is None else f"graph {self.graph_index}: "
        return f"{where}{self.check}: {self.message}"


@dataclass
class ValidationReport:
    """Findings of one :meth:`DatasetValidator.validate` pass."""

    num_graphs: int = 0
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def invalid_indices(self) -> list[int]:
        """Sorted indices of graphs with at least one issue."""
        return sorted({issue.graph_index for issue in self.issues
                       if issue.graph_index is not None})

    @property
    def num_invalid(self) -> int:
        return len(self.invalid_indices)

    @property
    def ok(self) -> bool:
        return not self.issues

    def counts_by_check(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for issue in self.issues:
            counts[issue.check] = counts.get(issue.check, 0) + 1
        return counts

    def summary(self) -> str:
        if self.ok:
            return f"{self.num_graphs} graph(s) checked, all invariants hold"
        per_check = ", ".join(f"{check}×{count}" for check, count
                              in sorted(self.counts_by_check().items()))
        return (f"{self.num_graphs} graph(s) checked, "
                f"{self.num_invalid} invalid ({per_check})")


class ValidationError(ValueError):
    """Raised under policy ``raise`` (or when ``drop`` leaves no graphs)."""

    def __init__(self, report: ValidationReport, *, limit: int = 8):
        self.report = report
        shown = "\n".join(f"  - {issue}" for issue in report.issues[:limit])
        more = len(report.issues) - limit
        if more > 0:
            shown += f"\n  … and {more} more issue(s)"
        super().__init__(f"dataset validation failed: {report.summary()}\n{shown}")


class GraphValidator:
    """Checks one graph against the library's structural invariants.

    Parameters
    ----------
    undirected:
        Require symmetric edge storage (both orientations present). All
        bundled datasets store undirected graphs PyG-style; set False for
        genuinely directed corpora.
    num_classes:
        Label domain size; ``None`` skips the label check.
    task:
        ``"classification"`` (integer labels) or ``"multitask"`` (float
        vectors with NaN = missing) — fixes how ``num_classes`` is read.
    """

    def __init__(self, *, undirected: bool = True,
                 num_classes: int | None = None,
                 task: str = "classification"):
        if task not in ("classification", "multitask"):
            raise ValueError(f"unknown task type {task!r}")
        self.undirected = undirected
        self.num_classes = num_classes
        self.task = task

    # ------------------------------------------------------------------
    def issues(self, graph: Graph, index: int | None = None
               ) -> list[ValidationIssue]:
        """Every violated invariant of one graph (empty list = valid)."""
        found: list[ValidationIssue] = []

        def issue(check: str, message: str) -> None:
            found.append(ValidationIssue(check, message, index))

        if graph.num_nodes == 0:
            issue("non_empty", "graph has no nodes")
            return found  # every other invariant is vacuous or misleading

        edge_index = np.asarray(graph.edge_index)
        if edge_index.ndim != 2 or edge_index.shape[0] != 2:
            issue("edge_bounds",
                  f"edge_index must have shape (2, E), got {edge_index.shape}")
        elif not np.issubdtype(edge_index.dtype, np.integer):
            issue("edge_bounds",
                  f"edge_index must be integer, got {edge_index.dtype}")
        elif edge_index.size and (edge_index.min() < 0
                                  or edge_index.max() >= graph.num_nodes):
            issue("edge_bounds",
                  f"edge references nodes outside [0, {graph.num_nodes})")
        elif self.undirected and edge_index.size:
            src, dst = edge_index.astype(np.int64)
            codes = src * graph.num_nodes + dst
            reverse = dst * graph.num_nodes + src
            if not np.array_equal(np.sort(codes), np.sort(reverse)):
                missing = int(len(np.setdiff1d(reverse, codes)))
                issue("edge_symmetry",
                      f"{missing} edge(s) lack their reverse orientation")

        if not np.isfinite(graph.x).all():
            bad = int((~np.isfinite(graph.x)).sum())
            issue("finite_features", f"{bad} non-finite feature value(s)")

        if self.num_classes is not None:
            found.extend(self._label_issues(graph, index))
        return found

    def _label_issues(self, graph: Graph, index: int | None
                      ) -> list[ValidationIssue]:
        y = graph.y
        if self.task == "classification":
            if y is None:
                return [ValidationIssue("label_domain", "label is missing",
                                        index)]
            value = float(np.asarray(y).reshape(()))
            if not value.is_integer() or not 0 <= value < self.num_classes:
                return [ValidationIssue(
                    "label_domain",
                    f"label {y!r} outside [0, {self.num_classes})", index)]
            return []
        # multitask: one {0, 1, NaN} entry per task
        labels = np.asarray(y, dtype=np.float64).reshape(-1)
        if labels.shape != (self.num_classes,):
            return [ValidationIssue(
                "label_domain",
                f"expected {self.num_classes} task labels, got shape "
                f"{labels.shape}", index)]
        present = labels[~np.isnan(labels)]
        if not np.isin(present, (0.0, 1.0)).all():
            return [ValidationIssue(
                "label_domain", "multitask labels must be 0, 1 or NaN",
                index)]
        return []

    def validate(self, graph: Graph) -> None:
        """Raise :class:`ValidationError` if the graph is invalid."""
        found = self.issues(graph)
        if found:
            raise ValidationError(ValidationReport(1, found))


class DatasetValidator:
    """Applies a :class:`GraphValidator` over a corpus under a policy.

    Parameters
    ----------
    policy:
        ``"raise"`` — abort with :class:`ValidationError` on any issue;
        ``"drop"`` — filter invalid graphs out of the returned dataset;
        ``"warn"`` — emit one :class:`RuntimeWarning` and keep everything.
    validator:
        The per-graph validator; by default one is built from the
        dataset's ``num_classes``/``task`` at :meth:`apply` time (label
        checks are skipped for bare graph sequences).
    observer:
        Receives the ``validate/*`` counters; defaults to the ambient
        :func:`repro.obs.current`.
    """

    def __init__(self, policy: str = "raise",
                 validator: GraphValidator | None = None, observer=None):
        if policy not in POLICIES:
            raise ValueError(
                f"unknown validation policy {policy!r}; choose from {POLICIES}")
        self.policy = policy
        self.validator = validator
        self._observer = observer

    # ------------------------------------------------------------------
    def _obs(self):
        return self._observer if self._observer is not None else current()

    def _resolved(self, dataset=None) -> GraphValidator:
        if self.validator is not None:
            return self.validator
        if dataset is not None and hasattr(dataset, "num_classes"):
            return GraphValidator(num_classes=dataset.num_classes,
                                  task=dataset.task)
        return GraphValidator()

    def validate(self, graphs: Sequence[Graph]) -> ValidationReport:
        """Run every invariant over every graph; just report, no policy."""
        validator = self._resolved(graphs)
        graphs = list(graphs)
        report = ValidationReport(num_graphs=len(graphs))
        obs = self._obs()
        obs.increment("validate/graphs_checked", report.num_graphs)
        for index, graph in enumerate(graphs):
            found = validator.issues(graph, index)
            report.issues.extend(found)
            for issue in found:
                obs.increment(f"validate/{issue.check}")
        if report.num_invalid:
            obs.increment("validate/invalid_graphs", report.num_invalid)
        return report

    def apply(self, dataset):
        """Validate a :class:`~repro.data.GraphDataset` and apply the policy.

        Returns the dataset (filtered under ``drop``, unchanged otherwise).
        Call :meth:`validate` directly when the findings themselves are
        needed rather than the policy outcome.
        """
        from ..data import GraphDataset

        report = self.validate(dataset)
        if report.ok:
            return dataset
        if self.policy == "raise":
            raise ValidationError(report)
        if self.policy == "warn":
            warnings.warn(f"dataset {dataset.name!r}: {report.summary()}",
                          RuntimeWarning, stacklevel=2)
            return dataset
        # drop
        invalid = set(report.invalid_indices)
        kept = [graph for index, graph in enumerate(dataset.graphs)
                if index not in invalid]
        self._obs().increment("validate/dropped_graphs", len(invalid))
        if not kept:
            raise ValidationError(report)
        return GraphDataset(dataset.name, kept, dataset.num_classes,
                            dataset.task)
