"""``repro doctor`` — one command that answers "can I trust this setup?".

Runs the full structural-invariant suite over a dataset, then a short
smoke pre-train with the :class:`~repro.validate.NumericsGuard` armed, and
reports both: invalid graphs per check, plus whether the training hot
path produced only finite losses and gradients. CI runs it against a
bundled synthetic dataset so invariant drift fails the build instead of
poisoning the first real run.
"""

from __future__ import annotations

import numpy as np

from .validators import DatasetValidator

__all__ = ["run_doctor", "render_doctor_report"]


def run_doctor(dataset_name: str, *, seed: int = 0, scale: float = 0.1,
               epochs: int = 1, batch_size: int = 16, max_graphs: int = 32,
               drift_store: str | None = None,
               drift_warn: float = 0.5, drift_refresh: float = 2.0,
               observer=None) -> dict:
    """Diagnose one dataset + the training path; returns a report dict.

    The report has three sections — ``dataset`` (statistics), ``validation``
    (invariant findings) and ``smoke`` (guarded pre-train outcome) — plus a
    top-level ``ok`` verdict. The smoke run uses
    ``numerics_policy="skip"`` so a blow-up is *counted*, not fatal; any
    skipped batch, non-finite epoch loss, or hard failure in the hot path
    (recorded under ``smoke.error``) fails the verdict.

    With ``drift_store`` pointing at a :class:`~repro.ingest.DatasetStore`
    root that has gone live, a fourth ``drift`` section scores the
    dataset against the live model's training statistics
    (``validate/drift_*`` gauges); a score at or past ``drift_refresh``
    fails the verdict — the data has drifted far enough that the live
    model should not be trusted on it without a refresh.
    """
    from ..core import SGCLConfig, SGCLTrainer
    from ..data import load_dataset

    dataset = load_dataset(dataset_name, seed=seed, scale=scale)
    report = DatasetValidator(policy="warn", observer=observer) \
        .validate(dataset)

    graphs = dataset.graphs[:max_graphs]
    config = SGCLConfig(epochs=epochs, batch_size=min(batch_size, len(graphs)),
                        seed=seed, numerics_policy="skip")
    trainer = SGCLTrainer(dataset.num_features, config)
    error = None
    try:
        history = trainer.pretrain(graphs, observer=observer)
    except Exception as exc:  # corrupt data can blow up before the loss
        # guard sees it (e.g. NaN features reaching the sampler) — a hard
        # failure in the hot path is exactly what doctor must report.
        history = trainer.history
        error = f"{type(exc).__name__}: {exc}"
    losses = [row.get("loss", float("nan")) for row in history]
    skipped = int(sum(row.get("skipped_batches", 0) for row in history))
    batches = int(sum(row.get("num_batches", 0) for row in history))
    smoke_ok = (error is None and batches > 0 and skipped == 0
                and all(np.isfinite(loss) for loss in losses))

    result = {
        "dataset": {"name": dataset.name, "task": dataset.task,
                    **dataset.statistics()},
        "validation": {
            "ok": report.ok,
            "num_graphs": report.num_graphs,
            "num_invalid": report.num_invalid,
            "counts_by_check": report.counts_by_check(),
            "issues": [str(issue) for issue in report.issues[:20]],
        },
        "smoke": {
            "ok": smoke_ok,
            "epochs": len(history),
            "num_batches": batches,
            "skipped_batches": skipped,
            "final_loss": float(losses[-1]) if losses else float("nan"),
            "error": error,
        },
        "ok": report.ok and smoke_ok,
    }
    if drift_store is not None:
        result["drift"] = _drift_section(
            dataset, drift_store, warn_threshold=drift_warn,
            refresh_threshold=drift_refresh, observer=observer)
        result["ok"] = result["ok"] and result["drift"]["ok"]
    return result


def _drift_section(dataset, drift_store: str, *, warn_threshold: float,
                   refresh_threshold: float, observer=None) -> dict:
    """Score ``dataset`` against a store's live training statistics."""
    from ..ingest import DriftDetector, corpus_statistics, read_live

    live = read_live(drift_store)
    if live is None:
        return {"ok": True, "status": "no-reference", "scores": {},
                "max_score": 0.0, "live_model": None}
    try:
        detector = DriftDetector(live["statistics"],
                                 warn_threshold=warn_threshold,
                                 refresh_threshold=refresh_threshold,
                                 observer=observer)
        drift = detector.check(corpus_statistics(dataset.graphs))
    except ValueError as exc:
        # Incomparable corpora (e.g. feature-dimension mismatch) are a
        # finding in their own right, not a doctor crash.
        return {"ok": False, "status": "incomparable", "scores": {},
                "max_score": float("inf"), "live_model": live["model"],
                "error": str(exc)}
    return {"ok": not drift.refresh_due, "status": drift.status,
            "scores": drift.scores, "max_score": drift.max_score,
            "live_model": live["model"]}


def render_doctor_report(report: dict) -> str:
    """Human-readable rendering of a :func:`run_doctor` report."""
    dataset = report["dataset"]
    validation = report["validation"]
    smoke = report["smoke"]
    lines = [
        f"dataset {dataset['name']}: {dataset['num_graphs']} graph(s), "
        f"{dataset['num_features']} feature(s), "
        f"{dataset['num_classes']} class(es), task={dataset['task']}",
        f"validation [{'ok' if validation['ok'] else 'FAIL'}]: "
        f"{validation['num_graphs']} checked, "
        f"{validation['num_invalid']} invalid",
    ]
    for issue in validation["issues"]:
        lines.append(f"  - {issue}")
    lines.append(
        f"smoke pretrain [{'ok' if smoke['ok'] else 'FAIL'}]: "
        f"{smoke['epochs']} epoch(s), {smoke['num_batches']} batch(es), "
        f"{smoke['skipped_batches']} skipped, "
        f"final loss {smoke['final_loss']:.4f}")
    if smoke.get("error"):
        lines.append(f"  - aborted: {smoke['error']}")
    drift = report.get("drift")
    if drift is not None:
        scores = ", ".join(f"{name}={score:.2f}"
                           for name, score in sorted(drift["scores"].items()))
        lines.append(
            f"drift [{'ok' if drift['ok'] else 'FAIL'}]: "
            f"status={drift['status']} max={drift['max_score']:.2f}"
            + (f" ({scores})" if scores else "")
            + (f" vs {drift['live_model']}" if drift.get("live_model")
               else ""))
        if drift.get("error"):
            lines.append(f"  - {drift['error']}")
    lines.append("doctor: all checks passed" if report["ok"]
                 else "doctor: FAILED")
    return "\n".join(lines)
