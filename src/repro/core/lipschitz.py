"""Lipschitz constant generator (paper §IV.B).

For every node ``v_r`` of an anchor graph the generator computes

    K_r = D_R(G, Ĝ_r) / D_T(G, Ĝ_r)                            (Eq. 11)

where ``Ĝ_r = Φ(G, 1, v_r)`` drops only that node, ``D_R`` is the Frobenius
distance between the GNN node representations of ``G`` and ``Ĝ_r`` (Eq. 12)
and ``D_T = ‖A − Â_r‖_F`` the topology distance (Eq. 5). Nodes with large
``K_r`` are semantic-related (dropping them moves the representation a lot
per unit of topology change); nodes with small ``K_r`` are semantic-unrelated
and safe to augment (Theorem 1).

Two computation modes are provided:

* ``exact`` — the reference mask mechanism of Eq. 13–14: every
  leave-one-node-out graph is pushed through ``f_q`` with a binary
  ``node_weight`` mask. Cost ``O(|V|)`` encoder passes per graph (the paper's
  ``O(|V||E|²)`` term); used by tests and the Fig. 7 visualisation.
* ``approx`` — the attention shortcut the paper's §V describes ("use
  attention weight to compute the dropped node's contribution to other nodes
  and delete that, achieving the mask mechanism in a reverse way"): one
  encoder pass, an attention head scores each node's contribution to its
  neighbours, and ``D_R(r)`` is assembled from the node's own representation
  plus its attention-weighted influence. Cost ``O(|E| + |V|)``.

Both modes are differentiable with respect to ``f_q``'s parameters — that is
the gradient pathway (through Eq. 21's semantic readout) that trains the
generator.
"""

from __future__ import annotations

import numpy as np

from ..graph import Batch, Graph
from ..gnn import GNNEncoder
from ..nn import Module, Parameter
from ..obs import current
from ..tensor import Tensor, concatenate, gather, segment_softmax, segment_sum

__all__ = ["LipschitzConstantGenerator", "topology_distance"]

# Floor for the topology distance of an isolated node (D_T would be 0 and
# Eq. 11 undefined); sqrt(2) is the distance a single-edge node would have.
_TOPOLOGY_FLOOR = np.sqrt(2.0)


def topology_distance(degrees: np.ndarray) -> np.ndarray:
    """``D_T(G, Ĝ_r) = ‖A − Â_r‖_F`` for each single-node drop.

    Dropping node ``r`` zeroes its row and column of the adjacency matrix:
    ``2·deg(r)`` unit entries change, so the Frobenius distance is
    ``sqrt(2·deg(r))``, floored for isolated nodes.
    """
    return np.maximum(np.sqrt(2.0 * degrees), _TOPOLOGY_FLOOR)


class LipschitzConstantGenerator(Module):
    """Computes per-node Lipschitz constants ``K_V`` with a dedicated GNN.

    Parameters
    ----------
    encoder:
        The generator GNN ``f_q`` (same architecture as ``f_k``, unshared
        parameters — paper §VI.A.3).
    rng:
        Seeded generator for the attention head's parameters.
    mode:
        ``"exact"`` or ``"approx"`` (see module docstring).
    """

    def __init__(self, encoder: GNNEncoder, *, rng: np.random.Generator,
                 mode: str = "approx"):
        super().__init__()
        if mode not in ("exact", "approx"):
            raise ValueError(f"unknown mode {mode!r}")
        self.encoder = encoder
        self.mode = mode
        dim = encoder.out_dim
        # Attention head for approx mode: score(src→dst) from both endpoints.
        self.att_src = Parameter(rng.normal(0, 0.1, size=dim))
        self.att_dst = Parameter(rng.normal(0, 0.1, size=dim))

    # ------------------------------------------------------------------
    def node_constants(self, batch: Batch) -> Tensor:
        """Per-node Lipschitz constants for every graph in the batch.

        Returns a Tensor of shape ``(total_nodes,)`` aligned with
        ``batch.x`` rows; differentiable w.r.t. the generator's parameters.

        The encoder is temporarily switched to eval mode: with train-mode
        BatchNorm the masked-replica batches shift the batch statistics and
        the resulting distances measure the batch composition, not the
        dropped node (empirically this destroys the semantic signal).
        """
        was_training = self.encoder.training
        self.encoder.eval()
        try:
            with current().span("lipschitz/generator"):
                with current().span(f"lipschitz/{self.mode}"):
                    if self.mode == "exact":
                        return self._exact_constants(batch)
                    return self._approx_constants(batch)
        finally:
            self.encoder.train(was_training)

    def node_representations(self, batch: Batch) -> Tensor:
        """The generator's node representations ``H^{(l)}`` (Eq. 12 input).

        Runs in the encoder's current mode — during training this is the
        pass that updates BatchNorm running statistics, which
        :meth:`node_constants` then consumes in eval mode.
        """
        return self.encoder(batch)

    # ------------------------------------------------------------------
    # Exact mode — leave-one-node-out mask mechanism (Eq. 13–14)
    # ------------------------------------------------------------------

    #: Upper bound on replica nodes (Σ n_g²) pushed through the encoder in
    #: one mega-batch; graphs are greedily packed under it so exact mode on
    #: large batches stays memory-bounded while still amortising encoder
    #: passes across graphs.
    _REPLICA_NODE_BUDGET = 100_000

    def _exact_constants(self, batch: Batch) -> Tensor:
        """K_r for all graphs via chunked leave-one-out mega-batches.

        Instead of one replica batch (and two encoder passes) per graph,
        all |V_g| masked replicas of *every* graph in a chunk form a single
        disjoint-union batch, evaluated with one masked encoder pass plus
        one shared reference pass — the batched evaluation the paper's §V
        complexity discussion presumes.
        """
        chunks: list[list[Graph]] = []
        load = 0
        for graph in batch.graphs:
            cost = graph.num_nodes ** 2
            if not chunks or (load and load + cost > self._REPLICA_NODE_BUDGET):
                chunks.append([])
                load = 0
            chunks[-1].append(graph)
            load += cost
        distances = [self._exact_chunk(chunk) for chunk in chunks]
        representation_distance = concatenate(distances, axis=0) \
            if len(distances) > 1 else distances[0]
        topo = topology_distance(batch.degrees())
        return representation_distance * Tensor(1.0 / topo)

    def _exact_chunk(self, graphs: list[Graph]) -> Tensor:
        """Per-node representation distances for one chunk of graphs."""
        sizes = [g.num_nodes for g in graphs]
        # One reference pass over the plain graphs...
        ref_batch = Batch(graphs)
        reference = self.encoder.node_representations(
            Tensor(ref_batch.x), ref_batch.edge_index, ref_batch.num_nodes,
            workspace=ref_batch.workspace())
        # ...and one masked pass over the replica mega-batch, which holds
        # n_g copies of each graph g; in copy j of a graph, node j is
        # masked (Eq. 13).
        replicas = Batch([g for g, n in zip(graphs, sizes) for _ in range(n)])
        replica_starts = replicas.node_offsets[:-1]
        mask = np.ones(replicas.num_nodes)
        masked_positions = []
        tile_chunks = []
        base = 0
        for n, ref_offset in zip(sizes, ref_batch.node_offsets[:-1]):
            masked_positions.append(replica_starts[base:base + n]
                                    + np.arange(n))
            tile_chunks.append(np.tile(
                np.arange(ref_offset, ref_offset + n), n))
            base += n
        mask[np.concatenate(masked_positions)] = 0.0
        masked_reps = self.encoder.node_representations(
            Tensor(replicas.x), replicas.edge_index, replicas.num_nodes,
            node_weight=Tensor(mask), workspace=replicas.workspace())
        # D_R per replica: Frobenius distance to the reference rows, routed
        # back by the replica's graph id (= one row per dropped node).
        tiled_reference = gather(reference, np.concatenate(tile_chunks))
        diff = masked_reps - tiled_reference
        squared = (diff * diff).sum(axis=1)
        return (segment_sum(squared, replicas.node_graph,
                            replicas.num_graphs) + 1e-12).sqrt()

    # ------------------------------------------------------------------
    # Approx mode — attention-weighted contribution deletion (§V)
    # ------------------------------------------------------------------
    def _approx_constants(self, batch: Batch) -> Tensor:
        reps = self.encoder(batch)
        n = batch.num_nodes
        node_norm_sq = (reps * reps).sum(axis=1)
        if batch.num_edges == 0:
            influence = Tensor(np.zeros(n))
        else:
            workspace = batch.workspace()
            src_plan = workspace.plan("src")
            dst_plan = workspace.plan("dst")
            src, dst = batch.edge_index
            # Attention over each destination's incoming edges: how much of
            # dst's representation is attributable to src. Scores are
            # computed once per node ((N,d)@(d,) matvecs) and gathered per
            # edge — one vectorized pass over all graphs in the batch.
            logits = (gather(reps @ self.att_src, src, plan=src_plan)
                      + gather(reps @ self.att_dst, dst,
                               plan=dst_plan)).leaky_relu(0.2)
            alpha = segment_softmax(logits, dst, n, plan=dst_plan)
            # Deleting src removes alpha-scaled mass ‖h_src‖² from each
            # neighbour dst: accumulate per-source squared influence.
            contribution = alpha * alpha * gather(node_norm_sq, src,
                                                  plan=src_plan)
            influence = segment_sum(contribution, src, n, plan=src_plan)
        representation_distance = (node_norm_sq + influence + 1e-12).sqrt()
        topo = topology_distance(batch.degrees())
        return representation_distance * Tensor(1.0 / topo)
