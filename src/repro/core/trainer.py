"""Pre-training loop for SGCL (and a generic loop reused by baselines)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data import DataLoader
from ..graph import Graph
from ..nn import Adam
from .config import SGCLConfig
from .model import SGCLModel

__all__ = ["SGCLTrainer"]


class SGCLTrainer:
    """Owns an :class:`SGCLModel`, its optimiser, and the pre-training loop.

    Parameters
    ----------
    in_dim:
        Node feature dimension of the corpus.
    config:
        Hyper-parameters; ``config.seed`` seeds model init, shuffling and
        augmentation sampling independently.

    Example
    -------
    >>> trainer = SGCLTrainer(dataset.num_features, SGCLConfig(epochs=5))
    >>> history = trainer.pretrain(dataset.graphs)
    >>> embeddings = embed_dataset(trainer.encoder, dataset)
    """

    def __init__(self, in_dim: int, config: SGCLConfig | None = None):
        self.config = config or SGCLConfig()
        root = np.random.default_rng(self.config.seed)
        self._init_rng = np.random.default_rng(root.integers(2 ** 63))
        self._shuffle_rng = np.random.default_rng(root.integers(2 ** 63))
        self._augment_rng = np.random.default_rng(root.integers(2 ** 63))
        self.model = SGCLModel(in_dim, self.config, rng=self._init_rng)
        self.optimizer = Adam(self.model.parameters(), lr=self.config.lr)
        self.history: list[dict[str, float]] = []

    # ------------------------------------------------------------------
    @property
    def encoder(self):
        """The pre-trained representation encoder ``f_k`` (downstream use)."""
        return self.model.encoder

    # ------------------------------------------------------------------
    def pretrain(self, graphs: Sequence[Graph],
                 epochs: int | None = None) -> list[dict[str, float]]:
        """Run contrastive pre-training; returns per-epoch mean stats.

        Batches with fewer than 2 graphs are skipped (InfoNCE needs
        negatives), matching ``drop_last`` behaviour of the reference code.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        self.model.train()
        for _ in range(epochs):
            epoch_stats: dict[str, list[float]] = {}
            loader = DataLoader(graphs, self.config.batch_size, shuffle=True,
                                rng=self._shuffle_rng)
            for batch in loader:
                if batch.num_graphs < 2:
                    continue
                loss, stats = self.model.loss(batch, self._augment_rng)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                for key, value in stats.items():
                    epoch_stats.setdefault(key, []).append(value)
            summary = {key: float(np.mean(values))
                       for key, values in epoch_stats.items()}
            self.history.append(summary)
        return self.history
