"""Pre-training loop for SGCL (and a generic loop reused by baselines)."""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from ..data import DataLoader
from ..graph import Graph
from ..nn import Adam
from .config import SGCLConfig
from .model import SGCLModel

__all__ = ["SGCLTrainer"]


class SGCLTrainer:
    """Owns an :class:`SGCLModel`, its optimiser, and the pre-training loop.

    Parameters
    ----------
    in_dim:
        Node feature dimension of the corpus.
    config:
        Hyper-parameters; ``config.seed`` seeds model init, shuffling and
        augmentation sampling independently.

    Example
    -------
    >>> trainer = SGCLTrainer(dataset.num_features, SGCLConfig(epochs=5))
    >>> history = trainer.pretrain(dataset.graphs)
    >>> embeddings = embed_dataset(trainer.encoder, dataset)
    """

    def __init__(self, in_dim: int, config: SGCLConfig | None = None):
        self.config = config or SGCLConfig()
        self.in_dim = in_dim
        root = np.random.default_rng(self.config.seed)
        self._init_rng = np.random.default_rng(root.integers(2 ** 63))
        self._shuffle_rng = np.random.default_rng(root.integers(2 ** 63))
        self._augment_rng = np.random.default_rng(root.integers(2 ** 63))
        self.model = SGCLModel(in_dim, self.config, rng=self._init_rng)
        self.optimizer = Adam(self.model.parameters(), lr=self.config.lr)
        self.history: list[dict[str, float]] = []
        self._best_loss = float("inf")

    # ------------------------------------------------------------------
    @property
    def encoder(self):
        """The pre-trained representation encoder ``f_k`` (downstream use)."""
        return self.model.encoder

    # ------------------------------------------------------------------
    def pretrain(self, graphs: Sequence[Graph], epochs: int | None = None, *,
                 checkpoint_dir: str | Path | None = None,
                 save_every: int | None = None) -> list[dict[str, float]]:
        """Run contrastive pre-training; returns per-epoch mean stats.

        Batches with fewer than 2 graphs are skipped (InfoNCE needs
        negatives), matching ``drop_last`` behaviour of the reference code.

        With ``checkpoint_dir`` set, the epoch with the lowest mean loss is
        saved to ``<dir>/best.npz`` and — if ``save_every`` is given — every
        ``save_every``-th epoch to ``<dir>/epoch-NNNN.npz`` (numbered over
        the trainer's lifetime, so resumed runs continue the sequence).
        """
        epochs = epochs if epochs is not None else self.config.epochs
        self.model.train()
        for _ in range(epochs):
            epoch_stats: dict[str, list[float]] = {}
            loader = DataLoader(graphs, self.config.batch_size, shuffle=True,
                                rng=self._shuffle_rng)
            for batch in loader:
                if batch.num_graphs < 2:
                    continue
                loss, stats = self.model.loss(batch, self._augment_rng)
                self.optimizer.zero_grad()
                loss.backward()
                self.optimizer.step()
                for key, value in stats.items():
                    epoch_stats.setdefault(key, []).append(value)
            summary = {key: float(np.mean(values))
                       for key, values in epoch_stats.items()}
            self.history.append(summary)
            if checkpoint_dir is not None:
                self._checkpoint_epoch(Path(checkpoint_dir), summary,
                                       save_every)
        return self.history

    def _checkpoint_epoch(self, directory: Path, summary: dict[str, float],
                          save_every: int | None) -> None:
        epoch = len(self.history)
        if save_every and epoch % save_every == 0:
            self.save_checkpoint(directory / f"epoch-{epoch:04d}.npz")
        loss = summary.get("loss", float("inf"))
        if loss < self._best_loss:
            self._best_loss = loss
            self.save_checkpoint(directory / "best.npz")

    # ------------------------------------------------------------------
    # Persistence (see repro.serve.checkpoint for the bundle format)
    # ------------------------------------------------------------------
    def save_checkpoint(self, path: str | Path,
                        metadata: dict | None = None) -> Path:
        """Write model + config + optimizer + RNG streams to ``path``."""
        from ..serve.checkpoint import save_checkpoint

        rng_state = {
            "shuffle": self._shuffle_rng.bit_generator.state,
            "augment": self._augment_rng.bit_generator.state,
        }
        return save_checkpoint(
            path, self.model, config=self.config, optimizer=self.optimizer,
            rng_state=rng_state,
            metadata={"history": self.history, **(metadata or {})})

    @classmethod
    def from_checkpoint(cls, path: str | Path) -> "SGCLTrainer":
        """Rebuild a trainer whose continued ``pretrain`` is bit-identical
        to one that never stopped (parameters, optimizer moments and RNG
        streams are all restored)."""
        from ..serve.checkpoint import load_checkpoint

        checkpoint = load_checkpoint(path)
        config = checkpoint.config
        if config is None or checkpoint.in_dim is None:
            raise ValueError(
                "checkpoint lacks an SGCLConfig/in_dim; it was not written "
                "by SGCLTrainer.save_checkpoint")
        trainer = cls(checkpoint.in_dim, config)
        checkpoint.restore(trainer.model, trainer.optimizer)
        if checkpoint.rng_state is not None:
            trainer._shuffle_rng.bit_generator.state = \
                checkpoint.rng_state["shuffle"]
            trainer._augment_rng.bit_generator.state = \
                checkpoint.rng_state["augment"]
        history = checkpoint.metadata.get("history", [])
        trainer.history = list(history)
        losses = [s.get("loss") for s in trainer.history
                  if s.get("loss") is not None]
        trainer._best_loss = min(losses, default=float("inf"))
        return trainer
