"""Pre-training loop for SGCL (and a generic loop reused by baselines)."""

from __future__ import annotations

import time
import warnings
from pathlib import Path
from typing import Sequence

import numpy as np

from ..data import DataLoader
from ..graph import Graph
from ..nn import Adam
from ..obs import current
from ..validate.numerics import NumericsGuard, global_grad_norm
from .config import SGCLConfig
from .model import SGCLModel

__all__ = ["SGCLTrainer", "global_grad_norm"]


def summarize_epoch(epoch_stats: dict[str, list[float]]) -> dict[str, float]:
    """Collapse per-batch stats into one epoch row.

    Keys ending in ``_min``/``_max`` keep their extreme over the epoch's
    batches; everything else is averaged. With no per-batch stats at all
    (every batch skipped) the result is empty — ``pretrain`` fills in a
    well-formed NaN-loss row in that case.
    """
    summary = {}
    for key, values in epoch_stats.items():
        if key.endswith("_min"):
            summary[key] = float(np.min(values))
        elif key.endswith("_max"):
            summary[key] = float(np.max(values))
        else:
            summary[key] = float(np.mean(values))
    return summary


class SGCLTrainer:
    """Owns an :class:`SGCLModel`, its optimiser, and the pre-training loop.

    Parameters
    ----------
    in_dim:
        Node feature dimension of the corpus.
    config:
        Hyper-parameters; ``config.seed`` seeds model init, shuffling and
        augmentation sampling independently.

    Example
    -------
    >>> trainer = SGCLTrainer(dataset.num_features, SGCLConfig(epochs=5))
    >>> history = trainer.pretrain(dataset.graphs)
    >>> embeddings = embed_dataset(trainer.encoder, dataset)
    """

    def __init__(self, in_dim: int, config: SGCLConfig | None = None):
        self.config = config or SGCLConfig()
        self.in_dim = in_dim
        root = np.random.default_rng(self.config.seed)
        self._init_rng = np.random.default_rng(root.integers(2 ** 63))
        self._shuffle_rng = np.random.default_rng(root.integers(2 ** 63))
        self._augment_rng = np.random.default_rng(root.integers(2 ** 63))
        self.model = SGCLModel(in_dim, self.config, rng=self._init_rng)
        self.optimizer = Adam(self.model.parameters(), lr=self.config.lr)
        self.history: list[dict[str, float]] = []
        self._best_loss = float("inf")
        self._stop_requested = False

    # ------------------------------------------------------------------
    @property
    def encoder(self):
        """The pre-trained representation encoder ``f_k`` (downstream use)."""
        return self.model.encoder

    # ------------------------------------------------------------------
    @property
    def stop_requested(self) -> bool:
        """Whether a graceful stop is pending (see :meth:`request_stop`)."""
        return self._stop_requested

    def request_stop(self) -> None:
        """Ask the running ``pretrain`` loop to stop at the next epoch
        boundary.

        Safe to call from a signal handler (it only flips a flag). The
        loop never aborts mid-epoch, so the trainer's parameters,
        optimiser moments and RNG streams are always left in an
        epoch-boundary state — an emergency checkpoint written afterwards
        resumes bit-identically to a run that was told to train fewer
        epochs. The flag is cleared on the next ``pretrain`` call.
        """
        self._stop_requested = True

    # ------------------------------------------------------------------
    def pretrain(self, graphs: Sequence[Graph], epochs: int | None = None, *,
                 checkpoint_dir: str | Path | None = None,
                 save_every: int | None = None,
                 observer=None) -> list[dict[str, float]]:
        """Run contrastive pre-training; returns per-epoch stats.

        Every history entry is one epoch row carrying the loss components
        (``loss``, ``loss_s``, ``loss_c``, ``loss_g``, ``theta_w``), the
        Lipschitz-constant summary (``k_v_mean/std/min/max``), the realised
        augmentation strength (``drop_fraction``), the gradient norm and
        timing (``epoch``, ``epoch_seconds``, ``num_batches``) — so
        sensitivity benchmarks can plot curves without re-running, and
        resumed runs (the history is checkpointed) keep the full record.

        Batches with fewer than 2 graphs are skipped (InfoNCE needs
        negatives), matching ``drop_last`` behaviour of the reference code.

        Every batch runs under a :class:`~repro.validate.NumericsGuard`
        (``config.numerics_policy``): a NaN/Inf loss component or gradient
        norm raises, skips the batch (counted in the row's
        ``skipped_batches`` and the ``numerics/skipped_batches`` metric)
        or warns; ``config.grad_clip`` additionally caps the global
        gradient L2 norm. An epoch in which *every* batch was skipped
        still yields a well-formed row (``loss`` = NaN, ``num_batches`` =
        0) plus a :class:`RuntimeWarning`, so ``repro report`` and
        checkpointed-history consumers keep working.

        With ``checkpoint_dir`` set, every epoch atomically refreshes
        ``<dir>/latest.npz`` (the crash-recovery point
        :func:`repro.resilience.find_latest_checkpoint` resumes from — at
        most one epoch of work is ever lost), the epoch with the lowest
        mean loss is saved to ``<dir>/best.npz`` and — if ``save_every``
        is given — every ``save_every``-th epoch to
        ``<dir>/epoch-NNNN.npz`` (numbered over the trainer's lifetime, so
        resumed runs continue the sequence).

        A pending :meth:`request_stop` (typically installed by
        :func:`repro.resilience.interrupt_guard` on SIGINT/SIGTERM) ends
        the loop at the next epoch boundary; the returned history simply
        stops early and the trainer state matches a run asked for fewer
        epochs, bit for bit.

        ``observer`` overrides the ambient :func:`repro.obs.current`
        observer; each epoch row is also emitted as an ``epoch`` event and
        the loop is wrapped in ``pretrain/epoch`` / ``pretrain/batch``
        spans, with ``pretrain/loss`` / ``pretrain/backward`` /
        ``pretrain/step`` children splitting each batch into its forward,
        backward and optimiser phases (the granularity ``repro profile``
        attributes op time to). With no observer active all of this is a
        no-op.
        """
        epochs = epochs if epochs is not None else self.config.epochs
        obs = observer if observer is not None else current()
        parameters = self.model.parameters()
        guard = NumericsGuard(policy=self.config.numerics_policy,
                              grad_clip=self.config.grad_clip, observer=obs)
        self.model.train()
        self._stop_requested = False
        for _ in range(epochs):
            if self._stop_requested:
                obs.event("pretrain_stopped", epochs_done=len(self.history))
                break
            epoch_stats: dict[str, list[float]] = {}
            num_batches = 0
            skipped_batches = 0
            started = time.perf_counter()
            loader = DataLoader(graphs, self.config.batch_size, shuffle=True,
                                rng=self._shuffle_rng)
            if self.config.prefetch_batches > 0:
                from ..runtime import PrefetchLoader

                loader = PrefetchLoader(
                    loader, prefetch=self.config.prefetch_batches)
            with obs.span("pretrain/epoch"):
                for batch in loader:
                    if batch.num_graphs < 2:
                        continue
                    with obs.span("pretrain/batch"):
                        with obs.span("pretrain/loss"):
                            loss, stats = self.model.loss(batch,
                                                          self._augment_rng)
                        if not guard.check_loss(stats):
                            skipped_batches += 1
                            continue
                        self.optimizer.zero_grad()
                        with obs.span("pretrain/backward"):
                            loss.backward()
                        grad_norm = global_grad_norm(parameters)
                        if not guard.guard_gradients(parameters, grad_norm):
                            skipped_batches += 1
                            continue
                        if obs.enabled:
                            stats["grad_norm"] = grad_norm
                        with obs.span("pretrain/step"):
                            self.optimizer.step()
                    num_batches += 1
                    for key, value in stats.items():
                        epoch_stats.setdefault(key, []).append(value)
            summary = summarize_epoch(epoch_stats)
            if num_batches == 0:
                # Well-formed row even when every batch was skipped, so
                # `repro report` and history consumers see a loss column.
                summary["loss"] = float("nan")
                warnings.warn(
                    f"epoch {len(self.history) + 1}: no batch was trained "
                    f"({skipped_batches} skipped; batch_size="
                    f"{self.config.batch_size} over {len(graphs)} graphs)",
                    RuntimeWarning, stacklevel=2)
            summary["epoch"] = len(self.history) + 1
            summary["num_batches"] = num_batches
            summary["skipped_batches"] = skipped_batches
            summary["epoch_seconds"] = time.perf_counter() - started
            self.history.append(summary)
            obs.event("epoch", method="SGCL", **summary)
            if checkpoint_dir is not None:
                self._checkpoint_epoch(Path(checkpoint_dir), summary,
                                       save_every)
        return self.history

    def precompute_lipschitz(self, graphs: Sequence[Graph], *,
                             workers: int | None = None,
                             cache=None) -> list[np.ndarray]:
        """Per-node ``K_V`` of every graph under the current (frozen)
        generator, fanned out over worker processes and served from a
        :class:`repro.runtime.PrecomputeCache` by default.

        ``cache=None`` (the default) opens the cache at
        ``config.precompute_cache_dir`` — repeated sweeps over the same
        corpus with unchanged generator parameters become pure cache reads.
        Pass a :class:`~repro.runtime.PrecomputeCache` to use a specific
        location, or ``cache=False`` to force recomputation without one.

        Bit-identical to ``generator.node_constants(Batch([g]))`` graph by
        graph — parallelism and caching change wall-time, never numbers
        (cache keys pin graph content plus the generator's mode and
        parameter hash, so a stale hit is impossible). Used by diagnostics
        (``repro inspect``, Fig. 7) that sweep a corpus with fixed
        parameters; during pre-training the constants of course evolve
        with ``f_q`` and are computed per batch as before.
        """
        from ..runtime import PrecomputeCache, precompute_node_constants

        if cache is None and self.config.precompute_cache_dir:
            cache = PrecomputeCache(
                Path(self.config.precompute_cache_dir).expanduser())
        elif cache is False:
            cache = None
        return precompute_node_constants(self.model.generator, graphs,
                                         workers=workers, cache=cache)

    def _checkpoint_epoch(self, directory: Path, summary: dict[str, float],
                          save_every: int | None) -> None:
        epoch = len(self.history)
        self.save_checkpoint(directory / "latest.npz")
        if save_every and epoch % save_every == 0:
            self.save_checkpoint(directory / f"epoch-{epoch:04d}.npz")
        loss = summary.get("loss", float("inf"))
        if np.isfinite(loss) and loss < self._best_loss:
            self._best_loss = loss
            self.save_checkpoint(directory / "best.npz")

    def save_emergency_checkpoint(self, directory: str | Path) -> Path:
        """Write ``<directory>/emergency.npz`` from the current state.

        Meant for the way out of an interrupted run: the trainer only
        stops at epoch boundaries (see :meth:`request_stop`), so the
        emergency bundle resumes bit-identically to a shorter run. The
        write is atomic — a second interrupt mid-write leaves either the
        previous file or none, never a truncated bundle.
        """
        return self.save_checkpoint(Path(directory) / "emergency.npz",
                                    metadata={"emergency": True})

    # ------------------------------------------------------------------
    # Persistence (see repro.serve.checkpoint for the bundle format)
    # ------------------------------------------------------------------
    def save_checkpoint(self, path: str | Path,
                        metadata: dict | None = None) -> Path:
        """Write model + config + optimizer + RNG streams to ``path``."""
        from ..serve.checkpoint import save_checkpoint

        rng_state = {
            "shuffle": self._shuffle_rng.bit_generator.state,
            "augment": self._augment_rng.bit_generator.state,
        }
        return save_checkpoint(
            path, self.model, config=self.config, optimizer=self.optimizer,
            rng_state=rng_state,
            metadata={"history": self.history, **(metadata or {})})

    @classmethod
    def from_checkpoint(cls, path: str | Path) -> "SGCLTrainer":
        """Rebuild a trainer whose continued ``pretrain`` is bit-identical
        to one that never stopped (parameters, optimizer moments and RNG
        streams are all restored)."""
        from ..serve.checkpoint import load_checkpoint

        checkpoint = load_checkpoint(path)
        config = checkpoint.config
        if config is None or checkpoint.in_dim is None:
            raise ValueError(
                "checkpoint lacks an SGCLConfig/in_dim; it was not written "
                "by SGCLTrainer.save_checkpoint")
        trainer = cls(checkpoint.in_dim, config)
        checkpoint.restore(trainer.model, trainer.optimizer)
        if checkpoint.rng_state is not None:
            trainer._shuffle_rng.bit_generator.state = \
                checkpoint.rng_state["shuffle"]
            trainer._augment_rng.bit_generator.state = \
                checkpoint.rng_state["augment"]
        history = checkpoint.metadata.get("history", [])
        trainer.history = list(history)
        losses = [s.get("loss") for s in trainer.history
                  if s.get("loss") is not None
                  and np.isfinite(s.get("loss"))]  # NaN rows = empty epochs
        trainer._best_loss = min(losses, default=float("inf"))
        return trainer
