"""SGCL core — the paper's contribution.

Public API:

* :class:`SGCLConfig` — hyper-parameters and ablation switches.
* :class:`SGCLModel` — generator tower + representation tower.
* :class:`SGCLTrainer` — pre-training loop; ``trainer.encoder`` is the
  downstream-ready ``f_k``.
* :class:`LipschitzConstantGenerator` — per-node Lipschitz constants.
* Augmentation operators (Φ, Lipschitz augmentation, GraphCL perturbations).
* Loss functions (Eq. 24–26) and Theorem-1 verification utilities.
"""

from .config import SGCLConfig
from .lipschitz import LipschitzConstantGenerator, topology_distance
from .augmentation import (
    GRAPHCL_AUGMENTATIONS,
    attribute_mask,
    augmentation_probability_mask,
    binarize_constants,
    drop_single_node,
    lipschitz_augment,
    phi_node_drop,
    random_edge_perturb,
    random_node_drop,
    random_subgraph,
)
from .losses import complement_loss, semantic_info_nce, weight_regularizer
from .model import SGCLModel, SemanticScores
from .trainer import SGCLTrainer
from . import analysis, theory
from .adaptation import adapt_generator

__all__ = [
    "SGCLConfig",
    "SGCLModel",
    "SemanticScores",
    "SGCLTrainer",
    "LipschitzConstantGenerator",
    "topology_distance",
    "drop_single_node",
    "phi_node_drop",
    "binarize_constants",
    "augmentation_probability_mask",
    "lipschitz_augment",
    "random_node_drop",
    "random_edge_perturb",
    "attribute_mask",
    "random_subgraph",
    "GRAPHCL_AUGMENTATIONS",
    "semantic_info_nce",
    "complement_loss",
    "weight_regularizer",
    "theory",
    "analysis",
    "adapt_generator",
]
