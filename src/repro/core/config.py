"""SGCL hyper-parameter configuration (paper §VI.A.3 defaults)."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["SGCLConfig"]


@dataclass
class SGCLConfig:
    """All knobs of the SGCL framework.

    The defaults are the paper's tuned values for the unsupervised TU
    experiments: 3-layer GIN with hidden width 32, ρ=0.9, λ_c=λ_W=0.01,
    τ=0.2, Adam lr=0.001. The ``use_*`` flags implement the Table V
    ablations; setting ``augmentation`` switches the view generator
    (``"lipschitz"`` = full SGCL, ``"random"`` = SGCL w/o VG,
    ``"learnable"`` = SGCL w/o LGA).
    """

    # Encoder architecture (f_q and f_k share it; parameters are unshared).
    hidden_dim: int = 32
    num_layers: int = 3
    conv: str = "gin"            # Fig. 6: gin | gcn | sage | gat
    pooling: str = "sum"

    # Lipschitz graph augmentation (§IV.B–C).
    rho: float = 0.9             # keep ratio — see DESIGN.md §5 on ρ semantics
    lipschitz_mode: str = "approx"   # "exact" (reference) | "approx" (attention)
    augmentation: str = "lipschitz"  # "lipschitz" | "random" | "learnable"
    # Generator GNN type. The paper uses the same architecture for f_q and
    # f_k; on our substrate sum-aggregating GIN explodes on dense graphs
    # without BatchNorm while BatchNorm's running statistics erase the
    # magnitude salience the Lipschitz statistic measures, so the generator
    # defaults to mean-aggregating GraphSAGE (DESIGN.md §5). Set to
    # config.conv to recover the literal same-architecture reading.
    generator_conv: str = "sage"

    # Loss (§IV.D, Eq. 27).
    tau: float = 0.2
    lambda_c: float = 0.01
    lambda_w: float = 0.01
    # Weight of the generator tower's graph-likelihood objective. The paper
    # trains f_q jointly but never states its gradient source; we train it to
    # maximise the paper's own graph probability (Definitions 1–2: edge
    # probability δ((h_i/d_i + h_j/d_j)·w)), i.e. link prediction — a
    # structure-preserving objective under which the Lipschitz constants
    # measure semantic relevance (DESIGN.md §5). Setting 0 recovers the
    # strictly-literal reading (f_q updated only through Eq. 21).
    lambda_g: float = 1.0

    # Stop-gradient between the contrastive losses and f_q. When True
    # (default) the generator is trained purely by its graph-likelihood
    # objective; the InfoNCE gradient through K_V (Eq. 21) otherwise learns
    # a degenerate weighting that anti-correlates with semantics (observed
    # empirically; DESIGN.md §5).
    detach_semantics: bool = True

    # Ablation switches (Table V).
    use_semantic_readout: bool = True   # SRL: Eq. 21's K_V-weighted pooling
    use_complement_loss: bool = True    # L_c (Eq. 25)
    use_weight_reg: bool = True         # Θ_W (Eq. 26)
    soft_view_weighting: bool = True    # gradient pathway for the prob head

    # Optimisation (§VI.A.3).
    lr: float = 1e-3
    batch_size: int = 128
    epochs: int = 40
    generator_batch_size: int = 16

    # Runtime. With prefetch_batches > 0 the pre-training loop assembles
    # up to that many mini-batches on a background thread
    # (repro.runtime.PrefetchLoader); batch order and shuffle streams are
    # unchanged, so this is a pure wall-time knob.
    prefetch_batches: int = 0

    # Where SGCLTrainer.precompute_lipschitz keeps its content-addressed
    # K_V cache (repro.runtime.PrecomputeCache) when the caller does not
    # hand one in. Relative paths resolve against the working directory;
    # None disables the default cache (callers can still pass their own).
    # Cache keys pin graph content + generator parameters, so a stale hit
    # is impossible; this is a pure wall-time knob.
    precompute_cache_dir: str | None = ".repro_cache/precompute"

    # Numerical guard rails (repro.validate.NumericsGuard). What to do
    # when a batch produces a NaN/Inf loss component or gradient norm:
    # "raise" aborts, "skip" drops the batch (counted under
    # numerics/skipped_batches and in the epoch row), "warn" records and
    # proceeds. grad_clip rescales gradients whose global L2 norm exceeds
    # it (None = off). Seeded numerics are unchanged unless a guard fires
    # or clipping engages.
    numerics_policy: str = "skip"
    grad_clip: float | None = None

    # Reproducibility.
    seed: int = 0

    def with_overrides(self, **kwargs) -> "SGCLConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)

    def __post_init__(self):
        if not 0.0 < self.rho <= 1.0:
            raise ValueError(f"rho must be in (0, 1], got {self.rho}")
        if not 0.0 < self.tau <= 1.0:
            raise ValueError(f"tau must be in (0, 1], got {self.tau}")
        if self.lipschitz_mode not in ("exact", "approx"):
            raise ValueError(f"unknown lipschitz_mode {self.lipschitz_mode!r}")
        if self.augmentation not in ("lipschitz", "random", "learnable"):
            raise ValueError(f"unknown augmentation {self.augmentation!r}")
        if self.numerics_policy not in ("raise", "skip", "warn"):
            raise ValueError(
                f"unknown numerics_policy {self.numerics_policy!r}")
        if self.grad_clip is not None and not self.grad_clip > 0:
            raise ValueError(
                f"grad_clip must be positive or None, got {self.grad_clip}")
