"""The SGCL model (paper Fig. 2): generator tower + representation tower.

Components
----------
* ``f_q`` — the Lipschitz-constant-generator GNN (wrapped in
  :class:`LipschitzConstantGenerator`) plus the augmentation-probability
  head ``σ(h_i w^T)`` of Eq. 18.
* ``f_k`` — the representation GNN with sum pooling and a 2-layer
  projection head (Eq. 21–23). Same architecture as ``f_q``, unshared
  parameters.

The anchor readout weights node representations by their Lipschitz
constants (Eq. 21); views are pooled unweighted (Eq. 22–23). ``K_V`` is
normalised to mean 1 within each graph before weighting so the readout
scale does not drift with graph size (Eq. 21 as written is
scale-sensitive; normalisation keeps training stable and preserves the
relative semantic scores, which is all Eq. 21 uses).
"""

from __future__ import annotations

import numpy as np

from ..graph import Batch, Graph
from ..gnn import GNNEncoder, ProjectionHead
from ..nn import Module, Parameter
from ..obs import current
from ..tensor import Tensor, gather, segment_mean
from .augmentation import augmentation_probability_mask, lipschitz_augment
from .config import SGCLConfig
from .lipschitz import LipschitzConstantGenerator
from .losses import (
    complement_loss,
    graph_likelihood_loss,
    semantic_info_nce,
    weight_regularizer,
)

__all__ = ["SGCLModel", "SemanticScores"]


class SemanticScores:
    """Per-node semantic quantities for one batch (generator outputs).

    Attributes
    ----------
    constants:
        ``K_V`` — Lipschitz constants, differentiable Tensor, shape ``(N,)``.
    head_scores:
        ``σ(h_i w^T)`` — probability-head outputs, Tensor, shape ``(N,)``.
    binary:
        ``C_i`` (Eq. 17) — 1 for semantic-related nodes, ndarray.
    keep_probability:
        ``P(v_i)`` (Eq. 18) — keep probabilities, ndarray.
    """

    __slots__ = ("constants", "head_scores", "binary", "keep_probability")

    def __init__(self, constants: Tensor, head_scores: Tensor,
                 binary: np.ndarray, keep_probability: np.ndarray):
        self.constants = constants
        self.head_scores = head_scores
        self.binary = binary
        self.keep_probability = keep_probability


class SGCLModel(Module):
    """Semantic-aware Graph Contrastive Learning model."""

    def __init__(self, in_dim: int, config: SGCLConfig, *,
                 rng: np.random.Generator):
        super().__init__()
        self.config = config
        encoder_kwargs = dict(hidden_dim=config.hidden_dim,
                              num_layers=config.num_layers,
                              conv=config.conv, pooling=config.pooling)
        # The generator GNN runs without BatchNorm: its Lipschitz statistic
        # measures representation *magnitudes*, which per-feature batch
        # normalisation erases as its running statistics adapt (DESIGN.md §5).
        generator_kwargs = dict(encoder_kwargs, conv=config.generator_conv)
        f_q = GNNEncoder(in_dim, rng=rng, batch_norm=False,
                         **generator_kwargs)
        self.generator = LipschitzConstantGenerator(
            f_q, rng=rng, mode=config.lipschitz_mode)
        self.prob_weight = Parameter(rng.normal(0, 0.1, size=f_q.out_dim))
        # Edge weight w of the paper's edge-probability model (Eq. 2); also
        # the W whose norm Theorem 1 bounds.
        self.edge_weight = Parameter(rng.normal(0, 0.1, size=f_q.out_dim))
        self.f_k = GNNEncoder(in_dim, rng=rng, **encoder_kwargs)
        self.projection = ProjectionHead(self.f_k.out_dim, rng=rng)

    # ------------------------------------------------------------------
    @property
    def encoder(self) -> GNNEncoder:
        """The representation encoder ``f_k`` used for downstream tasks."""
        return self.f_k

    # ------------------------------------------------------------------
    def semantic_scores(self, batch: Batch) -> SemanticScores:
        """Run the generator tower: ``K_V``, ``C`` and ``P(V)`` (Eq. 11–18).

        The binarisation threshold ``K̄`` (Eq. 16) is the per-graph mean, so
        every graph keeps its own semantic/non-semantic partition.
        """
        constants = self.generator.node_constants(batch)
        reps = self.generator.node_representations(batch)
        if self.config.detach_semantics:
            constants = constants.detach()
            reps = reps.detach()
        head_scores = (reps @ self.prob_weight).sigmoid()
        per_graph_mean = segment_mean(constants, batch.node_graph,
                                      batch.num_graphs)
        binary = (constants.data
                  >= per_graph_mean.data[batch.node_graph]).astype(np.float64)
        keep = augmentation_probability_mask(binary, head_scores.data)
        return SemanticScores(constants, head_scores, binary, keep)

    # ------------------------------------------------------------------
    def generate_views(self, batch: Batch, scores: SemanticScores,
                       rng: np.random.Generator
                       ) -> tuple[list[Graph], list[Graph]]:
        """Per-graph positive views Ĝ (Eq. 19) and complements Ĝ^c (Eq. 20).

        The ``augmentation`` config switches between the full Lipschitz
        augmentation, uniformly random node dropping (ablation *w/o VG*) and
        a learnable view generator without the Lipschitz binarisation
        (ablation *w/o LGA*).
        """
        mode = self.config.augmentation
        per_graph_keep = batch.unbatch_node_values(scores.keep_probability)
        per_graph_head = batch.unbatch_node_values(scores.head_scores.data)
        views, complements = [], []
        with current().span("augment/sample"):
            for graph, keep, head in zip(batch.graphs, per_graph_keep,
                                         per_graph_head):
                if mode == "random":
                    probability = np.full(graph.num_nodes, 0.5)
                elif mode == "learnable":
                    probability = head
                else:
                    probability = keep
                view, complement = lipschitz_augment(
                    graph, probability, self.config.rho, rng)
                views.append(view)
                complements.append(complement)
        return views, complements

    # ------------------------------------------------------------------
    def anchor_embeddings(self, batch: Batch, scores: SemanticScores) -> Tensor:
        """``z_G`` (Eq. 21): K_V-weighted sum pooling + projection."""
        with current().span("model/anchor_embed"):
            if self.config.use_semantic_readout:
                constants = scores.constants
                mean = segment_mean(constants, batch.node_graph,
                                    batch.num_graphs)
                weights = constants * gather(
                    (mean + 1e-12) ** -1.0, batch.node_graph)
                pooled = self.f_k.graph_representations(batch,
                                                        pool_weights=weights)
            else:  # ablation w/o SRL
                pooled = self.f_k.graph_representations(batch)
            return self.projection(pooled)

    def view_embeddings(self, views: list[Graph],
                        soft_weights: Tensor | None = None) -> Tensor:
        """``z_Ĝ`` (Eq. 22–23): plain sum pooling + projection.

        ``soft_weights`` (per surviving node, aligned with the view batch) is
        the straight-through relaxation that lets gradient reach the
        probability head — see DESIGN.md §5.
        """
        with current().span("model/view_embed"):
            view_batch = Batch(views)
            pooled = self.f_k.graph_representations(view_batch,
                                                    node_weight=soft_weights)
            return self.projection(pooled)

    # ------------------------------------------------------------------
    def _soft_view_weights(self, batch: Batch, views: list[Graph],
                           scores: SemanticScores) -> Tensor | None:
        """Gather each surviving view node's keep probability (Tensor).

        Semantic-related nodes have P=1 so they pass unscaled; kept
        semantic-unrelated nodes are scaled by σ(h w^T), through which the
        probability head receives gradient.
        """
        if not self.config.soft_view_weighting:
            return None
        binary = Tensor(scores.binary)
        keep_tensor = binary + (1.0 - binary) * scores.head_scores
        global_ids = []
        for graph_id, view in enumerate(views):
            parents = view.meta["parent_nodes"]
            global_ids.append(parents + batch.node_offsets[graph_id])
        return gather(keep_tensor, np.concatenate(global_ids))

    # ------------------------------------------------------------------
    def loss(self, batch: Batch, rng: np.random.Generator
             ) -> tuple[Tensor, dict[str, float]]:
        """Full SGCL objective (Eq. 27) for one batch.

        Returns the loss Tensor and a stats dict (component values).
        """
        config = self.config
        scores = self.semantic_scores(batch)
        views, complements = self.generate_views(batch, scores, rng)
        z_anchor = self.anchor_embeddings(batch, scores)
        soft = self._soft_view_weights(batch, views, scores)
        z_view = self.view_embeddings(views, soft_weights=soft)
        loss_s = semantic_info_nce(z_anchor, z_view, config.tau)
        total = loss_s
        stats = {"loss_s": loss_s.item()}
        constants = scores.constants.data
        stats["k_v_mean"] = float(constants.mean())
        stats["k_v_std"] = float(constants.std())
        stats["k_v_min"] = float(constants.min())
        stats["k_v_max"] = float(constants.max())
        surviving = sum(view.num_nodes for view in views)
        stats["drop_fraction"] = 1.0 - surviving / batch.num_nodes
        if config.lambda_g > 0:
            # Generator tower objective: maximise the paper's graph
            # likelihood (Eq. 2–3) so f_q's representations encode structure
            # and the Lipschitz constants measure semantic relevance rather
            # than initialisation noise (DESIGN.md §5).
            reps = self.generator.node_representations(batch)
            loss_g = graph_likelihood_loss(reps, batch.edge_index,
                                           batch.degrees(),
                                           self.edge_weight, rng)
            total = total + config.lambda_g * loss_g
            stats["loss_g"] = loss_g.item()
        if config.use_complement_loss and config.lambda_c > 0:
            z_complement = self.view_embeddings(complements)
            loss_c = complement_loss(z_anchor, z_view, z_complement,
                                     config.tau)
            total = total + config.lambda_c * loss_c
            stats["loss_c"] = loss_c.item()
        if config.use_weight_reg and config.lambda_w > 0:
            reg = weight_regularizer(self)
            total = total + config.lambda_w * reg
            stats["theta_w"] = reg.item()
        stats["loss"] = total.item()
        return total, stats
