"""Graph augmentation operators (paper §III.B, §IV.C).

The node-dropping operator Φ of Definition 3 plus the paper's Lipschitz
graph augmentation, and the four classic GraphCL perturbations used by the
baselines and the w/o-VG ablation.

On ρ semantics: Definition 3 calls ``ρ|V|`` "the number of dropping nodes",
but the tuned value ρ=0.9 and the §VI.D discussion ("tune it around a
comparatively large value … semantic-unrelated nodes also contribute")
only make sense if ρ is the *keep* ratio. We therefore drop
``round((1−ρ)·|V|)`` nodes (see DESIGN.md §5).
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..obs import current

__all__ = [
    "drop_single_node",
    "phi_node_drop",
    "binarize_constants",
    "augmentation_probability_mask",
    "lipschitz_augment",
    "random_node_drop",
    "random_edge_perturb",
    "attribute_mask",
    "random_subgraph",
    "GRAPHCL_AUGMENTATIONS",
]


# ----------------------------------------------------------------------
# The Φ operator (Definition 3)
# ----------------------------------------------------------------------
def drop_single_node(graph: Graph, node: int) -> Graph:
    """``Ĝ_r = Φ(G, 1, v_r)`` — drop one specific node."""
    return graph.drop_nodes(np.array([node]))


def phi_node_drop(graph: Graph, num_drop: int, probabilities: np.ndarray,
                  rng: np.random.Generator) -> Graph:
    """``Ĝ = Φ(G, num_drop, P(V))`` — drop ``num_drop`` nodes sampled
    without replacement with probability proportional to ``probabilities``.

    Nodes with zero probability are never dropped; if fewer than
    ``num_drop`` nodes are droppable, only those are dropped. At least one
    node always survives.
    """
    n = graph.num_nodes
    num_drop = int(np.clip(num_drop, 0, n - 1))
    if num_drop == 0:
        return _identity_view(graph)
    probabilities = np.asarray(probabilities, dtype=np.float64)
    if probabilities.shape != (n,):
        raise ValueError(f"probabilities must have shape ({n},)")
    weights = np.clip(probabilities, 0.0, None)
    droppable = int((weights > 0).sum())
    num_drop = min(num_drop, droppable)
    if num_drop == 0:
        return _identity_view(graph)
    weights = weights / weights.sum()
    drop = rng.choice(n, size=num_drop, replace=False, p=weights)
    view = graph.drop_nodes(drop)
    view.meta["dropped_nodes"] = np.sort(drop)
    return view


def _identity_view(graph: Graph) -> Graph:
    """A no-drop view with the same metadata contract as a real one."""
    view = graph.copy()
    view.meta["dropped_nodes"] = np.array([], dtype=np.int64)
    view.meta["parent_nodes"] = np.arange(graph.num_nodes)
    return view


# ----------------------------------------------------------------------
# Lipschitz graph augmentation (§IV.C)
# ----------------------------------------------------------------------
def binarize_constants(constants: np.ndarray) -> np.ndarray:
    """Eq. 16–17: threshold the Lipschitz constants at their mean.

    ``C_i = 1`` marks semantic-related nodes (``K_i ≥ K̄``), which the
    augmentation must never drop.

    Degenerate inputs are well-defined: an empty array yields an empty
    mask (no NaN from the mean of an empty slice), and all-equal
    constants mark *every* node semantic-related — the augmentation then
    has nothing droppable and returns an identity view.
    """
    constants = np.asarray(constants, dtype=np.float64)
    if constants.size == 0:
        return np.zeros(0, dtype=np.float64)
    return (constants >= constants.mean()).astype(np.float64)


def augmentation_probability_mask(binary: np.ndarray,
                                  head_scores: np.ndarray) -> np.ndarray:
    """Eq. 18: ``P(v_i) = C_i + (1 − C_i)·σ(h_i w^T)``.

    ``head_scores`` are the already-sigmoided probability-head outputs.
    ``P`` is the probability of a node being *kept* — semantic-related nodes
    get P=1 (never dropped).
    """
    binary = np.asarray(binary, dtype=np.float64)
    head_scores = np.asarray(head_scores, dtype=np.float64)
    return binary + (1.0 - binary) * head_scores


def lipschitz_augment(graph: Graph, keep_probability: np.ndarray, rho: float,
                      rng: np.random.Generator) -> tuple[Graph, Graph]:
    """Generate the positive view Ĝ (Eq. 19) and complement view Ĝ^c (Eq. 20).

    ``Ĝ`` drops ``(1−ρ)|V|`` nodes sampled with weight ``1 − P`` (so only
    semantic-unrelated nodes go); ``Ĝ^c`` drops the same count sampled with
    weight ``P`` (preferentially removing semantic-related nodes, leaving
    the non-semantic residue used as an extra negative).
    """
    with current().span("augment/lipschitz"):
        n = graph.num_nodes
        num_drop = int(round((1.0 - rho) * n))
        positive = phi_node_drop(graph, num_drop, 1.0 - keep_probability, rng)
        complement = phi_node_drop(graph, num_drop, keep_probability, rng)
        return positive, complement


# ----------------------------------------------------------------------
# Classic GraphCL augmentations (baselines + w/o-VG ablation)
# ----------------------------------------------------------------------
def random_node_drop(graph: Graph, ratio: float,
                     rng: np.random.Generator) -> Graph:
    """Drop a uniformly random ``ratio`` fraction of nodes."""
    n = graph.num_nodes
    num_drop = int(np.clip(round(ratio * n), 0, n - 1))
    return phi_node_drop(graph, num_drop, np.ones(n), rng)


def random_edge_perturb(graph: Graph, ratio: float,
                        rng: np.random.Generator) -> Graph:
    """Remove a ``ratio`` fraction of undirected edges and add as many new."""
    pairs = graph.edge_index.T
    undirected = pairs[pairs[:, 0] < pairs[:, 1]]
    m = len(undirected)
    if m == 0:
        return graph.copy()
    num_change = int(round(ratio * m))
    keep_mask = np.ones(m, dtype=bool)
    if num_change:
        keep_mask[rng.choice(m, size=num_change, replace=False)] = False
    kept = undirected[keep_mask]
    existing = {frozenset(e) for e in kept.tolist()}
    added = []
    attempts = 0
    n = graph.num_nodes
    while len(added) < num_change and attempts < 20 * max(num_change, 1):
        attempts += 1
        u, v = int(rng.integers(n)), int(rng.integers(n))
        if u == v or frozenset((u, v)) in existing:
            continue
        existing.add(frozenset((u, v)))
        added.append((u, v))
    all_edges = np.concatenate(
        [kept, np.array(added, dtype=np.int64).reshape(-1, 2)], axis=0)
    both = np.concatenate([all_edges, all_edges[:, ::-1]], axis=0).T
    return Graph(graph.x.copy(), both, graph.y, dict(graph.meta))


def attribute_mask(graph: Graph, ratio: float,
                   rng: np.random.Generator) -> Graph:
    """Zero out the features of a random ``ratio`` fraction of nodes."""
    n = graph.num_nodes
    num_mask = int(round(ratio * n))
    x = graph.x.copy()
    if num_mask:
        masked = rng.choice(n, size=min(num_mask, n), replace=False)
        x[masked] = 0.0
    return Graph(x, graph.edge_index.copy(), graph.y, dict(graph.meta))


def random_subgraph(graph: Graph, ratio: float,
                    rng: np.random.Generator) -> Graph:
    """Random-walk-induced subgraph after dropping a ``ratio`` fraction.

    ``ratio`` is the GraphCL *drop* ratio shared by all four perturbations
    (``node_drop`` drops ``ratio·|V|`` nodes, ``edge_perturb`` rewires
    ``ratio·|E|`` edges, ``attr_mask`` masks ``ratio·|V|`` rows), so the
    view keeps ``max(1, round((1−ratio)·|V|))`` nodes grown breadth-first
    from a uniformly random seed node — GraphCL's released ``subgraph``
    does the same (``sub_num = (1 − aug_ratio)·|V|``). On disconnected
    graphs the walk cannot leave the seed's component, so the view may end
    up smaller than the target.
    """
    n = graph.num_nodes
    target = max(1, int(round((1.0 - ratio) * n)))
    neighbours: dict[int, list[int]] = {}
    for u, v in graph.edge_index.T:
        neighbours.setdefault(int(u), []).append(int(v))
    visited = {int(rng.integers(n))}
    frontier = list(visited)
    while len(visited) < target and frontier:
        node = frontier.pop(int(rng.integers(len(frontier))))
        for neighbour in neighbours.get(node, []):
            if neighbour not in visited:
                visited.add(neighbour)
                frontier.append(neighbour)
                if len(visited) >= target:
                    break
    return graph.subgraph(np.sort(np.fromiter(visited, dtype=np.int64)))


GRAPHCL_AUGMENTATIONS = {
    "node_drop": random_node_drop,
    "edge_perturb": random_edge_perturb,
    "attr_mask": attribute_mask,
    "subgraph": random_subgraph,
}
