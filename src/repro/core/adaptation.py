"""Generator domain adaptation — the paper's stated future work (§VI.B).

The paper observes that SGCL under-performs on CLINTOX because "the
Lipschitz constants generator trained by ZINC15 may not precisely capture
the semantic information in the CLINTOX dataset" and calls for research on
out-of-distribution recalibration. This module implements the natural
remedy: before fine-tuning on a downstream dataset, continue training the
*generator tower only* (f_q + its edge-probability weight) on the
downstream graphs with the same graph-likelihood objective — the
representation tower f_k stays frozen, so the pre-trained knowledge being
transferred is untouched while the semantic scorer recalibrates to the new
domain.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data import DataLoader
from ..graph import Graph
from ..nn import Adam
from .losses import graph_likelihood_loss
from .model import SGCLModel

__all__ = ["adapt_generator"]


def adapt_generator(model: SGCLModel, graphs: Sequence[Graph], *,
                    epochs: int = 3, lr: float = 1e-3, batch_size: int = 64,
                    seed: int = 0) -> list[float]:
    """Recalibrate the Lipschitz generator on a new (downstream) domain.

    Only ``f_q`` and the edge-probability weight receive updates;
    ``f_k``, the projection head and the augmentation-probability head are
    untouched. Returns the per-epoch mean likelihood losses.

    Example
    -------
    >>> trainer.pretrain(zinc.graphs)                    # source domain
    >>> adapt_generator(trainer.model, clintox.graphs)   # recalibrate f_q
    >>> finetune_multitask(trainer.encoder, clintox, splits, rng=rng)
    """
    root = np.random.default_rng(seed)
    shuffle_rng = np.random.default_rng(root.integers(2 ** 63))
    negative_rng = np.random.default_rng(root.integers(2 ** 63))
    parameters = model.generator.encoder.parameters() + [model.edge_weight]
    optimizer = Adam(parameters, lr=lr)
    history: list[float] = []
    for _ in range(epochs):
        losses = []
        loader = DataLoader(graphs, batch_size, shuffle=True,
                            rng=shuffle_rng)
        for batch in loader:
            reps = model.generator.node_representations(batch)
            degrees = np.bincount(batch.edge_index[0],
                                  minlength=batch.num_nodes).astype(float) \
                if batch.num_edges else np.zeros(batch.num_nodes)
            loss = graph_likelihood_loss(reps, batch.edge_index, degrees,
                                         model.edge_weight, negative_rng)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            losses.append(loss.item())
        history.append(float(np.mean(losses)) if losses else 0.0)
    return history
