"""Analysis utilities for contrastive representations and augmentations.

Three groups of diagnostics used throughout the benches, tests and the
EXPERIMENTS write-up:

* **Semantic identification** — how well per-node scores (Lipschitz
  constants, RGCL probabilities, …) rank planted semantic nodes above
  background ones. This quantifies Fig. 7.
* **Alignment / uniformity** (Wang & Isola, 2020 — the paper's [48]): the
  two quantities the complement loss is argued to improve: positive pairs
  should be aligned, the embedding distribution should be uniform on the
  sphere.
* **View label consistency** — Theorem 1's observable: a good augmentation
  keeps the (downstream-probed) label distribution of views close to the
  anchors'.
"""

from __future__ import annotations

import numpy as np

from ..eval.metrics import roc_auc
from ..eval.linear_model import LogisticRegression
from ..graph import Batch, Graph
from ..nn import l2_normalize
from ..tensor import Tensor, no_grad

__all__ = [
    "semantic_identification_auc",
    "alignment",
    "uniformity",
    "alignment_uniformity",
    "view_label_consistency",
]


def semantic_identification_auc(score_fn, graphs: list[Graph],
                                max_graphs: int | None = None) -> float:
    """Mean ROC-AUC of per-node scores against planted semantic masks.

    Parameters
    ----------
    score_fn:
        ``graph -> ndarray`` of per-node scores (higher = more semantic).
        For a Lipschitz generator pass e.g.
        ``lambda g: generator.node_constants(Batch([g])).data``.
    graphs:
        Graphs whose ``meta["semantic_nodes"]`` is the ground truth; graphs
        with all-semantic or no-semantic nodes are skipped.
    """
    aucs = []
    for graph in graphs[:max_graphs]:
        truth = np.asarray(graph.meta["semantic_nodes"]).astype(int)
        if not 0 < truth.sum() < len(truth):
            continue
        with no_grad():
            scores = np.asarray(score_fn(graph), dtype=float)
        if scores.shape != truth.shape:
            raise ValueError("score_fn must return one score per node")
        aucs.append(roc_auc(truth, scores))
    if not aucs:
        return float("nan")
    return float(np.mean(aucs))


def alignment(anchor_embeddings: np.ndarray, view_embeddings: np.ndarray,
              alpha: float = 2.0) -> float:
    """Wang–Isola alignment: ``E ‖z − z⁺‖^α`` over normalised positives.

    Lower is better (positive pairs close together).
    """
    a = _normalise(anchor_embeddings)
    b = _normalise(view_embeddings)
    if a.shape != b.shape:
        raise ValueError("anchor/view embedding shapes must match")
    return float((np.linalg.norm(a - b, axis=1) ** alpha).mean())


def uniformity(embeddings: np.ndarray, t: float = 2.0) -> float:
    """Wang–Isola uniformity: ``log E exp(−t ‖z_i − z_j‖²)`` over pairs.

    Lower (more negative) is better (embeddings spread over the sphere).
    """
    z = _normalise(embeddings)
    n = len(z)
    if n < 2:
        raise ValueError("uniformity needs at least 2 embeddings")
    squared = ((z[:, None, :] - z[None, :, :]) ** 2).sum(axis=-1)
    mask = ~np.eye(n, dtype=bool)
    return float(np.log(np.exp(-t * squared[mask]).mean()))


def alignment_uniformity(anchor_embeddings: np.ndarray,
                         view_embeddings: np.ndarray) -> dict[str, float]:
    """Both diagnostics at once (the paper's [48] analysis)."""
    return {
        "alignment": alignment(anchor_embeddings, view_embeddings),
        "uniformity": uniformity(anchor_embeddings),
    }


def view_label_consistency(encoder, graphs: list[Graph],
                           views: list[Graph], labels: np.ndarray,
                           train_fraction: float = 0.7,
                           seed: int = 0) -> float:
    """Fraction of views classified as their anchor's label.

    A linear probe is fitted on the anchors' pooled embeddings, then applied
    to the views. High consistency means the augmentation preserved the
    discriminative semantics — the quantity Theorem 1 bounds via
    |CE(Y, G) − CE(Y, Ĝ)|.
    """
    if len(graphs) != len(views):
        raise ValueError("need one view per anchor graph")
    labels = np.asarray(labels)
    with no_grad():
        anchor_z = encoder.graph_representations(Batch(graphs)).data
        view_z = encoder.graph_representations(Batch(views)).data
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(graphs))
    cut = max(2, int(train_fraction * len(graphs)))
    train_idx = order[:cut]
    probe = LogisticRegression(C=1.0)
    probe.fit(anchor_z[train_idx], labels[train_idx])
    predictions = probe.predict(view_z)
    return float((predictions == labels).mean())


def _normalise(embeddings: np.ndarray) -> np.ndarray:
    z = np.asarray(embeddings, dtype=float)
    return l2_normalize(Tensor(z)).data
