"""Contrastive objectives (paper §IV.D, Eq. 24–27).

Similarities are cosine (unit-normalised dot products) divided by the
temperature τ, as in the released GraphCL/RGCL implementations the paper
builds on.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module, l2_normalize
from ..tensor import Tensor

__all__ = ["semantic_info_nce", "complement_loss", "weight_regularizer",
           "graph_likelihood_loss", "sample_negative_pairs"]


def sample_negative_pairs(n: int, num: int, edge_index: np.ndarray,
                          rng: np.random.Generator, *, max_rounds: int = 100
                          ) -> tuple[np.ndarray, np.ndarray]:
    """``num`` uniformly sampled node pairs that are true non-edges.

    Self-pairs and observed edges are rejected and resampled from the
    provided ``rng`` (bounded rounds, fully deterministic given the rng
    state). On near-complete graphs the pool of non-edges can be smaller
    than ``num`` — any slot still invalid after ``max_rounds`` is dropped,
    so the returned arrays may be shorter than requested (possibly empty
    for complete graphs).
    """
    observed = np.unique(edge_index[0].astype(np.int64) * n + edge_index[1])
    src = rng.integers(n, size=num)
    dst = rng.integers(n, size=num)
    for _ in range(max_rounds):
        invalid = (src == dst) | np.isin(src * n + dst, observed)
        if not invalid.any():
            break
        resample = int(invalid.sum())
        src[invalid] = rng.integers(n, size=resample)
        dst[invalid] = rng.integers(n, size=resample)
    valid = (src != dst) & ~np.isin(src * n + dst, observed)
    return src[valid], dst[valid]


def graph_likelihood_loss(reps: Tensor, edge_index: np.ndarray,
                          degrees: np.ndarray, edge_weight: Tensor,
                          rng: np.random.Generator) -> Tensor:
    """Negative log graph probability under the paper's edge model (Eq. 2–3).

    ``P(e_ij) = δ((h_i/d_i + h_j/d_j)·w)`` for observed edges; an equal
    number of uniformly sampled *true* non-edges act as negatives (the
    standard contrastive estimate of the likelihood — without them the
    model could satisfy Eq. 3 by scoring *every* pair as an edge).
    Negatives are drawn by :func:`sample_negative_pairs`, which rejects
    self-pairs and observed edges — naive uniform pairs would label real
    edges as negatives and bias the generator objective. This is the
    generator tower's training signal.
    """
    from ..tensor import concatenate, gather

    num_edges = edge_index.shape[1]
    n = len(reps)
    if num_edges == 0 or n < 2:
        return Tensor(0.0)
    deg = Tensor(np.maximum(degrees, 1.0).reshape(n, 1))
    scaled = reps / deg
    src, dst = edge_index
    positive_logits = (gather(scaled, src) + gather(scaled, dst)) @ edge_weight
    neg_src, neg_dst = sample_negative_pairs(n, num_edges, edge_index, rng)
    if len(neg_src):
        negative_logits = (gather(scaled, neg_src)
                           + gather(scaled, neg_dst)) @ edge_weight
        logits = concatenate([positive_logits, negative_logits], axis=0)
        targets = np.concatenate([np.ones(num_edges),
                                  np.zeros(len(neg_src))])
    else:  # complete graph: no non-edges exist, fit the positives alone
        logits = positive_logits
        targets = np.ones(num_edges)
    # Stable BCE with logits: softplus(x) − x·y.
    return (logits.softplus() - logits * Tensor(targets)).mean()


def semantic_info_nce(z_anchor: Tensor, z_view: Tensor, tau: float) -> Tensor:
    """Semantic-aware loss ``L_s`` (Eq. 24), averaged over the batch.

    ``L_s(G_i) = −log [ exp(s_ii/τ) / Σ_{j≠i} exp(s_ij/τ) ]`` where ``s_ij``
    is the similarity between anchor ``G_i`` and view ``Ĝ_j``. The positive
    pair is excluded from the denominator, exactly as written in Eq. 24 (and
    as GraphCL's released code does).
    """
    n = len(z_anchor)
    if n < 2:
        raise ValueError("InfoNCE needs at least 2 graphs per batch")
    sims = (l2_normalize(z_anchor) @ l2_normalize(z_view).T) * (1.0 / tau)
    eye = np.eye(n, dtype=bool)
    positives = sims[(np.arange(n), np.arange(n))]
    # log Σ_{j≠i} exp(s_ij): mask the diagonal with -inf-ish shift.
    masked = sims + Tensor(np.where(eye, -1e9, 0.0))
    row_max = Tensor(masked.data.max(axis=1, keepdims=True))
    log_denominator = ((masked - row_max).exp().sum(axis=1)).log() \
        + row_max.reshape(n)
    return (log_denominator - positives).mean()


def complement_loss(z_anchor: Tensor, z_view: Tensor,
                    z_complement: Tensor, tau: float) -> Tensor:
    """Complement loss ``L_c`` (Eq. 25), averaged over the batch.

    The non-semantic complement samples ``Ĝ^c`` act as extra negatives:
    ``L_c(G_i) = −log [ exp(s_ii/τ) / (exp(s_ii/τ) + Σ_c exp(sim(G_i, Ĝ^c)/τ)) ]``.
    """
    n = len(z_anchor)
    anchors = l2_normalize(z_anchor)
    positives = ((anchors * l2_normalize(z_view)).sum(axis=1)) * (1.0 / tau)
    negative_sims = (anchors @ l2_normalize(z_complement).T) * (1.0 / tau)
    # log(exp(pos) + Σ exp(neg)) via a stable logsumexp over [pos | negs].
    stacked = Tensor(np.concatenate(
        [positives.data[:, None], negative_sims.data], axis=1))
    row_max = stacked.data.max(axis=1, keepdims=True)
    # Rebuild differentiably: exp(pos − m) + Σ exp(neg − m).
    m = Tensor(row_max.reshape(n))
    denominator = (positives - m).exp() \
        + (negative_sims - Tensor(row_max)).exp().sum(axis=1)
    log_denominator = denominator.log() + m
    return (log_denominator - positives).mean()


def weight_regularizer(module: Module) -> Tensor:
    """``Θ_W = ‖W‖`` (Eq. 26): L2 norm over all trainable parameters."""
    return module.weight_norm()
