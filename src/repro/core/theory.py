"""Empirical verification of the paper's theory (§V, Theorem 1).

Theorem 1 bounds the cross-entropy gap between an anchor set and its
augmented set:

    |CE(Y_G, G) − CE(Y_G, Ĝ)| ≤ K_G · N · (1 + K_ρ) · ε‖A‖_∞ · ‖W‖

with ``K_G = sup_G D_R/D_T`` (Definition 5), ``ε‖A‖_∞ = max_G D_T``
(Lemma 4), ``K_ρ ≤ 1`` (Lemma 2) and ``W`` the edge-probability weights of
Eq. 2. This module computes every quantity so tests and benches can check
the inequality on real (synthetic) graphs and augmentations.

The cross-entropy here is the graph-probability CE of the proof (Eq. 2–3):
``CE = −Σ_G log P(G|H)`` with ``P(G|H) = Π_{(i,j)∈E} δ((h_i/d_i + h_j/d_j)·w)``
— *not* the downstream classification CE.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from ..gnn import GNNEncoder
from ..tensor import Tensor, no_grad

__all__ = [
    "representation_distance",
    "graph_log_probability",
    "lipschitz_constant_of_set",
    "theorem1_bound",
    "K_RHO",
]

# Lemma 2: ρ(x) = log(e^x + 1) has derivative e^x/(e^x+1) ∈ (0, 1).
K_RHO = 1.0


def _node_representations(encoder: GNNEncoder, graph: Graph,
                          node_mask: np.ndarray | None = None) -> np.ndarray:
    """Encoder node reps; ``node_mask`` applies the Eq. 14 mask mechanism."""
    weight = None if node_mask is None else Tensor(node_mask.astype(float))
    encoder.eval()
    with no_grad():
        reps = encoder.node_representations(
            Tensor(graph.x), graph.edge_index, graph.num_nodes,
            node_weight=weight)
    encoder.train()
    return reps.data


def representation_distance(encoder: GNNEncoder, graph: Graph,
                            kept_nodes: np.ndarray) -> float:
    """``D_R(G, Ĝ)`` (Eq. 6) with aligned node sets via masking.

    ``Ĝ`` is the view that keeps ``kept_nodes``; masking reproduces its
    representations inside the anchor's node indexing so the Frobenius
    distance is well defined.
    """
    mask = np.zeros(graph.num_nodes)
    mask[kept_nodes] = 1.0
    anchor = _node_representations(encoder, graph)
    view = _node_representations(encoder, graph, node_mask=mask)
    return float(np.linalg.norm(anchor - view))


def topology_distance_of_view(graph: Graph, kept_nodes: np.ndarray) -> float:
    """``D_T(G, Ĝ) = ‖A − Â‖_F`` (Eq. 5) for a node-drop view."""
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[kept_nodes] = True
    src, dst = graph.edge_index
    removed = int((~(mask[src] & mask[dst])).sum())
    return float(np.sqrt(removed))


def lipschitz_constant_of_set(encoder: GNNEncoder, graphs: list[Graph],
                              kept_per_graph: list[np.ndarray]
                              ) -> tuple[float, float]:
    """``(K_G, ε‖A‖_∞)`` over a graph set and its views (Definition 5, Lemma 4)."""
    ratios, topologies = [], []
    for graph, kept in zip(graphs, kept_per_graph):
        d_t = topology_distance_of_view(graph, kept)
        if d_t == 0.0:
            continue
        d_r = representation_distance(encoder, graph, kept)
        ratios.append(d_r / d_t)
        topologies.append(d_t)
    if not ratios:
        return 0.0, 0.0
    return float(max(ratios)), float(max(topologies))


def graph_log_probability(reps: np.ndarray, edge_index: np.ndarray,
                          w: np.ndarray) -> float:
    """``log P(G|H^{(l)})`` under Eq. 2–3 with shared edge weight ``w``.

    ``log δ(q) = q − log(e^q + 1)`` — the decomposition the proof uses.
    """
    if edge_index.shape[1] == 0:
        return 0.0
    degrees = np.maximum(
        np.bincount(edge_index[0], minlength=len(reps)), 1.0)
    src, dst = edge_index
    q = ((reps[src] / degrees[src, None]
          + reps[dst] / degrees[dst, None]) @ w)
    return float((q - np.logaddexp(0.0, q)).sum())


def theorem1_bound(encoder: GNNEncoder, graphs: list[Graph],
                   kept_per_graph: list[np.ndarray],
                   w: np.ndarray) -> dict[str, float]:
    """Compute both sides of Theorem 1 for a set of node-drop views.

    Returns a dict with ``ce_gap`` (LHS), ``bound`` (RHS) and the
    intermediate quantities. Tests assert ``ce_gap ≤ bound``.
    """
    k_g, eps_a = lipschitz_constant_of_set(encoder, graphs, kept_per_graph)
    gap = 0.0
    for graph, kept in zip(graphs, kept_per_graph):
        mask = np.zeros(graph.num_nodes)
        mask[kept] = 1.0
        anchor_reps = _node_representations(encoder, graph)
        view_reps = _node_representations(encoder, graph, node_mask=mask)
        src, dst = graph.edge_index
        keep_mask = (mask[src] > 0) & (mask[dst] > 0)
        view_edges = graph.edge_index[:, keep_mask]
        gap += (graph_log_probability(anchor_reps, graph.edge_index, w)
                - graph_log_probability(view_reps, view_edges, w))
    ce_gap = abs(gap)
    w_norm = float(np.linalg.norm(w))
    n = len(graphs)
    bound = k_g * n * (1.0 + K_RHO) * eps_a * w_norm
    return {
        "ce_gap": ce_gap,
        "bound": bound,
        "K_G": k_g,
        "eps_A_inf": eps_a,
        "W_norm": w_norm,
        "N": float(n),
        "K_rho": K_RHO,
    }
