"""Versioned model checkpoints: one ``.npz`` bundle + JSON header.

A checkpoint freezes everything needed to serve — or resume training — a
pre-trained model:

* ``model/<key>`` — the module's full :meth:`Module.state_dict` (parameters
  and buffers such as BatchNorm running statistics);
* ``encoder/<key>`` — the downstream encoder's state, stored separately so a
  serving process can rebuild just the encoder without knowing the training
  module's attribute layout;
* ``optimizer/<key>`` — optimiser slot variables (Adam moments / SGD
  velocities), for bit-exact training resume;
* ``__header__`` — JSON metadata: schema version, library version,
  creation time, input feature dimension, the encoder's architecture spec,
  the :class:`SGCLConfig` (when saving SGCL), optional RNG stream states and
  free-form user metadata.

Loads validate the schema version and, on :meth:`Checkpoint.restore`, the
input feature dimension, so stale or mismatched bundles fail loudly instead
of producing garbage embeddings. Writes go through :func:`atomic_write`
(temp file + rename), so concurrent benchmark runs can never observe a
truncated bundle.

Every bundle additionally embeds a **sha256 checksum** of its array
payload in the header; :func:`load_checkpoint` recomputes and compares it
(raising :class:`CheckpointIntegrityError` on mismatch), and
:func:`verify_checkpoint` turns any corruption — truncation, bit flips,
an unreadable archive — into a boolean for checkpoint discovery
(:func:`repro.resilience.find_latest_checkpoint`), which skips invalid
files instead of dying mid-resume. Bundles from before the checksum era
load unchanged (no checksum → nothing to compare).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import time
from pathlib import Path

import numpy as np

from .. import __version__
from ..core.config import SGCLConfig
from ..data.io import atomic_write
from ..gnn import GNNEncoder
from ..nn import Module, Optimizer

__all__ = [
    "SCHEMA_VERSION",
    "Checkpoint",
    "CheckpointIntegrityError",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_header",
    "verify_checkpoint",
    "load_trainer",
]

SCHEMA_VERSION = 1

_GROUPS = ("model", "encoder", "optimizer")


class CheckpointIntegrityError(ValueError):
    """A checkpoint's array payload does not match its stored checksum."""


def _arrays_checksum(arrays: dict[str, np.ndarray]) -> str:
    """sha256 over the array payload (key, dtype, shape, bytes; sorted).

    Stable across save/load because ``.npz`` round-trips dtype and shape
    exactly; the ``__header__`` entry is excluded so the checksum can be
    stored inside it.
    """
    digest = hashlib.sha256()
    for key in sorted(arrays):
        if key == "__header__":
            continue
        value = np.ascontiguousarray(arrays[key])
        digest.update(key.encode())
        digest.update(str(value.dtype).encode())
        digest.update(str(value.shape).encode())
        digest.update(value.tobytes())
    return digest.hexdigest()


def _find_encoder(model: Module) -> GNNEncoder | None:
    if isinstance(model, GNNEncoder):
        return model
    encoder = getattr(model, "encoder", None)
    return encoder if isinstance(encoder, GNNEncoder) else None


def save_checkpoint(path: str | Path, model: Module, *,
                    config: SGCLConfig | dict | None = None,
                    optimizer: Optimizer | None = None,
                    metadata: dict | None = None,
                    rng_state: dict | None = None) -> Path:
    """Write ``model`` (and friends) to ``path`` (``.npz`` appended if missing).

    Parameters
    ----------
    model:
        Any :class:`Module` — an :class:`SGCLModel`, a baseline pretrainer or
        a bare :class:`GNNEncoder`. If the module is (or exposes via
        ``.encoder``) a :class:`GNNEncoder`, its architecture spec and state
        are stored so :meth:`Checkpoint.build_encoder` can serve it.
    config:
        Hyper-parameter dataclass (or plain dict) stored in the header;
        required later by :func:`load_trainer`.
    optimizer:
        Optimiser whose slot variables should be bundled for training resume.
    metadata:
        Free-form JSON-encodable dict (method name, dataset, history, …).
    rng_state:
        JSON-encodable RNG stream states (``Generator.bit_generator.state``)
        for deterministic resume; trainers pass this automatically.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    encoder = _find_encoder(model)
    arrays: dict[str, np.ndarray] = {}
    for key, value in model.state_dict().items():
        arrays[f"model/{key}"] = value
    if encoder is not None:
        for key, value in encoder.state_dict().items():
            arrays[f"encoder/{key}"] = value
    if optimizer is not None:
        for key, value in optimizer.state_dict().items():
            arrays[f"optimizer/{key}"] = value
    if dataclasses.is_dataclass(config):
        config = dataclasses.asdict(config)
    header = {
        "checksum": _arrays_checksum(arrays),
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "model_class": type(model).__name__,
        "in_dim": None if encoder is None else encoder.in_dim,
        "encoder_spec": None if encoder is None else encoder.spec(),
        "config": config,
        "optimizer_class": None if optimizer is None
        else type(optimizer).__name__,
        "rng_state": rng_state,
        "metadata": metadata or {},
    }
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8)
    with atomic_write(path, suffix=".npz") as tmp:
        np.savez_compressed(tmp, **arrays)
    return path


def _validated_header(archive) -> dict:
    header = json.loads(bytes(archive["__header__"]).decode())
    version = header.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported checkpoint schema version {version!r} "
            f"(this build reads version {SCHEMA_VERSION})")
    return header


def read_checkpoint_header(path: str | Path) -> dict:
    """Read and validate just the JSON header (cheap; arrays untouched)."""
    with np.load(Path(path), allow_pickle=False) as archive:
        return _validated_header(archive)


def load_checkpoint(path: str | Path) -> "Checkpoint":
    """Load a bundle written by :func:`save_checkpoint`.

    When the header carries a checksum (every bundle written since the
    field was introduced), the array payload is re-hashed and compared —
    a truncated or bit-flipped bundle raises
    :class:`CheckpointIntegrityError` here instead of producing silently
    wrong parameters downstream.
    """
    groups: dict[str, dict[str, np.ndarray]] = {g: {} for g in _GROUPS}
    arrays: dict[str, np.ndarray] = {}
    with np.load(Path(path), allow_pickle=False) as archive:
        header = _validated_header(archive)
        for key in archive.files:
            if key == "__header__":
                continue
            group, _, name = key.partition("/")
            if group not in groups or not name:
                raise ValueError(f"malformed checkpoint entry {key!r}")
            groups[group][name] = arrays[key] = archive[key]
    expected = header.get("checksum")
    if expected is not None and _arrays_checksum(arrays) != expected:
        raise CheckpointIntegrityError(
            f"checkpoint {path} failed its sha256 integrity check; "
            "the file is corrupt (truncated write or bit rot)")
    return Checkpoint(header, groups["model"], groups["encoder"],
                      groups["optimizer"])


def verify_checkpoint(path: str | Path) -> bool:
    """Whether ``path`` is a fully readable, checksum-valid bundle.

    Any failure mode — missing file, truncated archive, malformed header,
    wrong schema version, checksum mismatch — returns False rather than
    raising, so checkpoint discovery can skip damaged files and fall back
    to an older valid one.
    """
    try:
        load_checkpoint(path)
    except Exception:  # noqa: BLE001 — every failure means "not usable"
        return False
    return True


class Checkpoint:
    """A loaded checkpoint: header metadata plus the three array groups."""

    def __init__(self, header: dict, model_state: dict[str, np.ndarray],
                 encoder_state: dict[str, np.ndarray],
                 optimizer_state: dict[str, np.ndarray]):
        self.header = header
        self.model_state = model_state
        self.encoder_state = encoder_state
        self.optimizer_state = optimizer_state

    # ------------------------------------------------------------------
    @property
    def schema_version(self) -> int:
        return self.header["schema_version"]

    @property
    def repro_version(self) -> str:
        return self.header["repro_version"]

    @property
    def model_class(self) -> str:
        return self.header["model_class"]

    @property
    def in_dim(self) -> int | None:
        return self.header["in_dim"]

    @property
    def encoder_spec(self) -> dict | None:
        return self.header["encoder_spec"]

    @property
    def config(self) -> SGCLConfig | None:
        """The stored hyper-parameters as an :class:`SGCLConfig` (or None)."""
        raw = self.header["config"]
        return None if raw is None else SGCLConfig(**raw)

    @property
    def rng_state(self) -> dict | None:
        return self.header["rng_state"]

    @property
    def metadata(self) -> dict:
        return self.header["metadata"]

    def __repr__(self) -> str:
        return (f"Checkpoint(model_class={self.model_class!r}, "
                f"in_dim={self.in_dim}, "
                f"repro_version={self.repro_version!r})")

    # ------------------------------------------------------------------
    def restore(self, model: Module,
                optimizer: Optimizer | None = None) -> Module:
        """Load the stored state into ``model`` (and ``optimizer``) in place.

        Validates the input feature dimension against the target model's
        encoder before touching any parameter, so a checkpoint trained on a
        different feature space fails atomically.
        """
        target = _find_encoder(model)
        if (self.in_dim is not None and target is not None
                and target.in_dim != self.in_dim):
            raise ValueError(
                f"checkpoint was trained with in_dim={self.in_dim}; "
                f"target model has in_dim={target.in_dim}")
        model.load_state_dict(self.model_state)
        if optimizer is not None:
            if not self.optimizer_state:
                raise ValueError("checkpoint carries no optimizer state")
            optimizer.load_state_dict(self.optimizer_state)
        return model

    def build_encoder(self, *,
                      rng: np.random.Generator | None = None) -> GNNEncoder:
        """Reconstruct the downstream encoder from its stored spec + state."""
        if self.encoder_spec is None:
            raise ValueError(
                "checkpoint has no encoder spec; it was saved from a module "
                "without a GNNEncoder")
        encoder = GNNEncoder.from_spec(self.encoder_spec, rng=rng)
        encoder.load_state_dict(self.encoder_state)
        return encoder


def load_trainer(path: str | Path):
    """Rebuild a full :class:`SGCLTrainer` (model + optimiser + RNG streams).

    Requires a checkpoint written by :meth:`SGCLTrainer.save_checkpoint`
    (i.e. one carrying an :class:`SGCLConfig`); resumed pre-training is
    bit-identical to never having stopped.
    """
    from ..core.trainer import SGCLTrainer

    return SGCLTrainer.from_checkpoint(path)
