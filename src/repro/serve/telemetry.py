"""Serving telemetry — a thin shim over :class:`repro.obs.MetricsRegistry`.

Historically the serving layer had its own counters/reservoir implementation;
that code now lives in the shared observability core (``repro.obs.metrics``)
where training, evaluation and benchmarks record into the same substrate.
:class:`Telemetry` survives as the serving-facing name so existing callers
(:class:`EmbeddingService`, the ``embed --stats`` CLI) and their tests are
unchanged: same constructor, same ``increment / observe / timer /
percentile / summary / snapshot / reset`` surface, same snapshot shape.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry

__all__ = ["Telemetry"]


class Telemetry(MetricsRegistry):
    """Named counters and bounded observation series (serving shim).

    Parameters
    ----------
    max_samples:
        Per-series reservoir size (see :class:`MetricsRegistry`).
    """

    def snapshot(self, *, samples: bool = False) -> dict:
        """All counters plus a summary of every observation series.

        The serving snapshot predates gauges; it keeps its original
        two-key shape (``counters`` / ``series``) for schema stability.
        ``samples=True`` adds the raw reservoirs (see
        :meth:`MetricsRegistry.snapshot`) for fleet-wide merging.
        """
        full = super().snapshot(samples=samples)
        payload = {"counters": full["counters"], "series": full["series"]}
        if samples:
            payload["samples"] = full["samples"]
        return payload
