"""Lightweight serving telemetry: counters and latency/size recorders.

The serving layer needs just enough observability to answer "is the cache
working and how slow is a request" — monotonically increasing counters plus
bounded reservoirs of recent observations with percentile summaries. No
external dependencies, no background threads; everything is synchronous and
costs a dict lookup per event.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager

import numpy as np

__all__ = ["Telemetry"]


class Telemetry:
    """Named counters and bounded observation series.

    Parameters
    ----------
    max_samples:
        Per-series reservoir size. Old observations fall off the front, so
        percentiles reflect recent behaviour and memory stays bounded no
        matter how long the service runs.
    """

    def __init__(self, max_samples: int = 2048):
        self.max_samples = max_samples
        self._counters: dict[str, float] = {}
        self._series: dict[str, deque] = {}

    # ------------------------------------------------------------------
    def increment(self, name: str, by: float = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + by

    def count(self, name: str) -> float:
        return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record one observation (a latency, a batch size, …)."""
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = deque(maxlen=self.max_samples)
        series.append(float(value))

    @contextmanager
    def timer(self, name: str):
        """Time the enclosed block; observes elapsed seconds under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    # ------------------------------------------------------------------
    def percentile(self, name: str, q: float) -> float:
        """q-th percentile (0–100) of the recorded series; NaN if empty."""
        series = self._series.get(name)
        if not series:
            return float("nan")
        return float(np.percentile(np.fromiter(series, dtype=float), q))

    def summary(self, name: str) -> dict[str, float]:
        """count / mean / p50 / p95 / max of one series (NaNs if empty)."""
        series = self._series.get(name)
        if not series:
            return {"count": 0, "mean": float("nan"), "p50": float("nan"),
                    "p95": float("nan"), "max": float("nan")}
        values = np.fromiter(series, dtype=float)
        return {
            "count": len(values),
            "mean": float(values.mean()),
            "p50": float(np.percentile(values, 50)),
            "p95": float(np.percentile(values, 95)),
            "max": float(values.max()),
        }

    def snapshot(self) -> dict:
        """All counters plus a summary of every observation series."""
        return {
            "counters": dict(self._counters),
            "series": {name: self.summary(name) for name in self._series},
        }

    def reset(self) -> None:
        self._counters.clear()
        self._series.clear()
