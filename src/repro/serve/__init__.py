"""Serving subsystem: checkpoints, cached embedding inference, registry.

Turns a pre-trained encoder into a long-lived artifact and a service:
``save_checkpoint``/``load_checkpoint`` persist model + config + optimizer
state to a versioned ``.npz`` bundle; :class:`EmbeddingService` answers
``embed(graphs)`` through a content-addressed LRU cache and a micro-batching
queue; :class:`ModelRegistry` names several checkpoints under one directory;
:class:`Telemetry` measures all of it (hit rates, batch sizes, latency
percentiles via ``service.stats()``) — it is a shim over the shared
:class:`repro.obs.MetricsRegistry`, so serving metrics land in the same
substrate as training telemetry.
"""

from .checkpoint import (
    SCHEMA_VERSION,
    Checkpoint,
    CheckpointIntegrityError,
    load_checkpoint,
    load_trainer,
    read_checkpoint_header,
    save_checkpoint,
    verify_checkpoint,
)
from .registry import ModelRegistry
from .service import EmbeddingService, PendingEmbedding, graph_digest
from .telemetry import Telemetry

__all__ = [
    "SCHEMA_VERSION",
    "Checkpoint",
    "CheckpointIntegrityError",
    "save_checkpoint",
    "load_checkpoint",
    "read_checkpoint_header",
    "verify_checkpoint",
    "load_trainer",
    "EmbeddingService",
    "PendingEmbedding",
    "graph_digest",
    "ModelRegistry",
    "Telemetry",
]
