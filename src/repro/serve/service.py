"""Cached, micro-batched embedding inference over a frozen encoder.

:class:`EmbeddingService` is the serving counterpart of
:func:`repro.eval.embed_dataset`: it owns a pre-trained encoder in eval mode
and answers ``embed(graphs)`` requests through

* a **content-addressed LRU cache** — graphs are keyed by a digest of their
  structure and features (:func:`graph_digest`), so identical graphs are
  embedded exactly once per cache lifetime regardless of which request or
  dataset object they arrive in; and
* a **micro-batching queue** — single-graph :meth:`submit` requests coalesce
  into one disjoint-union batch (this substrate's :class:`Batch` replaces
  padding) that runs the encoder hot path once per ``max_batch_size`` graphs
  instead of once per request.

Cached rows are stored read-only and every result is a fresh copy, so a
caller mutating a returned array can never poison later responses. All
traffic is measured by a :class:`Telemetry` instance exposed via
:meth:`stats` (cache hit rate, encoder batch sizes, latency percentiles).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Iterable

import numpy as np

from ..gnn import GNNEncoder
from ..graph import Batch, Graph
from ..obs import current
from ..obs.metrics import MetricsRegistry
from ..tensor import no_grad
from .telemetry import Telemetry

__all__ = ["EmbeddingService", "PendingEmbedding", "graph_digest"]


def graph_digest(graph: Graph) -> str:
    """Content hash of a graph's structure + features (labels excluded).

    Two graphs with identical ``x`` and ``edge_index`` arrays share a digest,
    so embeddings — which depend only on structure and features — can be
    cached across datasets, folds and requests.
    """
    digest = hashlib.sha256()
    for tag, array in ((b"x", graph.x), (b"e", graph.edge_index)):
        digest.update(tag)
        digest.update(str(array.shape).encode())
        digest.update(str(array.dtype).encode())
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


class PendingEmbedding:
    """Handle for a :meth:`EmbeddingService.submit` request.

    ``result()`` flushes the service's micro-batch queue on first use if the
    embedding has not been computed yet.
    """

    __slots__ = ("_service", "digest")

    def __init__(self, service: "EmbeddingService", digest: str):
        self._service = service
        self.digest = digest

    def result(self) -> np.ndarray:
        return self._service._resolve(self.digest)


class EmbeddingService:
    """Serve graph-level embeddings from a frozen encoder.

    Parameters
    ----------
    encoder:
        A pre-trained :class:`GNNEncoder`; the service puts it in eval mode
        and never trains it.
    cache_size:
        Maximum number of cached embeddings (LRU eviction beyond it).
    max_batch_size:
        Encoder forward passes never exceed this many graphs; larger requests
        are chunked, and the :meth:`submit` queue auto-flushes at this size.
    telemetry:
        Optional shared registry — a :class:`Telemetry` or any
        :class:`repro.obs.MetricsRegistry` (e.g. an
        :class:`~repro.obs.Observer`'s ``metrics``, so serving traffic
        lands in the same snapshot as training telemetry). A private
        :class:`Telemetry` is created if omitted.
    """

    def __init__(self, encoder: GNNEncoder, *, cache_size: int = 4096,
                 max_batch_size: int = 64,
                 telemetry: "MetricsRegistry | None" = None):
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        self.encoder = encoder.eval()
        self.cache_size = cache_size
        self.max_batch_size = max_batch_size
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self._cache: OrderedDict[str, np.ndarray] = OrderedDict()
        self._queue: OrderedDict[str, Graph] = OrderedDict()

    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(cls, path, **kwargs) -> "EmbeddingService":
        """Build a service from a checkpoint written by ``save_checkpoint``."""
        from .checkpoint import load_checkpoint

        return cls(load_checkpoint(path).build_encoder(), **kwargs)

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _cache_get(self, digest: str) -> np.ndarray | None:
        row = self._cache.get(digest)
        if row is not None:
            self._cache.move_to_end(digest)
        return row

    def _cache_put(self, digest: str, row: np.ndarray) -> None:
        stored = np.array(row, copy=True)
        stored.setflags(write=False)
        self._cache[digest] = stored
        self._cache.move_to_end(digest)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.telemetry.increment("cache_evictions")

    def clear_cache(self) -> None:
        self._cache.clear()

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Encoder hot path
    # ------------------------------------------------------------------
    def _encode(self, items: list[tuple[str, Graph]]
                ) -> dict[str, np.ndarray]:
        """Run the encoder over ``items`` in chunks; fill the cache.

        Returns the freshly computed rows keyed by digest, so callers can
        assemble results even when the request is larger than the cache.
        """
        computed: dict[str, np.ndarray] = {}
        # Re-assert eval mode every pass: other code paths sharing this
        # encoder (embed_dataset, fine-tuning helpers) toggle train mode.
        self.encoder.eval()
        for start in range(0, len(items), self.max_batch_size):
            chunk = items[start:start + self.max_batch_size]
            batch = Batch([graph for _, graph in chunk])
            with no_grad(), current().span("serve/encode"), \
                    self.telemetry.timer("encoder_batch_seconds"):
                rows = self.encoder.graph_representations(batch).data
            self.telemetry.increment("encoder_batches")
            self.telemetry.increment("encoder_graphs", len(chunk))
            self.telemetry.observe("encoder_batch_size", len(chunk))
            for (digest, _), row in zip(chunk, rows):
                self._cache_put(digest, row)
                computed[digest] = row
        return computed

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    def embed(self, graphs: Iterable[Graph] | Graph) -> np.ndarray:
        """Embeddings for ``graphs`` (one row per graph, request order).

        Cache misses — deduplicated within the request — are embedded in
        chunks of ``max_batch_size``; hits cost a dict lookup. The returned
        array is freshly allocated and safe to mutate.
        """
        if isinstance(graphs, Graph):
            graphs = [graphs]
        graphs = list(graphs)
        if not graphs:
            raise ValueError("embed() requires at least one graph")
        with current().span("serve/embed"), \
                self.telemetry.timer("embed_seconds"):
            self.telemetry.increment("requests")
            digests = [graph_digest(graph) for graph in graphs]
            rows: list[np.ndarray | None] = [None] * len(graphs)
            misses: OrderedDict[str, Graph] = OrderedDict()
            for i, (digest, graph) in enumerate(zip(digests, graphs)):
                row = self._cache_get(digest)
                if row is None:
                    self.telemetry.increment("cache_misses")
                    misses.setdefault(digest, graph)
                else:
                    self.telemetry.increment("cache_hits")
                    rows[i] = row
            fresh = self._encode(list(misses.items())) if misses else {}
            for i, digest in enumerate(digests):
                if rows[i] is None:
                    rows[i] = fresh[digest]
            return np.stack(rows)

    def embed_one(self, graph: Graph) -> np.ndarray:
        """Single-graph convenience wrapper around :meth:`embed`."""
        return self.embed([graph])[0]

    # ------------------------------------------------------------------
    def submit(self, graph: Graph) -> PendingEmbedding:
        """Enqueue one graph for micro-batched embedding.

        The queue coalesces requests until :meth:`flush` is called (or it
        reaches ``max_batch_size``, which flushes automatically), so many
        single-graph callers share one encoder forward pass.
        """
        digest = graph_digest(graph)
        self.telemetry.increment("submitted")
        if self._cache_get(digest) is None and digest not in self._queue:
            self._queue[digest] = graph
            if len(self._queue) >= self.max_batch_size:
                self.flush()
        return PendingEmbedding(self, digest)

    def flush(self) -> None:
        """Embed every queued graph in one coalesced pass."""
        if not self._queue:
            return
        self.telemetry.increment("flushes")
        items = list(self._queue.items())
        self._queue.clear()
        self._encode(items)

    def _resolve(self, digest: str) -> np.ndarray:
        row = self._cache_get(digest)
        if row is None:
            self.flush()
            row = self._cache_get(digest)
        if row is None:
            raise KeyError(
                "embedding was evicted before the pending request resolved; "
                "increase cache_size")
        return row.copy()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving statistics: cache effectiveness, batching, latency."""
        t = self.telemetry
        hits = t.count("cache_hits")
        misses = t.count("cache_misses")
        lookups = hits + misses
        batch = t.summary("encoder_batch_size")
        latency = t.summary("embed_seconds")
        return {
            "cache": {
                "size": len(self._cache),
                "capacity": self.cache_size,
                "hits": int(hits),
                "misses": int(misses),
                "hit_rate": hits / lookups if lookups else float("nan"),
                "evictions": int(t.count("cache_evictions")),
            },
            "encoder": {
                "batches": int(t.count("encoder_batches")),
                "graphs": int(t.count("encoder_graphs")),
                "mean_batch_size": batch["mean"],
            },
            "latency": {
                "requests": latency["count"],
                "mean_ms": latency["mean"] * 1e3,
                "p50_ms": latency["p50"] * 1e3,
                "p95_ms": latency["p95"] * 1e3,
            },
        }
