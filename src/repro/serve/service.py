"""Cached, micro-batched embedding inference over a frozen encoder.

:class:`EmbeddingService` is the serving counterpart of
:func:`repro.eval.embed_dataset`: it owns a pre-trained encoder in eval mode
and answers ``embed(graphs)`` requests through

* a **content-addressed LRU cache** — graphs are keyed by a digest of their
  structure and features (:func:`graph_digest`), so identical graphs are
  embedded exactly once per cache lifetime regardless of which request or
  dataset object they arrive in; and
* a **micro-batching queue** — single-graph :meth:`submit` requests coalesce
  into one disjoint-union batch (this substrate's :class:`Batch` replaces
  padding) that runs the encoder hot path once per ``max_batch_size`` graphs
  instead of once per request.

Cached rows are stored read-only and every result is a fresh copy, so a
caller mutating a returned array can never poison later responses. All
traffic is measured by a :class:`Telemetry` instance exposed via
:meth:`stats` (cache hit rate, encoder batch sizes, latency percentiles).

The service degrades, it does not hang or cascade:

* **request deadlines** — with ``deadline_seconds`` set, each ``embed``
  request carries a :class:`~repro.resilience.Deadline` checked between
  encoder chunks; an over-budget request raises
  :class:`~repro.resilience.DeadlineExceeded` (``timeouts`` counter)
  instead of blocking every later caller.
* **circuit breaking** — encoder failures feed a
  :class:`~repro.resilience.CircuitBreaker`; once open, the service falls
  back to *cache-only degraded mode*: fully cached requests are still
  served, requests needing the encoder are shed with
  :class:`~repro.resilience.CircuitOpenError` until the breaker's
  recovery probe succeeds.
* **bounded-queue load shedding** — the :meth:`submit` backlog is capped
  by ``max_queue``; requests beyond it (or uncached submits while the
  breaker is open) raise :class:`~repro.resilience.LoadShedError`
  (``shed`` counter) rather than growing without bound.

All three surface in :meth:`stats` under ``"resilience"``.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Iterable

import numpy as np

from ..gnn import GNNEncoder
from ..graph import Batch, Graph
from ..obs import current
from ..obs.metrics import MetricsRegistry
from ..resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    LoadShedError,
)
from ..tensor import no_grad
from .telemetry import Telemetry

__all__ = ["EmbeddingService", "PendingEmbedding", "graph_digest"]


def graph_digest(graph: Graph) -> str:
    """Content hash of a graph's structure + features (labels excluded).

    Two graphs with identical ``x`` and ``edge_index`` arrays share a digest,
    so embeddings — which depend only on structure and features — can be
    cached across datasets, folds and requests.
    """
    digest = hashlib.sha256()
    for tag, array in ((b"x", graph.x), (b"e", graph.edge_index)):
        digest.update(tag)
        digest.update(str(array.shape).encode())
        digest.update(str(array.dtype).encode())
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


class PendingEmbedding:
    """Handle for a :meth:`EmbeddingService.submit` request.

    ``result()`` flushes the service's micro-batch queue on first use if the
    embedding has not been computed yet.
    """

    __slots__ = ("_service", "digest")

    def __init__(self, service: "EmbeddingService", digest: str):
        self._service = service
        self.digest = digest

    def result(self) -> np.ndarray:
        return self._service._resolve(self.digest)


class EmbeddingService:
    """Serve graph-level embeddings from a frozen encoder.

    Parameters
    ----------
    encoder:
        A pre-trained :class:`GNNEncoder`; the service puts it in eval mode
        and never trains it.
    cache_size:
        Maximum number of cached embeddings (LRU eviction beyond it).
    max_batch_size:
        Encoder forward passes never exceed this many graphs; larger requests
        are chunked, and the :meth:`submit` queue auto-flushes at this size.
    telemetry:
        Optional shared registry — a :class:`Telemetry` or any
        :class:`repro.obs.MetricsRegistry` (e.g. an
        :class:`~repro.obs.Observer`'s ``metrics``, so serving traffic
        lands in the same snapshot as training telemetry). A private
        :class:`Telemetry` is created if omitted.
    deadline_seconds:
        Per-request time budget for :meth:`embed`; ``None`` (default)
        disables deadlines.
    max_queue:
        Cap on the :meth:`submit` backlog; submits beyond it are shed
        with :class:`LoadShedError`. ``None`` (default) leaves the
        backlog unbounded (it still auto-flushes at ``max_batch_size``).
    breaker:
        Injectable :class:`~repro.resilience.CircuitBreaker` guarding the
        encoder (e.g. with a test clock or custom thresholds). A default
        breaker (5 consecutive failures, 30 s recovery) is created if
        omitted — inert unless the encoder actually fails.
    """

    def __init__(self, encoder: GNNEncoder, *, cache_size: int = 4096,
                 max_batch_size: int = 64,
                 telemetry: "MetricsRegistry | None" = None,
                 deadline_seconds: float | None = None,
                 max_queue: int | None = None,
                 breaker: CircuitBreaker | None = None):
        if cache_size < 1:
            raise ValueError(f"cache_size must be >= 1, got {cache_size}")
        if max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got {max_batch_size}")
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be positive, got {deadline_seconds}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.encoder = encoder.eval()
        self.cache_size = cache_size
        self.max_batch_size = max_batch_size
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.deadline_seconds = deadline_seconds
        self.max_queue = max_queue
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=5, recovery_timeout=30.0, name="serve-encoder")
        self._cache: OrderedDict[str, np.ndarray] = OrderedDict()
        self._queue: OrderedDict[str, Graph] = OrderedDict()

    # ------------------------------------------------------------------
    @classmethod
    def from_checkpoint(cls, path, **kwargs) -> "EmbeddingService":
        """Build a service from a checkpoint written by ``save_checkpoint``."""
        from .checkpoint import load_checkpoint

        return cls(load_checkpoint(path).build_encoder(), **kwargs)

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _cache_get(self, digest: str) -> np.ndarray | None:
        row = self._cache.get(digest)
        if row is not None:
            self._cache.move_to_end(digest)
        return row

    def _cache_put(self, digest: str, row: np.ndarray) -> None:
        stored = np.array(row, copy=True)
        stored.setflags(write=False)
        self._cache[digest] = stored
        self._cache.move_to_end(digest)
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
            self.telemetry.increment("cache_evictions")

    def clear_cache(self) -> None:
        self._cache.clear()

    def invalidate(self, digests: Iterable[str]) -> int:
        """Drop the cached rows for ``digests``; returns how many existed.

        The selective counterpart of :meth:`clear_cache` for incremental
        refreshes: only entries whose source graphs changed are evicted
        (``cache_invalidations`` counter), every other digest keeps its
        warm row.
        """
        removed = 0
        for digest in digests:
            if self._cache.pop(digest, None) is not None:
                removed += 1
        if removed:
            self.telemetry.increment("cache_invalidations", removed)
        return removed

    @property
    def cache_len(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Encoder hot path
    # ------------------------------------------------------------------
    def _encode(self, items: list[tuple[str, Graph]],
                deadline: Deadline | None = None) -> dict[str, np.ndarray]:
        """Run the encoder over ``items`` in chunks; fill the cache.

        Returns the freshly computed rows keyed by digest, so callers can
        assemble results even when the request is larger than the cache.

        Between chunks the request ``deadline`` is enforced (an expired
        budget raises :class:`~repro.resilience.DeadlineExceeded` and
        counts a ``timeouts``) and the circuit breaker consulted: with the
        breaker open the remaining graphs are shed
        (:class:`~repro.resilience.CircuitOpenError`, ``shed`` counter)
        instead of hammering a failing encoder. Encoder exceptions feed
        the breaker and propagate.
        """
        computed: dict[str, np.ndarray] = {}
        # Re-assert eval mode every pass: other code paths sharing this
        # encoder (embed_dataset, fine-tuning helpers) toggle train mode.
        self.encoder.eval()
        for start in range(0, len(items), self.max_batch_size):
            if deadline is not None and deadline.expired:
                self.telemetry.increment("timeouts")
                deadline.check("EmbeddingService request")
            if not self.breaker.allow():
                remaining = len(items) - start
                self.telemetry.increment("shed", remaining)
                raise CircuitOpenError(
                    f"embedding encoder circuit is open; {remaining} "
                    f"graph(s) shed (cache-only degraded mode — cached "
                    f"requests are still served)")
            chunk = items[start:start + self.max_batch_size]
            batch = Batch([graph for _, graph in chunk])
            try:
                with no_grad(), current().span("serve/encode"), \
                        self.telemetry.timer("encoder_batch_seconds"):
                    rows = self.encoder.graph_representations(batch).data
            except Exception:
                self.breaker.record_failure()
                self.telemetry.increment("encoder_failures")
                raise
            self.breaker.record_success()
            self.telemetry.increment("encoder_batches")
            self.telemetry.increment("encoder_graphs", len(chunk))
            self.telemetry.observe("encoder_batch_size", len(chunk))
            for (digest, _), row in zip(chunk, rows):
                self._cache_put(digest, row)
                computed[digest] = row
        return computed

    # ------------------------------------------------------------------
    # Request API
    # ------------------------------------------------------------------
    def embed(self, graphs: Iterable[Graph] | Graph) -> np.ndarray:
        """Embeddings for ``graphs`` (one row per graph, request order).

        Cache misses — deduplicated within the request — are embedded in
        chunks of ``max_batch_size``; hits cost a dict lookup. The returned
        array is freshly allocated and safe to mutate.

        With ``deadline_seconds`` configured the request runs under a
        :class:`~repro.resilience.Deadline`; with the circuit breaker
        open, requests fully served from cache still succeed (degraded
        mode) while requests needing the encoder are shed.
        """
        if isinstance(graphs, Graph):
            graphs = [graphs]
        graphs = list(graphs)
        if not graphs:
            raise ValueError("embed() requires at least one graph")
        deadline = Deadline(self.deadline_seconds) \
            if self.deadline_seconds is not None else None
        with current().span("serve/embed"), \
                self.telemetry.timer("embed_seconds"):
            self.telemetry.increment("requests")
            digests = [graph_digest(graph) for graph in graphs]
            rows: list[np.ndarray | None] = [None] * len(graphs)
            misses: OrderedDict[str, Graph] = OrderedDict()
            for i, (digest, graph) in enumerate(zip(digests, graphs)):
                row = self._cache_get(digest)
                if row is None:
                    self.telemetry.increment("cache_misses")
                    misses.setdefault(digest, graph)
                else:
                    self.telemetry.increment("cache_hits")
                    rows[i] = row
            fresh = self._encode(list(misses.items()), deadline) \
                if misses else {}
            for i, digest in enumerate(digests):
                if rows[i] is None:
                    rows[i] = fresh[digest]
            return np.stack(rows)

    def embed_one(self, graph: Graph) -> np.ndarray:
        """Single-graph convenience wrapper around :meth:`embed`."""
        return self.embed([graph])[0]

    # ------------------------------------------------------------------
    def submit(self, graph: Graph) -> PendingEmbedding:
        """Enqueue one graph for micro-batched embedding.

        The queue coalesces requests until :meth:`flush` is called (or it
        reaches ``max_batch_size``, which flushes automatically), so many
        single-graph callers share one encoder forward pass.

        Overload protection: an uncached submit while the circuit breaker
        is open, or one that would push the backlog past ``max_queue``,
        is shed with :class:`~repro.resilience.LoadShedError` (``shed``
        counter) — already-cached graphs are always accepted.
        """
        digest = graph_digest(graph)
        self.telemetry.increment("submitted")
        if self._cache_get(digest) is None and digest not in self._queue:
            if not self.breaker.allow():
                self.telemetry.increment("shed")
                raise LoadShedError(
                    "submit shed: encoder circuit is open and the graph "
                    "is not cached")
            if self.max_queue is not None \
                    and len(self._queue) >= self.max_queue:
                self.telemetry.increment("shed")
                raise LoadShedError(
                    f"submit shed: backlog is at max_queue="
                    f"{self.max_queue}; flush() or raise the bound")
            self._queue[digest] = graph
            if len(self._queue) >= self.max_batch_size:
                self.flush()
        return PendingEmbedding(self, digest)

    def flush(self) -> None:
        """Embed every queued graph in one coalesced pass.

        On failure (encoder exception, open breaker, shed) the graphs
        whose embeddings were not computed are re-queued, so pending
        handles can still resolve after the dependency recovers.
        """
        if not self._queue:
            return
        self.telemetry.increment("flushes")
        items = list(self._queue.items())
        self._queue.clear()
        try:
            self._encode(items)
        except Exception:
            for digest, graph in items:
                if digest not in self._cache:
                    self._queue.setdefault(digest, graph)
            raise

    def _resolve(self, digest: str) -> np.ndarray:
        row = self._cache_get(digest)
        if row is None:
            self.flush()
            row = self._cache_get(digest)
        if row is None:
            raise KeyError(
                "embedding was evicted before the pending request resolved; "
                "increase cache_size")
        return row.copy()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving statistics: cache effectiveness, batching, latency."""
        t = self.telemetry
        hits = t.count("cache_hits")
        misses = t.count("cache_misses")
        lookups = hits + misses
        batch = t.summary("encoder_batch_size")
        latency = t.summary("embed_seconds")
        return {
            "cache": {
                "size": len(self._cache),
                "capacity": self.cache_size,
                "occupancy": len(self._cache) / self.cache_size,
                "hits": int(hits),
                "misses": int(misses),
                "lookups": int(lookups),
                "hit_rate": hits / lookups if lookups else float("nan"),
                "evictions": int(t.count("cache_evictions")),
            },
            "encoder": {
                "batches": int(t.count("encoder_batches")),
                "graphs": int(t.count("encoder_graphs")),
                "mean_batch_size": batch["mean"],
            },
            "latency": {
                "requests": latency["count"],
                "mean_ms": latency["mean"] * 1e3,
                "p50_ms": latency["p50"] * 1e3,
                "p95_ms": latency["p95"] * 1e3,
            },
            "resilience": {
                "shed": int(t.count("shed")),
                "timeouts": int(t.count("timeouts")),
                "encoder_failures": int(t.count("encoder_failures")),
                "breaker": self.breaker.stats(),
                "queue_depth": len(self._queue),
                "max_queue": self.max_queue,
                "deadline_seconds": self.deadline_seconds,
            },
        }
