"""Directory-backed named model registry for serving.

One process often serves several pre-trained encoders at once — different
methods, datasets or hyper-parameter sweeps. :class:`ModelRegistry` maps
human-readable names to checkpoint bundles under one root directory
(``<root>/<name>.npz``) and hands out :class:`EmbeddingService` instances on
demand, memoising them so repeated ``get`` calls share one cache per model.
"""

from __future__ import annotations

import re
from pathlib import Path

from ..core.config import SGCLConfig
from ..nn import Module, Optimizer
from .checkpoint import read_checkpoint_header, save_checkpoint
from .service import EmbeddingService

__all__ = ["ModelRegistry"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class ModelRegistry:
    """Named checkpoints under one directory + memoised serving handles.

    Parameters
    ----------
    root:
        Directory holding ``<name>.npz`` bundles; created if missing.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._services: dict[tuple, EmbeddingService] = {}

    # ------------------------------------------------------------------
    def path(self, name: str) -> Path:
        """Checkpoint path a model name maps to (validates the name)."""
        if not _NAME_RE.match(name):
            raise ValueError(
                f"invalid model name {name!r}: use letters, digits, '.', "
                "'_' or '-', starting with a letter or digit")
        return self.root / f"{name}.npz"

    def __contains__(self, name: str) -> bool:
        return self.path(name).exists()

    # ------------------------------------------------------------------
    def register(self, name: str, model: Module, *,
                 config: SGCLConfig | dict | None = None,
                 optimizer: Optimizer | None = None,
                 metadata: dict | None = None,
                 overwrite: bool = False) -> Path:
        """Checkpoint ``model`` under ``name`` (see :func:`save_checkpoint`)."""
        path = self.path(name)
        if path.exists() and not overwrite:
            raise FileExistsError(
                f"model {name!r} already registered at {path}; "
                "pass overwrite=True to replace it")
        self.evict(name)
        return save_checkpoint(path, model, config=config,
                               optimizer=optimizer,
                               metadata={"name": name, **(metadata or {})})

    def unregister(self, name: str) -> None:
        """Delete a registered checkpoint (and its memoised services)."""
        path = self.path(name)
        if not path.exists():
            raise KeyError(f"no registered model named {name!r}")
        self.evict(name)
        path.unlink()

    # ------------------------------------------------------------------
    @staticmethod
    def _service_key(name: str, service_kwargs: dict) -> tuple:
        """Memoisation key: the name plus every kwarg, order-independent.

        Unhashable kwarg values (e.g. a shared ``telemetry`` registry)
        fall back to identity, so two calls sharing the same object still
        share a service.
        """
        parts = []
        for key in sorted(service_kwargs):
            value = service_kwargs[key]
            try:
                hash(value)
            except TypeError:
                value = ("id", id(value))
            parts.append((key, value))
        return (name, tuple(parts))

    def get(self, name: str, **service_kwargs) -> EmbeddingService:
        """An :class:`EmbeddingService` for ``name``.

        Services are memoised per ``(name, service_kwargs)``: repeated
        calls with the same configuration share one embedding cache and
        never re-read the checkpoint from disk, while a different
        ``cache_size`` / ``max_batch_size`` / ``telemetry`` combination
        gets its own service instead of silently inheriting the first
        caller's settings.
        """
        key = self._service_key(name, service_kwargs)
        service = self._services.get(key)
        if service is None:
            path = self.path(name)
            if not path.exists():
                raise KeyError(
                    f"no registered model named {name!r}; "
                    f"available: {[e['name'] for e in self.list()]}")
            service = EmbeddingService.from_checkpoint(path, **service_kwargs)
            self._services[key] = service
        return service

    def evict(self, name: str | None = None) -> int:
        """Drop memoised services (all of them, or just ``name``'s).

        Returns the number of services dropped. The next ``get`` re-reads
        the checkpoint — call after replacing a bundle on disk out of
        band, or to release encoder memory for a model no longer serving.
        """
        if name is None:
            dropped = len(self._services)
            self._services.clear()
            return dropped
        stale = [key for key in self._services if key[0] == name]
        for key in stale:
            del self._services[key]
        return len(stale)

    def list(self) -> list[dict]:
        """Header summaries of every registered model, sorted by name."""
        entries = []
        for path in sorted(self.root.glob("*.npz")):
            header = read_checkpoint_header(path)
            entries.append({
                "name": path.stem,
                "model_class": header["model_class"],
                "in_dim": header["in_dim"],
                "repro_version": header["repro_version"],
                "created": header["created"],
                "metadata": header["metadata"],
            })
        return entries
