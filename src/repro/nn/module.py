"""Module / Parameter system (a minimal ``torch.nn.Module`` analogue)."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A Tensor registered as a trainable leaf of a :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class with automatic parameter / submodule registration.

    Attributes assigned as :class:`Parameter` or :class:`Module` instances are
    discovered by :meth:`parameters` and :meth:`named_parameters`. A
    ``training`` flag toggles layers with distinct train/eval behaviour
    (Dropout, BatchNorm).
    """

    def __init__(self):
        self.training = True

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{i}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")

    def parameters(self) -> list[Parameter]:
        return [param for _, param in self.named_parameters()]

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    #: names of non-trainable ndarray attributes that belong to the module's
    #: state (e.g. BatchNorm running statistics). Subclasses override.
    _buffer_names: tuple[str, ...] = ()

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        """Registered buffers (running statistics etc.), dotted-path keyed."""
        for name in self._buffer_names:
            yield f"{prefix}{name}", getattr(self, name)
        for name, value in vars(self).items():
            full = f"{prefix}{name}"
            if isinstance(value, Module):
                yield from value.named_buffers(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_buffers(prefix=f"{full}.{i}.")

    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot all parameters and buffers (copies), dotted-path keyed.

        Buffers (BatchNorm running statistics) are included so that a
        save → mutate → load round-trip restores the module's *behaviour*,
        not only its trainable weights.
        """
        state = {name: param.data.copy()
                 for name, param in self.named_parameters()}
        for name, buffer in self.named_buffers():
            state[name] = np.array(buffer, copy=True)
        return state

    def _state_targets(self) -> dict[str, tuple[object, str | None]]:
        """name → (parameter, None) or (owning module, attribute name)."""
        targets: dict[str, tuple[object, str | None]] = {
            name: (param, None) for name, param in self.named_parameters()}
        stack: list[tuple[Module, str]] = [(self, "")]
        while stack:
            module, prefix = stack.pop()
            for name in module._buffer_names:
                targets[f"{prefix}{name}"] = (module, name)
            for name, value in vars(module).items():
                if isinstance(value, Module):
                    stack.append((value, f"{prefix}{name}."))
                elif isinstance(value, (list, tuple)):
                    for i, item in enumerate(value):
                        if isinstance(item, Module):
                            stack.append((item, f"{prefix}{name}.{i}."))
        return targets

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter and buffer values in place; keys/shapes must match."""
        targets = self._state_targets()
        missing = set(targets) - set(state)
        unexpected = set(state) - set(targets)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}")
        for name, value in state.items():
            target, attribute = targets[name]
            if attribute is None:
                if target.data.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{target.data.shape} vs {value.shape}")
                target.data[...] = value
            else:
                setattr(target, attribute, np.array(value, copy=True))

    def num_parameters(self) -> int:
        return sum(param.size for param in self.parameters())

    def weight_norm(self) -> Tensor:
        """L2 norm over all parameters — the paper's Θ_W = ‖W‖ (Eq. 26)."""
        total = None
        for param in self.parameters():
            contribution = (param * param).sum()
            total = contribution if total is None else total + contribution
        if total is None:
            return Tensor(0.0)
        return (total + 1e-12).sqrt()
