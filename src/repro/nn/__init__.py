"""Neural-network substrate: modules, layers, losses, optimisers."""

from .module import Module, Parameter
from .layers import (
    BatchNorm1d,
    Dropout,
    Embedding,
    Identity,
    Linear,
    MLP,
    ReLU,
    Sequential,
)
from .functional import (
    binary_cross_entropy_with_logits,
    cosine_similarity_matrix,
    cross_entropy,
    l2_normalize,
    mse_loss,
)
from .optim import SGD, Adam, Optimizer
from .schedulers import CosineAnnealingLR, LRScheduler, StepLR, WarmupLR
from . import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "BatchNorm1d",
    "Dropout",
    "Sequential",
    "Embedding",
    "Identity",
    "ReLU",
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "l2_normalize",
    "cosine_similarity_matrix",
    "SGD",
    "Adam",
    "Optimizer",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "WarmupLR",
    "init",
]
