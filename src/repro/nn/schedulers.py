"""Learning-rate schedulers for the optimisers in :mod:`repro.nn.optim`."""

from __future__ import annotations

import math

from .optim import Optimizer

__all__ = ["LRScheduler", "StepLR", "CosineAnnealingLR", "WarmupLR"]


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new learning rate."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr()
        return self.optimizer.lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int,
                 gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int,
                 eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1.0 + math.cos(math.pi * progress))


class WarmupLR(LRScheduler):
    """Linear warmup to the base rate, then delegate to an inner scheduler."""

    def __init__(self, optimizer: Optimizer, warmup_epochs: int,
                 after: LRScheduler | None = None):
        super().__init__(optimizer)
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be positive")
        self.warmup_epochs = warmup_epochs
        self.after = after

    def get_lr(self) -> float:
        if self.epoch <= self.warmup_epochs:
            return self.base_lr * self.epoch / self.warmup_epochs
        if self.after is not None:
            self.after.epoch = self.epoch - self.warmup_epochs
            return self.after.get_lr()
        return self.base_lr
