"""Parameter initialisers (Glorot/Kaiming), seeded via ``numpy.random.Generator``."""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_uniform", "uniform", "zeros"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator,
                   gain: float = 1.0) -> np.ndarray:
    """Glorot & Bengio (2010) uniform initialisation."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He et al. (2015) uniform initialisation for ReLU fan-in."""
    fan_in, _ = _fans(shape)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator,
            bound: float) -> np.ndarray:
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 1:
        return shape[0], shape[0]
    return shape[0], shape[1]
