"""Standard neural-network layers built on the autodiff substrate."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from . import init
from .module import Module, Parameter

__all__ = [
    "Linear",
    "MLP",
    "BatchNorm1d",
    "Dropout",
    "Sequential",
    "Embedding",
    "Identity",
    "ReLU",
]


class Linear(Module):
    """Affine map ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Whether to include the additive bias term.
    rng:
        Seeded generator for initialisation (required — no global RNG use).
    """

    def __init__(self, in_features: int, out_features: int, *,
                 rng: np.random.Generator, bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Apply submodules in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def __len__(self) -> int:
        return len(self.layers)


class BatchNorm1d(Module):
    """Batch normalisation over the leading (row) dimension.

    Keeps running statistics for eval mode, matching the GIN reference
    implementation used in GraphCL/SGCL encoders.
    """

    _buffer_names = ("running_mean", "running_var")

    def __init__(self, num_features: int, *, momentum: float = 0.1,
                 eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if self.training and x.shape[0] > 1:
            mean = x.mean(axis=0)
            centered = x - mean
            var = (centered * centered).mean(axis=0)
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mean.data)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var.data)
            inv_std = (var + self.eps) ** -0.5
            normalised = centered * inv_std
        else:
            normalised = (x - self.running_mean) * (
                1.0 / np.sqrt(self.running_var + self.eps))
        return normalised * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    A seeded generator must be supplied so runs are reproducible.
    """

    def __init__(self, p: float, *, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = (self._rng.random(x.shape) >= self.p) / (1.0 - self.p)
        return x * Tensor(mask)


class MLP(Module):
    """Multi-layer perceptron with ReLU activations.

    Used for GIN update functions and projection heads. ``batch_norm=True``
    inserts BatchNorm after every hidden Linear, as in the GIN paper.
    """

    def __init__(self, dims: list[int], *, rng: np.random.Generator,
                 batch_norm: bool = False, final_activation: bool = False):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least [in, out] dims")
        layers: list[Module] = []
        for i, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng=rng))
            is_last = i == len(dims) - 2
            if not is_last or final_activation:
                if batch_norm:
                    layers.append(BatchNorm1d(d_out))
                layers.append(ReLU())
        self.net = Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


class Embedding(Module):
    """Integer-index embedding table (for categorical atom/bond features)."""

    def __init__(self, num_embeddings: int, embedding_dim: int, *,
                 rng: np.random.Generator):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.xavier_uniform((num_embeddings, embedding_dim), rng))

    def forward(self, index: np.ndarray) -> Tensor:
        index = np.asarray(index, dtype=np.int64)
        if index.min(initial=0) < 0 or (index.size and index.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        from ..tensor import gather
        return gather(self.weight, index)
