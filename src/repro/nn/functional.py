"""Loss functions and miscellaneous functional ops."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, as_tensor

__all__ = [
    "cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "l2_normalize",
    "cosine_similarity_matrix",
]


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy of integer ``targets`` under row-wise ``logits``.

    ``targets`` must be finite: an unlabeled row (NaN label, as
    ``GraphDataset.labels()`` produces for ``y=None`` graphs) would
    otherwise be cast to an arbitrary garbage class index by the int64
    conversion. Callers must filter unlabeled rows first.
    """
    targets = np.asarray(targets)
    if targets.dtype.kind == "f" and not np.isfinite(targets).all():
        raise ValueError(
            "cross_entropy received non-finite targets (unlabeled rows?); "
            "filter them out before computing the loss — int casting would "
            "silently turn NaN into a garbage class index")
    targets = targets.astype(np.int64)
    log_probs = logits.log_softmax(axis=-1)
    rows = np.arange(len(targets))
    picked = log_probs[(rows, targets)]
    return -picked.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets,
                                     mask: np.ndarray | None = None) -> Tensor:
    """Stable sigmoid BCE, optionally masked (for multi-task labels with
    missing entries, as in MoleculeNet-style datasets).

    ``loss = softplus(x) - x*y`` elementwise; masked mean over valid entries.
    Masked-out target entries are zero-filled *before* the ``x*y`` product:
    missing labels are stored as NaN, and ``0 * NaN`` is NaN, so computing
    the product first would poison the loss (and every gradient) even
    though the mask later zeroes the entry's weight.
    """
    targets = as_tensor(targets)
    if mask is None:
        elementwise = logits.softplus() - logits * targets
        return elementwise.mean()
    mask = np.asarray(mask, dtype=np.float64)
    safe_targets = Tensor(np.where(mask > 0, targets.data, 0.0))
    elementwise = logits.softplus() - logits * safe_targets
    valid = max(mask.sum(), 1.0)
    return (elementwise * Tensor(mask)).sum() * (1.0 / valid)


def mse_loss(prediction: Tensor, target) -> Tensor:
    target = as_tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Project rows onto the unit sphere (used before InfoNCE similarities)."""
    norms = ((x * x).sum(axis=axis, keepdims=True) + eps).sqrt()
    return x / norms


def cosine_similarity_matrix(a: Tensor, b: Tensor) -> Tensor:
    """Pairwise cosine similarity between rows of ``a`` and rows of ``b``."""
    return l2_normalize(a) @ l2_normalize(b).T


# ----------------------------------------------------------------------
# Profiler op table (consumed by repro.obs.profiler)
# ----------------------------------------------------------------------
def _flops_per_input(args, kwargs, out) -> float:
    """A handful of elementwise passes over the first argument."""
    x = args[0]
    size = x.data.size if isinstance(x, Tensor) else np.size(x)
    return float(size)


#: Loss/functional ops profiled by :class:`repro.obs.profiler.OpProfiler`.
#: All of these are compositions of Tensor primitives, so their self time
#: is Python glue; the heavy lifting shows up under the primitives.
PROFILED_OPS = [
    ("cross_entropy", "cross_entropy", _flops_per_input),
    ("binary_cross_entropy_with_logits", "bce_with_logits", _flops_per_input),
    ("mse_loss", "mse_loss", _flops_per_input),
    ("l2_normalize", "l2_normalize", _flops_per_input),
    ("cosine_similarity_matrix", "cosine_similarity", _flops_per_input),
]
