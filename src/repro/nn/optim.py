"""First-order optimisers: SGD (with momentum) and Adam."""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimiser over a flat parameter list."""

    def __init__(self, params: list[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Snapshot the optimiser's slot variables (copies).

        The base optimiser is stateless; subclasses with moment/velocity
        buffers extend this so a checkpointed training run resumes with
        bit-identical updates.
        """
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        self._load_slots(state, {})

    def _load_slots(self, state: dict[str, np.ndarray],
                    slots: dict[str, list[np.ndarray]]) -> None:
        """Copy ``state`` entries named ``<slot><index>`` into ``slots``."""
        expected = {f"{name}{i}" for name, buffers in slots.items()
                    for i in range(len(buffers))}
        extra_keys = set(state) - expected - {"step"}
        missing_keys = expected - set(state)
        if extra_keys or missing_keys:
            raise KeyError(
                f"optimizer state mismatch: missing={sorted(missing_keys)}, "
                f"unexpected={sorted(extra_keys)}")
        for name, buffers in slots.items():
            for i, buffer in enumerate(buffers):
                value = state[f"{name}{i}"]
                if buffer.shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}{i}: "
                        f"{buffer.shape} vs {value.shape}")
                buffer[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: list[Parameter], lr: float = 0.01, *,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for param, velocity in zip(self.params, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                grad = velocity
            param.data -= self.lr * grad

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"velocity{i}": v.copy()
                for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._load_slots(state, {"velocity": self._velocity})


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the optimiser used by SGCL (lr=0.001)."""

    def __init__(self, params: list[Parameter], lr: float = 0.001, *,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for param, m, v in zip(self.params, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {
            "step": np.array(self._step, dtype=np.int64)}
        state.update({f"m{i}": m.copy() for i, m in enumerate(self._m)})
        state.update({f"v{i}": v.copy() for i, v in enumerate(self._v)})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if "step" not in state:
            raise KeyError("Adam state requires a 'step' entry")
        self._load_slots(state, {"m": self._m, "v": self._v})
        self._step = int(state["step"])
