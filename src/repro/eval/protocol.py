"""Downstream evaluation protocols (paper §VI.A–§VI.E).

Three protocols are implemented, matching the paper's experimental setups:

* **Unsupervised** — freeze the pre-trained encoder, embed every graph, then
  SVM (or logistic-regression) 10-fold cross-validation accuracy.
* **Transfer** — fine-tune encoder + linear head on a scaffold-split
  multi-task binary dataset; report test ROC-AUC selected at the best
  validation epoch.
* **Semi-supervised** — fine-tune encoder + linear head on a stratified
  label-rate subset; report accuracy on the held-out test split.

Fine-tuning mutates the encoder; both fine-tune helpers snapshot its
parameters on entry and restore them on exit, so one pre-trained encoder can
be evaluated on many downstream tasks (the Table IV loop).
"""

from __future__ import annotations

import numpy as np

from ..data import DataLoader, GraphDataset, stratified_kfold
from ..gnn import GNNEncoder
from ..nn import (
    Adam,
    Linear,
    binary_cross_entropy_with_logits,
    cross_entropy,
)
from ..obs import current
from ..tensor import no_grad
from .linear_model import LogisticRegression
from .metrics import accuracy, mean_std, multitask_roc_auc
from .svm import OneVsRestSVC

__all__ = [
    "embed_dataset",
    "cross_validated_accuracy",
    "finetune_multitask",
    "finetune_classifier",
]


def embed_dataset(encoder: GNNEncoder, dataset, batch_size: int = 128,
                  service=None, **embed_kwargs) -> np.ndarray:
    """Frozen graph-level embeddings of every graph (eval mode, no grad).

    Passing a :class:`repro.serve.EmbeddingService` routes the request
    through its content-addressed cache, so repeated embeddings of the same
    graphs (CV folds, sweeps over downstream settings) skip the encoder
    entirely; ``encoder`` is ignored in that case and custom
    ``embed_kwargs`` are rejected because cached rows would not reflect
    them.
    """
    if service is not None:
        if embed_kwargs:
            raise ValueError(
                "embed_kwargs are incompatible with the embedding cache; "
                "call the encoder directly instead")
        return service.embed(dataset)
    encoder.eval()
    chunks = []
    with no_grad(), current().span("eval/embed"):
        for batch in DataLoader(dataset, batch_size):
            chunks.append(
                encoder.graph_representations(batch, **embed_kwargs).data)
    encoder.train()
    return np.concatenate(chunks, axis=0)


def _make_classifier(classifier: str, seed: int):
    if classifier == "svm":
        return OneVsRestSVC(kernel="rbf", C=1.0, seed=seed)
    if classifier == "logreg":
        return LogisticRegression(C=1.0)
    raise ValueError(f"unknown classifier {classifier!r}")


class _CVFoldJob:
    """Picklable fit-and-score of one CV fold.

    Both the serial and the parallel path of
    :func:`cross_validated_accuracy` run this exact callable, so the two
    can never drift numerically; a fold's score depends only on
    ``(embeddings, labels, fold indices, classifier, seed)``.
    """

    def __init__(self, embeddings: np.ndarray, labels: np.ndarray,
                 classifier: str, seed: int):
        self.embeddings = embeddings
        self.labels = labels
        self.classifier = classifier
        self.seed = seed

    def __call__(self, fold) -> float:
        train_idx, test_idx = fold
        # Span name follows the classifier ("eval/svm" or "eval/logreg"),
        # one span per CV fold, so traces show where protocol time goes
        # (in worker processes the observer is a no-op; see runtime docs).
        with current().span(f"eval/{self.classifier}"):
            embeddings = self.embeddings
            mu = embeddings[train_idx].mean(axis=0)
            sigma = embeddings[train_idx].std(axis=0) + 1e-8
            train_x = (embeddings[train_idx] - mu) / sigma
            test_x = (embeddings[test_idx] - mu) / sigma
            model = _make_classifier(self.classifier, self.seed)
            model.fit(train_x, self.labels[train_idx])
            return accuracy(self.labels[test_idx], model.predict(test_x))


def cross_validated_accuracy(embeddings: np.ndarray, labels: np.ndarray, *,
                             k: int = 10, classifier: str = "svm",
                             seed: int = 0,
                             workers: int | None = None) -> tuple[float, float]:
    """K-fold CV accuracy of a classifier on frozen embeddings.

    Returns ``(mean, std)`` over folds — the paper's Table III cells.
    Embeddings are standardised per fold using train statistics only.

    ``workers`` fans the folds out over a
    :class:`repro.runtime.ParallelExecutor` (default: ``REPRO_WORKERS`` or
    serial). Folds are generated up front from the seeded RNG and each
    fold is fitted independently, so any worker count returns bit-identical
    scores.
    """
    from ..runtime import ParallelExecutor

    _make_classifier(classifier, seed)  # fail fast, before any fan-out
    labels = np.asarray(labels)
    rng = np.random.default_rng(seed)
    folds = list(stratified_kfold(labels, k, rng))
    job = _CVFoldJob(embeddings, labels, classifier, seed)
    fold_scores = ParallelExecutor(workers).map(job, folds)
    return mean_std(fold_scores)


# ----------------------------------------------------------------------
# Fine-tuning protocols
# ----------------------------------------------------------------------
def _snapshot(*modules):
    return [m.state_dict() for m in modules]


def _restore(modules, states):
    for module, state in zip(modules, states):
        module.load_state_dict(state)


def finetune_multitask(encoder: GNNEncoder, dataset: GraphDataset,
                       splits: tuple[np.ndarray, np.ndarray, np.ndarray], *,
                       epochs: int = 20, lr: float = 1e-3, batch_size: int = 32,
                       rng: np.random.Generator) -> float:
    """Transfer-learning fine-tune: encoder + linear head, BCE on valid labels.

    Returns the test ROC-AUC at the epoch with the best validation ROC-AUC
    (the Hu et al. 2020 protocol the paper follows). The encoder's
    pre-trained parameters are restored before returning.
    """
    if dataset.task != "multitask":
        raise ValueError("finetune_multitask expects a multitask dataset")
    train_idx, valid_idx, test_idx = splits
    head = Linear(encoder.out_dim, dataset.num_classes, rng=rng)
    saved = _snapshot(encoder)
    optimizer = Adam(encoder.parameters() + head.parameters(), lr=lr)
    train_graphs = [dataset[i] for i in train_idx]
    best_valid, best_test = -np.inf, float("nan")
    for _ in range(epochs):
        encoder.train()
        loader = DataLoader(train_graphs, batch_size, shuffle=True, rng=rng)
        for batch in loader:
            labels = batch.labels().astype(np.float64)
            mask = ~np.isnan(labels)
            targets = np.nan_to_num(labels, nan=0.0)
            logits = head(encoder.graph_representations(batch))
            loss = binary_cross_entropy_with_logits(logits, targets, mask=mask)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        valid_auc = _multitask_auc(encoder, head, dataset, valid_idx)
        if np.isnan(valid_auc):
            # Degenerate validation split (single-class tasks on a tiny
            # scaffold split): treat as chance so selection still proceeds.
            valid_auc = 0.5
        if valid_auc >= best_valid:
            best_valid = valid_auc
            best_test = _multitask_auc(encoder, head, dataset, test_idx)
    _restore([encoder], saved)
    return best_test


def _multitask_auc(encoder, head, dataset, indices) -> float:
    encoder.eval()
    graphs = [dataset[i] for i in indices]
    scores, labels = [], []
    with no_grad():
        for batch in DataLoader(graphs, 128):
            scores.append(head(encoder.graph_representations(batch)).data)
            labels.append(batch.labels().astype(np.float64))
    encoder.train()
    return multitask_roc_auc(np.concatenate(labels), np.concatenate(scores))


def finetune_classifier(encoder: GNNEncoder, dataset: GraphDataset,
                        train_idx: np.ndarray, test_idx: np.ndarray, *,
                        epochs: int = 20, lr: float = 1e-3,
                        batch_size: int = 32,
                        rng: np.random.Generator) -> float:
    """Semi-supervised fine-tune: cross-entropy on the labelled subset.

    Returns test accuracy at the final epoch; encoder parameters are
    restored before returning.
    """
    head = Linear(encoder.out_dim, dataset.num_classes, rng=rng)
    saved = _snapshot(encoder)
    optimizer = Adam(encoder.parameters() + head.parameters(), lr=lr)
    train_graphs = [dataset[i] for i in train_idx]
    for _ in range(epochs):
        encoder.train()
        for batch in DataLoader(train_graphs, batch_size, shuffle=True, rng=rng):
            # Unlabeled graphs (y=None → NaN label) carry no supervision;
            # drop their rows before the loss — cross_entropy rejects
            # non-finite targets rather than int-casting NaN to garbage.
            labels_f, valid = _finite_labels(batch)
            if not valid.any():
                continue
            logits = head(encoder.graph_representations(batch))
            if not valid.all():
                rows = np.flatnonzero(valid)
                logits, labels_f = logits[rows], labels_f[rows]
            loss = cross_entropy(logits, labels_f.astype(np.int64))
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    encoder.eval()
    predictions, labels = [], []
    with no_grad():
        for batch in DataLoader([dataset[i] for i in test_idx], 128):
            labels_f, valid = _finite_labels(batch)
            if not valid.any():
                continue
            logits = head(encoder.graph_representations(batch))
            rows = np.flatnonzero(valid)
            predictions.append(np.argmax(logits.data[rows], axis=1))
            labels.append(labels_f[rows].astype(np.int64))
    encoder.train()
    score = accuracy(np.concatenate(labels), np.concatenate(predictions))
    _restore([encoder], saved)
    return score


def _finite_labels(batch) -> tuple[np.ndarray, np.ndarray]:
    """Batch labels as float plus a finite-row (labeled) mask."""
    labels = np.asarray(batch.labels())
    if labels.dtype.kind not in "fc":
        labels = labels.astype(np.float64)
    return labels, np.isfinite(labels)
