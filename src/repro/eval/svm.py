"""Support vector machines (C-SVC via SMO) — the paper's downstream classifier.

The unsupervised protocol of GraphCL/SGCL feeds frozen graph embeddings to a
non-linear SVM with 10-fold cross-validation. scikit-learn is unavailable
here, so this module implements a binary C-SVC with the (simplified) SMO
algorithm of Platt (1998), RBF and linear kernels, and a one-vs-rest
multiclass wrapper.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SVC", "OneVsRestSVC", "rbf_kernel", "linear_kernel"]


def linear_kernel(a: np.ndarray, b: np.ndarray, gamma: float = 1.0) -> np.ndarray:
    return a @ b.T


def rbf_kernel(a: np.ndarray, b: np.ndarray, gamma: float) -> np.ndarray:
    """``exp(-γ ‖a_i − b_j‖²)`` pairwise."""
    sq_a = (a ** 2).sum(axis=1)[:, None]
    sq_b = (b ** 2).sum(axis=1)[None, :]
    d2 = np.maximum(sq_a + sq_b - 2.0 * (a @ b.T), 0.0)
    return np.exp(-gamma * d2)


_KERNELS = {"linear": linear_kernel, "rbf": rbf_kernel}


class SVC:
    """Binary C-SVC trained with simplified SMO.

    Parameters
    ----------
    C:
        Soft-margin penalty.
    kernel:
        ``"rbf"`` (default, the paper's non-linear SVM) or ``"linear"``.
    gamma:
        RBF width; ``"scale"`` uses ``1 / (d · var(X))`` à la scikit-learn.
    max_passes:
        SMO stops after this many consecutive passes without α updates.
    """

    def __init__(self, C: float = 1.0, kernel: str = "rbf",
                 gamma: float | str = "scale", tol: float = 1e-3,
                 max_passes: int = 3, max_iter: int = 200, seed: int = 0):
        if kernel not in _KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}")
        self.C = C
        self.kernel = kernel
        self.gamma = gamma
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.seed = seed
        self._alpha: np.ndarray | None = None
        self._b = 0.0
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._gamma_value = 1.0

    # ------------------------------------------------------------------
    def fit(self, x: np.ndarray, y: np.ndarray) -> "SVC":
        """Fit on features ``x`` and ±1 (or 0/1) labels ``y``."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        y = np.where(y <= 0, -1.0, 1.0)
        n = len(x)
        if self.gamma == "scale":
            variance = x.var()
            self._gamma_value = 1.0 / (x.shape[1] * variance) if variance > 0 else 1.0
        else:
            self._gamma_value = float(self.gamma)
        kernel_matrix = _KERNELS[self.kernel](x, x, self._gamma_value)
        alpha = np.zeros(n)
        b = 0.0
        rng = np.random.default_rng(self.seed)
        passes = 0
        iteration = 0
        while passes < self.max_passes and iteration < self.max_iter:
            iteration += 1
            changed = 0
            for i in range(n):
                e_i = float((alpha * y) @ kernel_matrix[:, i] + b - y[i])
                violates = ((y[i] * e_i < -self.tol and alpha[i] < self.C)
                            or (y[i] * e_i > self.tol and alpha[i] > 0))
                if not violates:
                    continue
                j = int(rng.integers(n - 1))
                if j >= i:
                    j += 1
                e_j = float((alpha * y) @ kernel_matrix[:, j] + b - y[j])
                alpha_i_old, alpha_j_old = alpha[i], alpha[j]
                if y[i] != y[j]:
                    low = max(0.0, alpha[j] - alpha[i])
                    high = min(self.C, self.C + alpha[j] - alpha[i])
                else:
                    low = max(0.0, alpha[i] + alpha[j] - self.C)
                    high = min(self.C, alpha[i] + alpha[j])
                if low == high:
                    continue
                eta = 2.0 * kernel_matrix[i, j] - kernel_matrix[i, i] \
                    - kernel_matrix[j, j]
                if eta >= 0:
                    continue
                alpha[j] -= y[j] * (e_i - e_j) / eta
                alpha[j] = np.clip(alpha[j], low, high)
                if abs(alpha[j] - alpha_j_old) < 1e-7:
                    continue
                alpha[i] += y[i] * y[j] * (alpha_j_old - alpha[j])
                b1 = (b - e_i - y[i] * (alpha[i] - alpha_i_old) * kernel_matrix[i, i]
                      - y[j] * (alpha[j] - alpha_j_old) * kernel_matrix[i, j])
                b2 = (b - e_j - y[i] * (alpha[i] - alpha_i_old) * kernel_matrix[i, j]
                      - y[j] * (alpha[j] - alpha_j_old) * kernel_matrix[j, j])
                if 0 < alpha[i] < self.C:
                    b = b1
                elif 0 < alpha[j] < self.C:
                    b = b2
                else:
                    b = (b1 + b2) / 2.0
                changed += 1
            passes = passes + 1 if changed == 0 else 0
        self._alpha, self._b = alpha, b
        self._x, self._y = x, y
        return self

    # ------------------------------------------------------------------
    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self._alpha is None:
            raise RuntimeError("SVC is not fitted")
        x = np.asarray(x, dtype=np.float64)
        kernel_matrix = _KERNELS[self.kernel](x, self._x, self._gamma_value)
        return kernel_matrix @ (self._alpha * self._y) + self._b

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.decision_function(x) >= 0).astype(np.int64)


class OneVsRestSVC:
    """Multiclass SVM by one binary C-SVC per class (max decision value wins)."""

    def __init__(self, **svc_kwargs):
        self.svc_kwargs = svc_kwargs
        self._classes: np.ndarray | None = None
        self._models: list[SVC] = []

    def fit(self, x: np.ndarray, y: np.ndarray) -> "OneVsRestSVC":
        y = np.asarray(y)
        self._classes = np.unique(y)
        self._models = []
        for cls in self._classes:
            model = SVC(**self.svc_kwargs)
            model.fit(x, (y == cls).astype(np.float64))
            self._models.append(model)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._classes is None:
            raise RuntimeError("OneVsRestSVC is not fitted")
        if len(self._classes) == 1:
            return np.full(len(x), self._classes[0])
        scores = np.column_stack([m.decision_function(x) for m in self._models])
        return self._classes[np.argmax(scores, axis=1)]
