"""Evaluation substrate: classifiers, metrics, downstream protocols."""

from .svm import SVC, OneVsRestSVC, linear_kernel, rbf_kernel
from .linear_model import LogisticRegression
from .metrics import accuracy, mean_std, multitask_roc_auc, roc_auc
from .node_probe import embed_nodes, node_linear_probe
from .protocol import (
    cross_validated_accuracy,
    embed_dataset,
    finetune_classifier,
    finetune_multitask,
)

__all__ = [
    "SVC",
    "OneVsRestSVC",
    "rbf_kernel",
    "linear_kernel",
    "LogisticRegression",
    "accuracy",
    "roc_auc",
    "multitask_roc_auc",
    "mean_std",
    "embed_dataset",
    "cross_validated_accuracy",
    "finetune_multitask",
    "finetune_classifier",
    "embed_nodes",
    "node_linear_probe",
]
