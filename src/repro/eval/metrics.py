"""Evaluation metrics: accuracy, ROC-AUC, masked multi-task ROC-AUC."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "roc_auc", "multitask_roc_auc", "mean_std"]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true, y_pred = np.asarray(y_true), np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch between labels and predictions")
    return float((y_true == y_pred).mean())


def roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Binary ROC-AUC via the rank statistic (ties share rank).

    ``AUC = (Σ ranks of positives − n⁺(n⁺+1)/2) / (n⁺ n⁻)``. Returns NaN if
    only one class is present (the caller averages over valid tasks).
    """
    y_true = np.asarray(y_true).astype(np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    positives = int(y_true.sum())
    negatives = len(y_true) - positives
    if positives == 0 or negatives == 0:
        return float("nan")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(len(scores), dtype=np.float64)
    sorted_scores = scores[order]
    i = 0
    while i < len(scores):
        j = i
        while j + 1 < len(scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    positive_rank_sum = ranks[y_true == 1].sum()
    return float((positive_rank_sum - positives * (positives + 1) / 2.0)
                 / (positives * negatives))


def multitask_roc_auc(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Mean ROC-AUC over tasks, skipping missing (NaN) labels per task.

    The MoleculeNet evaluation convention: each column is a binary task;
    NaN entries are excluded; single-class tasks are skipped.
    """
    y_true = np.atleast_2d(np.asarray(y_true, dtype=np.float64))
    scores = np.atleast_2d(np.asarray(scores, dtype=np.float64))
    if y_true.shape != scores.shape:
        raise ValueError("shape mismatch between labels and scores")
    aucs = []
    for task in range(y_true.shape[1]):
        valid = ~np.isnan(y_true[:, task])
        if valid.sum() < 2:
            continue
        value = roc_auc(y_true[valid, task], scores[valid, task])
        if not np.isnan(value):
            aucs.append(value)
    if not aucs:
        return float("nan")
    return float(np.mean(aucs))


def mean_std(values) -> tuple[float, float]:
    """Mean and (population) std of a sequence — the paper's `x ± y` cells."""
    arr = np.asarray(list(values), dtype=np.float64)
    return float(arr.mean()), float(arr.std())
