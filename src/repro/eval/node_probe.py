"""Node-level linear probe for subgraph-sampled pre-training.

The graph-level protocols score pooled embeddings; the node-level
workload is scored by how linearly separable per-node embeddings are.
A node's probe embedding is the same object the serving path returns —
the pooled readout of its deterministic ego-net
(:func:`repro.sampling.ego_subgraph`) — so the probe measures exactly
the representation the fleet serves, and a probe run can share the
service's content-addressed cache with production traffic.
"""

from __future__ import annotations

import numpy as np

from ..graph import Batch
from ..obs import current
from ..tensor import no_grad
from .linear_model import LogisticRegression
from .metrics import accuracy

__all__ = ["embed_nodes", "node_linear_probe"]


def embed_nodes(encoder, dataset, node_ids, *, seed: int = 0, hops: int = 2,
                fanout: int = 10, batch_size: int = 64,
                service=None) -> np.ndarray:
    """Frozen per-node embeddings (one row per id, request order).

    Each id resolves to its seeded ego-net, pooled by the encoder in eval
    mode under ``no_grad``. Passing a :class:`repro.serve.
    EmbeddingService` (or a fleet router) routes through its cache
    instead; ``encoder`` is ignored in that case.
    """
    from ..sampling import ego_subgraph

    node_ids = np.atleast_1d(np.asarray(node_ids, dtype=np.int64))
    graphs = [ego_subgraph(dataset, node_id, seed=seed, hops=hops,
                           fanout=fanout) for node_id in node_ids]
    if service is not None:
        return service.embed(graphs)
    encoder.eval()
    chunks = []
    with no_grad(), current().span("eval/embed_nodes"):
        for start in range(0, len(graphs), batch_size):
            batch = Batch(graphs[start:start + batch_size])
            chunks.append(encoder.graph_representations(batch).data)
    encoder.train()
    return np.concatenate(chunks, axis=0)


def node_linear_probe(encoder, dataset, *, num_nodes: int = 1000,
                      train_fraction: float = 0.5, seed: int = 0,
                      hops: int = 2, fanout: int = 10,
                      service=None) -> dict[str, float]:
    """Logistic-regression probe on frozen per-node embeddings.

    Draws ``num_nodes`` distinct nodes with ``default_rng(seed)``, splits
    them ``train_fraction`` / rest, standardises with train statistics
    only and fits :class:`LogisticRegression` on the train labels.
    Returns ``{"accuracy", "train_accuracy", "num_train", "num_test"}``.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    num_nodes = min(num_nodes, dataset.num_nodes)
    chosen = rng.choice(dataset.num_nodes, size=num_nodes, replace=False)
    # Unlabeled nodes (NaN label) can't supervise or score the probe;
    # drop them before splitting so both halves are fully labeled.
    chosen_labels = np.asarray(dataset.y[chosen], dtype=np.float64)
    finite = np.isfinite(chosen_labels)
    if not finite.all():
        chosen = chosen[finite]
        num_nodes = len(chosen)
        if num_nodes < 2:
            raise ValueError("fewer than 2 labeled nodes drawn; "
                             "cannot fit the probe")
    split = max(1, int(round(num_nodes * train_fraction)))
    split = min(split, num_nodes - 1)
    train_ids, test_ids = chosen[:split], chosen[split:]
    embeddings = embed_nodes(encoder, dataset, chosen, seed=seed, hops=hops,
                             fanout=fanout, service=service)
    labels = dataset.y[chosen]
    with current().span("eval/node_probe"):
        mu = embeddings[:split].mean(axis=0)
        sigma = embeddings[:split].std(axis=0) + 1e-8
        train_x = (embeddings[:split] - mu) / sigma
        test_x = (embeddings[split:] - mu) / sigma
        model = LogisticRegression(C=1.0)
        model.fit(train_x, labels[:split])
        return {
            "accuracy": accuracy(labels[split:], model.predict(test_x)),
            "train_accuracy": accuracy(labels[:split],
                                       model.predict(train_x)),
            "num_train": int(len(train_ids)),
            "num_test": int(len(test_ids)),
        }
