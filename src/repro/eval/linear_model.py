"""Multinomial logistic regression via L-BFGS (fast CPU classifier option).

Wide benchmark sweeps evaluate hundreds of embedding tables; the SMO SVM is
protocol-faithful but slow, so the harness can switch to this classifier
(``classifier="logreg"``) — standard practice in GCL evaluation code
(e.g. InfoGraph's released evaluation uses LogisticRegression too).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

__all__ = ["LogisticRegression"]


class LogisticRegression:
    """Softmax regression with L2 penalty, optimised by L-BFGS.

    Parameters
    ----------
    C:
        Inverse regularisation strength (scikit-learn convention).
    max_iter:
        L-BFGS iteration budget.
    """

    def __init__(self, C: float = 1.0, max_iter: int = 200):
        self.C = C
        self.max_iter = max_iter
        self._weights: np.ndarray | None = None
        self._classes: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        self._classes = np.unique(y)
        n_classes = len(self._classes)
        index = np.searchsorted(self._classes, y)
        n, d = x.shape
        x_bias = np.concatenate([x, np.ones((n, 1))], axis=1)

        if n_classes == 1:
            self._weights = np.zeros((d + 1, 1))
            return self

        def objective(flat: np.ndarray):
            weights = flat.reshape(d + 1, n_classes)
            logits = x_bias @ weights
            logits -= logits.max(axis=1, keepdims=True)
            exp = np.exp(logits)
            probs = exp / exp.sum(axis=1, keepdims=True)
            log_likelihood = np.log(probs[np.arange(n), index] + 1e-12).sum()
            penalty = 0.5 / self.C * (weights[:-1] ** 2).sum()
            loss = -log_likelihood / n + penalty
            grad_logits = probs.copy()
            grad_logits[np.arange(n), index] -= 1.0
            grad = x_bias.T @ grad_logits / n
            grad[:-1] += weights[:-1] / self.C
            return loss, grad.ravel()

        result = optimize.minimize(
            objective, np.zeros((d + 1) * n_classes), jac=True,
            method="L-BFGS-B", options={"maxiter": self.max_iter})
        self._weights = result.x.reshape(d + 1, n_classes)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("LogisticRegression is not fitted")
        x = np.asarray(x, dtype=np.float64)
        x_bias = np.concatenate([x, np.ones((len(x), 1))], axis=1)
        return x_bias @ self._weights

    def predict(self, x: np.ndarray) -> np.ndarray:
        if len(self._classes) == 1:
            return np.full(len(x), self._classes[0])
        return self._classes[np.argmax(self.decision_function(x), axis=1)]
