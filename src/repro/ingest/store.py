"""Append-only versioned dataset store with crash-safe commits.

A :class:`DatasetStore` turns a directory into a stream-ingestable,
versioned graph corpus:

    <root>/batches/batch-<fingerprint>.npz   content-addressed batch data
    <root>/manifests/v000001.json            one manifest per version
    <root>/quarantine/                       corrupt/orphan files, kept

Every :meth:`append` writes the batch file first (content-addressed by
:func:`repro.obs.dataset_fingerprint`, so a retry after a crash rewrites
identical bytes), then atomically renames the version manifest into
place — **the manifest rename is the commit point**. Both writes go
through :func:`repro.data.io.atomic_write` with fsync-before-rename, so
a committed version survives power loss and a crash at any instant
leaves either the previous version or the new one, never a torn state.

Manifests form a hash chain: each carries its batch's content
fingerprint and a version fingerprint derived from the parent's, so
:meth:`resolve` can verify the whole lineage cheaply. Corrupt manifests
or batch files are moved to ``quarantine/`` (never deleted — they are
evidence) and resolution falls back to the newest intact version.
Re-ingesting a batch whose fingerprint is already in the chain is a
no-op by default (``dedupe=True``), which is what makes a crashed-and-
restarted ingest driver idempotent.

Graphs carry an identity: ``graph.meta["graph_id"]`` if present, else an
implicit ``"v<version>:<index>"``. A later batch may re-submit an id
with different content — :meth:`load` dedupes by id with the **latest
revision winning**, and :meth:`superseded_digests` lists exactly the old
digests a refresh must invalidate from serving caches (unchanged graphs
keep their warm entries).
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path

from ..data import GraphDataset
from ..data.io import atomic_write, load_saved_dataset, save_dataset
from ..obs import current, dataset_fingerprint
from ..serve.service import graph_digest
from ..validate.faults import crash_point
from .drift import combine_statistics, corpus_statistics

__all__ = ["DatasetStore", "StoreCorruptionError"]

_FORMAT = 1
_GENESIS = "0" * 16


class StoreCorruptionError(RuntimeError):
    """A committed batch or manifest failed its integrity check."""


def _chain_fingerprint(parent_fingerprint: str, batch_fingerprint: str) -> str:
    digest = hashlib.sha256(
        f"{parent_fingerprint}:{batch_fingerprint}".encode())
    return digest.hexdigest()[:16]


class DatasetStore:
    """Versioned, append-only on-disk corpus (see module docstring)."""

    def __init__(self, root: str | Path, *, observer=None):
        self.root = Path(root)
        self.batches_dir = self.root / "batches"
        self.manifests_dir = self.root / "manifests"
        self.quarantine_dir = self.root / "quarantine"
        self._observer = observer

    def _obs(self):
        return self._observer if self._observer is not None else current()

    # ------------------------------------------------------------------
    # Paths and raw access
    # ------------------------------------------------------------------
    def manifest_path(self, version: int) -> Path:
        return self.manifests_dir / f"v{version:06d}.json"

    def batch_path(self, batch_fingerprint: str) -> Path:
        return self.batches_dir / f"batch-{batch_fingerprint}.npz"

    def versions(self) -> list[int]:
        """Committed version ids, ascending (unparseable names skipped)."""
        if not self.manifests_dir.is_dir():
            return []
        found = []
        for path in self.manifests_dir.glob("v*.json"):
            try:
                found.append(int(path.stem[1:]))
            except ValueError:
                continue
        return sorted(found)

    def manifest(self, version: int) -> dict:
        """Parsed manifest of ``version`` (raises on missing/corrupt)."""
        path = self.manifest_path(version)
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreCorruptionError(
                f"manifest {path} is missing or corrupt: {exc}") from exc
        if manifest.get("format") != _FORMAT \
                or manifest.get("version") != version:
            raise StoreCorruptionError(
                f"manifest {path} is inconsistent "
                f"(format={manifest.get('format')}, "
                f"version={manifest.get('version')})")
        return manifest

    # ------------------------------------------------------------------
    # Quarantine
    # ------------------------------------------------------------------
    def _quarantine(self, path: Path, reason: str) -> None:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        stamp = 0
        while target.exists():
            stamp += 1
            target = self.quarantine_dir / f"{path.name}.{stamp}"
        path.replace(target)
        self._obs().increment("ingest/quarantined")
        self._obs().event("quarantine", file=str(path), reason=reason)

    def recover(self) -> dict:
        """Quarantine files a crash may have left half-adopted.

        Orphan batch files (written but never referenced by a committed
        manifest — a crash between the batch write and the manifest
        rename) are quarantined; re-ingesting the same graphs rewrites
        identical bytes, so nothing is lost. Corrupt manifests at the
        head of the chain are quarantined by :meth:`resolve`; this
        method sweeps the batch side and reports both.
        """
        referenced = set()
        corrupt_manifests = []
        for version in self.versions():
            try:
                referenced.add(self.manifest(version)["batch"])
            except StoreCorruptionError:
                path = self.manifest_path(version)
                self._quarantine(path, "unreadable manifest")
                corrupt_manifests.append(path.name)
        orphans = []
        if self.batches_dir.is_dir():
            for path in sorted(self.batches_dir.glob("batch-*.npz")):
                if path.name not in referenced:
                    orphans.append(path.name)
                    self._quarantine(path, "orphan batch (no manifest)")
        return {"quarantined_batches": orphans,
                "quarantined_manifests": corrupt_manifests}

    # ------------------------------------------------------------------
    # Commit path
    # ------------------------------------------------------------------
    def append(self, graphs, *, name: str = "stream",
               num_classes: int | None = None, task: str = "classification",
               generator=None, cache=None, workers: int | None = None,
               dedupe: bool = True) -> tuple[dict, bool]:
        """Commit ``graphs`` as a new version; returns ``(manifest, created)``.

        The batch's statistics accumulator (and, with a ``generator``,
        its ``K_V`` moments) is computed before anything touches disk,
        then: batch file write → manifest rename (the commit). If
        ``dedupe`` and the batch's content fingerprint already appears in
        the chain, the existing manifest is returned with
        ``created=False`` — re-running an interrupted ingest is
        therefore idempotent.
        """
        graphs = list(graphs)
        if not graphs:
            raise ValueError("append requires at least one graph")
        batch_fp = dataset_fingerprint(graphs)
        versions = self.versions()
        parent_manifest = self.resolve(verify=False) if versions else None
        parent = parent_manifest["version"] if parent_manifest else 0
        if dedupe and parent_manifest is not None:
            for entry in self.chain(parent):
                if entry["batch_fingerprint"] == batch_fp:
                    return entry, False
        version = parent + 1
        parent_fp = parent_manifest["fingerprint"] if parent_manifest \
            else _GENESIS
        statistics = corpus_statistics(graphs, generator=generator,
                                       cache=cache, workers=workers)
        cumulative = statistics if parent_manifest is None else \
            combine_statistics(parent_manifest["cumulative_statistics"],
                               statistics)
        if num_classes is None:
            labels = [g.y for g in graphs if g.y is not None]
            num_classes = len({int(y) for y in labels
                               if isinstance(y, (int, float))}) or 1
        manifest = {
            "format": _FORMAT,
            "version": version,
            "parent": parent,
            "parent_fingerprint": parent_fp,
            "fingerprint": _chain_fingerprint(parent_fp, batch_fp),
            "batch": self.batch_path(batch_fp).name,
            "batch_fingerprint": batch_fp,
            "num_graphs": len(graphs),
            "total_graphs": (parent_manifest["total_graphs"]
                             if parent_manifest else 0) + len(graphs),
            "graphs": [
                {"id": str(g.meta.get("graph_id", f"v{version}:{i}")),
                 "digest": graph_digest(g)}
                for i, g in enumerate(graphs)],
            "statistics": statistics,
            "cumulative_statistics": cumulative,
            "name": name,
            "num_classes": num_classes,
            "task": task,
            "num_features": statistics["feature_dim"],
            "created": time.time(),
        }
        crash_point("ingest/before_batch_write")
        batch_file = self.batch_path(batch_fp)
        if not batch_file.exists():
            save_dataset(GraphDataset(name, graphs, num_classes, task),
                         batch_file)
        crash_point("ingest/batch_written")
        with atomic_write(self.manifest_path(version)) as tmp:
            tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        crash_point("ingest/committed")
        obs = self._obs()
        obs.increment("ingest/batches")
        obs.increment("ingest/graphs", len(graphs))
        obs.event("ingest_commit", version=version, graphs=len(graphs),
                  fingerprint=manifest["fingerprint"])
        return manifest, True

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def resolve(self, version: int | None = None, *,
                verify: bool = True) -> dict:
        """Newest intact manifest (or the one for ``version``).

        With ``verify`` the candidate's lineage is checked — every
        ancestor manifest must parse, parent links and the fingerprint
        chain must be consistent, and every referenced batch file must
        exist. A corrupt *head* is quarantined and resolution falls back
        to the previous version; a corrupt *interior* manifest means
        committed data is unreachable and raises
        :class:`StoreCorruptionError`.
        """
        versions = self.versions()
        if version is not None:
            if version not in versions:
                raise KeyError(f"no committed version {version} "
                               f"(have {versions})")
            candidates = [version]
        else:
            candidates = list(reversed(versions))
        last_error: Exception | None = None
        for candidate in candidates:
            try:
                manifest = self.manifest(candidate)
                if verify:
                    self._verify_chain(manifest)
            except StoreCorruptionError as exc:
                last_error = exc
                if version is None and candidate == max(versions):
                    head = self.manifest_path(candidate)
                    if head.exists():
                        try:
                            self.manifest(candidate)
                        except StoreCorruptionError:
                            self._quarantine(head, str(exc))
                continue
            return manifest
        if last_error is not None:
            raise StoreCorruptionError(
                f"no intact version found: {last_error}") from last_error
        raise FileNotFoundError(f"store {self.root} has no committed versions")

    def _verify_chain(self, manifest: dict) -> None:
        entry = manifest
        while True:
            if not self.batch_path(entry["batch_fingerprint"]).exists():
                raise StoreCorruptionError(
                    f"version {entry['version']} references missing batch "
                    f"{entry['batch']}")
            expected = _chain_fingerprint(entry["parent_fingerprint"],
                                          entry["batch_fingerprint"])
            if entry["fingerprint"] != expected:
                raise StoreCorruptionError(
                    f"version {entry['version']} fingerprint mismatch "
                    f"({entry['fingerprint']} != {expected})")
            if entry["parent"] == 0:
                if entry["parent_fingerprint"] != _GENESIS:
                    raise StoreCorruptionError(
                        f"version {entry['version']} claims genesis with "
                        f"parent fingerprint {entry['parent_fingerprint']}")
                return
            parent = self.manifest(entry["parent"])
            if parent["fingerprint"] != entry["parent_fingerprint"]:
                raise StoreCorruptionError(
                    f"version {entry['version']} parent fingerprint does "
                    f"not match version {parent['version']}")
            entry = parent

    def chain(self, version: int) -> list[dict]:
        """Manifests from version 1 up to ``version``, in commit order."""
        entries = []
        entry = self.manifest(version)
        while True:
            entries.append(entry)
            if entry["parent"] == 0:
                break
            entry = self.manifest(entry["parent"])
        return list(reversed(entries))

    def _load_batch(self, entry: dict) -> list:
        path = self.batch_path(entry["batch_fingerprint"])
        try:
            graphs = load_saved_dataset(path).graphs
        except Exception as exc:  # noqa: BLE001 — any unreadable batch is corrupt
            self._quarantine(path, f"unreadable batch: {exc}")
            raise StoreCorruptionError(
                f"batch {path.name} of version {entry['version']} is "
                f"unreadable; quarantined") from exc
        if dataset_fingerprint(graphs) != entry["batch_fingerprint"]:
            self._quarantine(path, "batch content fingerprint mismatch")
            raise StoreCorruptionError(
                f"batch {path.name} content does not match its committed "
                f"fingerprint; quarantined")
        return graphs

    def load(self, version: int | None = None, *,
             window: int | None = None, verify: bool = True) -> GraphDataset:
        """Materialise a version as a :class:`GraphDataset`.

        Batches are loaded in commit order and deduplicated by graph id
        (**latest revision wins**), so re-submitted graphs appear once,
        with their newest content. ``window`` keeps only the last N
        batches — the "new + recent old data" a refresh fine-tunes on.
        Every loaded batch is re-fingerprinted; silent corruption
        quarantines the file and raises :class:`StoreCorruptionError`.
        """
        manifest = self.resolve(version, verify=verify)
        entries = self.chain(manifest["version"])
        if window is not None:
            if window < 1:
                raise ValueError(f"window must be >= 1, got {window}")
            entries = entries[-window:]
        by_id: dict[str, object] = {}
        for entry in entries:
            graphs = self._load_batch(entry)
            for meta, graph in zip(entry["graphs"], graphs):
                by_id[meta["id"]] = graph
        return GraphDataset(
            f"{manifest['name']}-v{manifest['version']:06d}",
            list(by_id.values()), manifest["num_classes"], manifest["task"])

    # ------------------------------------------------------------------
    def id_digests(self, version: int) -> dict[str, str]:
        """graph id → serving digest, after latest-revision dedupe."""
        mapping: dict[str, str] = {}
        for entry in self.chain(version):
            for meta in entry["graphs"]:
                mapping[meta["id"]] = meta["digest"]
        return mapping

    def superseded_digests(self, old_version: int,
                           new_version: int) -> list[str]:
        """Digests served under ``old_version`` that ``new_version`` replaced.

        Exactly the cache entries a refresh must invalidate: ids whose
        content changed between the two versions contribute their *old*
        digest; unchanged graphs (same id, same digest) contribute
        nothing and keep their warm cache rows.
        """
        old = self.id_digests(old_version)
        new = self.id_digests(new_version)
        return sorted(old[gid] for gid in old
                      if gid in new and new[gid] != old[gid])

    def stats(self) -> dict:
        """Store-level summary for CLIs and reports."""
        versions = self.versions()
        if not versions:
            return {"versions": 0, "total_graphs": 0, "latest": None}
        manifest = self.resolve(verify=False)
        quarantined = sum(1 for _ in self.quarantine_dir.iterdir()) \
            if self.quarantine_dir.is_dir() else 0
        return {
            "versions": len(versions),
            "latest": manifest["version"],
            "fingerprint": manifest["fingerprint"],
            "total_graphs": manifest["total_graphs"],
            "distinct_graphs": len(self.id_digests(manifest["version"])),
            "quarantined": quarantined,
        }
