"""Incremental model refresh: fine-tune, register, swap — crash-safe.

When drift crosses the refresh threshold, :class:`RefreshController`
turns the latest committed dataset version into a new model version:

1. **Plan** — a ``REFRESH.json`` work plan (target epochs, parent model,
   dataset version) is written *before* any training, so a restarted
   refresh finishes the same plan instead of inventing a new one.
2. **Fine-tune** — the trainer resumes from the work directory's latest
   valid checkpoint if one exists (bit-identical resume, PR 5), else
   starts from the live model's registered checkpoint, else from
   scratch. Training runs one epoch per :meth:`SGCLTrainer.pretrain`
   call under :func:`~repro.resilience.interrupt_guard`, checkpointing
   every epoch — a SIGKILL at any instant loses at most one epoch.
3. **Register** — the trained state (including optimiser moments and
   RNG streams, via :func:`register_trainer`) becomes
   ``<base>-v<dataset version>`` in the :class:`ModelRegistry`.
4. **Swap** — with a fleet attached, the new version canaries onto every
   replica at full slice and is promoted atomically between requests;
   only the digests whose graphs changed between the old and new dataset
   versions are invalidated (:meth:`DatasetStore.superseded_digests`).
   Until the promote, every row keeps being served by the old version —
   never a mix.
5. **Go live** — ``LIVE.json`` (atomic rename, the refresh's commit
   point) records the new model, dataset version and training-corpus
   statistics; drift detection for subsequent batches keys off it.

Named :func:`~repro.validate.faults.crash_point` hooks between every
stage let the chaos suite SIGKILL the loop anywhere and assert the
restart invariants.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from ..core.config import SGCLConfig
from ..core.trainer import SGCLTrainer
from ..data.io import atomic_write
from ..obs import current
from ..resilience import find_latest_checkpoint, interrupt_guard
from ..runtime import PrecomputeCache
from ..serve import load_checkpoint, load_trainer
from ..serve.service import EmbeddingService
from ..validate.faults import crash_point
from .drift import corpus_statistics
from .store import DatasetStore

__all__ = ["RefreshController", "RefreshOutcome", "register_trainer",
           "read_live", "write_live", "swap_fleet"]

_LIVE = "LIVE.json"
_PLAN = "REFRESH.json"


def read_live(root: str | Path) -> dict | None:
    """The live pointer of a store root, or None before the first refresh."""
    path = Path(root) / _LIVE
    if not path.exists():
        return None
    return json.loads(path.read_text())


def write_live(root: str | Path, payload: dict) -> Path:
    """Atomically replace the live pointer (fsynced rename commit)."""
    path = Path(root) / _LIVE
    with atomic_write(path) as tmp:
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def register_trainer(registry, name: str, trainer: SGCLTrainer, *,
                     metadata: dict | None = None) -> Path:
    """Register a trainer's full state (not just the model) under ``name``.

    :meth:`ModelRegistry.register` persists model + config + optimiser
    but not the trainer's RNG streams; a refresh registered that way
    could not be resumed bit-identically. This helper writes through
    :meth:`SGCLTrainer.save_checkpoint` (which carries the RNG state and
    history) to the registry's path and evicts any memoised service for
    the name. Overwriting is deliberate: a restarted refresh re-registers
    the identical trained state.
    """
    path = registry.path(name)
    trainer.save_checkpoint(path, metadata={"name": name, **(metadata or {})})
    registry.evict(name)
    return path


def swap_fleet(router, checkpoint: str | Path, version: str, *,
               superseded=()) -> int:
    """Hot-swap a fleet to ``version`` with selective cache invalidation.

    The checkpoint bundle is read once; each replica gets its own
    encoder/service (mirroring :func:`~repro.fleet.build_fleet`). The
    canary covers the full digest slice and is promoted immediately —
    the promote is atomic between requests, so no request ever sees two
    versions. Caches are content-addressed by graph digest, so a changed
    graph's *new* digest can never hit a stale row; the ``superseded``
    (old) digests are dead weight and are evicted from the still-serving
    replicas **before** the swap — exactly the changed graphs' entries,
    nothing else. Returns the number of cache rows invalidated.
    """
    superseded = list(superseded)
    invalidated = router.invalidate(superseded) if superseded else 0
    bundle = load_checkpoint(checkpoint)
    router.deploy_canary(lambda: EmbeddingService(bundle.build_encoder()),
                         version, 1.0)
    router.promote()
    return invalidated


@dataclass
class RefreshOutcome:
    """What one :meth:`RefreshController.refresh` call did."""

    model: str | None
    dataset_version: int
    epochs_trained: int
    resumed: bool = False
    interrupted: bool = False
    skipped: bool = False
    invalidated: int = 0
    checkpoint: str | None = None

    def to_dict(self) -> dict:
        return dict(self.__dict__)


class RefreshController:
    """Drive fine-tune → register → swap → go-live for a dataset store.

    Parameters
    ----------
    store:
        The :class:`DatasetStore` being served.
    registry:
        :class:`~repro.serve.ModelRegistry` receiving refreshed models.
    model_base:
        Model names are ``<model_base>-v<dataset version>``.
    epochs:
        Fine-tune epochs per refresh (on top of the parent model's
        history).
    window:
        Train on the last N batches only (None = the whole corpus);
        dedupe by graph id applies either way.
    config:
        :class:`SGCLConfig` for from-scratch bootstraps (ignored when a
        parent model exists — its checkpointed config wins).
    router:
        Optional :class:`~repro.fleet.FleetRouter` to hot-swap after
        registration.
    """

    def __init__(self, store: DatasetStore, registry, *,
                 model_base: str = "sgcl", epochs: int = 2,
                 window: int | None = None,
                 config: SGCLConfig | None = None,
                 router=None, observer=None):
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        self.store = store
        self.registry = registry
        self.model_base = model_base
        self.epochs = epochs
        self.window = window
        self.config = config
        self.router = router
        self._observer = observer

    def _obs(self):
        return self._observer if self._observer is not None else current()

    def live(self) -> dict | None:
        return read_live(self.store.root)

    def model_name(self, dataset_version: int) -> str:
        return f"{self.model_base}-v{dataset_version:06d}"

    # ------------------------------------------------------------------
    def _work_dir(self, dataset_version: int) -> Path:
        return self.store.root / "refresh" / f"v{dataset_version:06d}"

    def _plan(self, work_dir: Path, *, dataset_version: int,
              parent_model: str | None, base_epochs: int) -> dict:
        """Read the existing work plan, or commit a fresh one.

        The plan pins the epoch target before the first epoch trains, so
        a refresh killed and restarted N times still trains to exactly
        the same total — the property the bit-identical-resume assertion
        rests on.
        """
        path = work_dir / _PLAN
        if path.exists():
            return json.loads(path.read_text())
        plan = {
            "model": self.model_name(dataset_version),
            "dataset_version": dataset_version,
            "parent_model": parent_model,
            "base_epochs": base_epochs,
            "target_epochs": base_epochs + self.epochs,
        }
        with atomic_write(path) as tmp:
            tmp.write_text(json.dumps(plan, indent=2, sort_keys=True))
        return plan

    # ------------------------------------------------------------------
    def refresh(self, version: int | None = None, *,
                force: bool = False) -> RefreshOutcome:
        """Refresh the live model onto dataset ``version`` (default: newest).

        No-ops (``skipped=True``) when the live model already covers the
        target version, unless ``force``. Crash-safe and idempotent —
        call it again after any interruption and it finishes the same
        plan.
        """
        obs = self._obs()
        manifest = self.store.resolve(version)
        target = manifest["version"]
        live = self.live()
        if live is not None and live["dataset_version"] >= target \
                and not force:
            return RefreshOutcome(model=live["model"], dataset_version=target,
                                  epochs_trained=0, skipped=True)
        name = self.model_name(target)
        work_dir = self._work_dir(target)
        work_dir.mkdir(parents=True, exist_ok=True)
        parent_model = live["model"] if live is not None else None

        resumed = False
        checkpoint = find_latest_checkpoint(work_dir)
        if checkpoint is not None:
            trainer = SGCLTrainer.from_checkpoint(checkpoint)
            resumed = True
            obs.event("refresh_resume", checkpoint=str(checkpoint),
                      epochs_done=len(trainer.history))
        elif parent_model is not None and parent_model in self.registry:
            trainer = load_trainer(self.registry.path(parent_model))
        else:
            parent_model = None
            config = self.config if self.config is not None else SGCLConfig()
            trainer = SGCLTrainer(manifest["num_features"], config)
        plan = self._plan(work_dir, dataset_version=target,
                          parent_model=parent_model,
                          base_epochs=len(trainer.history))
        dataset = self.store.load(target, window=self.window)
        start_epochs = len(trainer.history)
        with obs.span("ingest/refresh"), \
                interrupt_guard(on_interrupt=trainer.request_stop) as state:
            while len(trainer.history) < plan["target_epochs"]:
                if state.interrupted:
                    break
                trainer.pretrain(dataset.graphs, epochs=1,
                                 checkpoint_dir=work_dir)
                crash_point("refresh/epoch")
        epochs_trained = len(trainer.history) - start_epochs
        obs.increment("ingest/refresh_epochs", epochs_trained)
        if state.interrupted or len(trainer.history) < plan["target_epochs"]:
            obs.event("refresh_interrupted", model=name,
                      epochs_done=len(trainer.history),
                      target=plan["target_epochs"])
            return RefreshOutcome(model=None, dataset_version=target,
                                  epochs_trained=epochs_trained,
                                  resumed=resumed, interrupted=True)
        crash_point("refresh/trained")

        path = register_trainer(self.registry, name, trainer, metadata={
            "dataset_version": target,
            "dataset_fingerprint": manifest["fingerprint"],
            "parent_model": plan["parent_model"],
            "refresh_epochs": self.epochs,
        })
        crash_point("refresh/registered")

        invalidated = 0
        if self.router is not None:
            superseded = [] if live is None else \
                self.store.superseded_digests(live["dataset_version"], target)
            invalidated = swap_fleet(self.router, path, name,
                                     superseded=superseded)

        # Reference statistics for future drift checks: the corpus this
        # model actually trained on, with K_V under the *new* generator.
        # The K_V cache is namespaced by the dataset-version fingerprint,
        # so a later refresh on the same graphs can never read this
        # version's constants back (satellite: no stale precomputes).
        cache = PrecomputeCache(self.store.root / "precompute",
                                namespace=manifest["fingerprint"])
        statistics = corpus_statistics(dataset.graphs,
                                       generator=trainer.model.generator,
                                       cache=cache)
        crash_point("refresh/before_live")
        write_live(self.store.root, {
            "model": name,
            "dataset_version": target,
            "fingerprint": manifest["fingerprint"],
            "epochs": len(trainer.history),
            "statistics": statistics,
            "updated": time.time(),
        })
        crash_point("refresh/live_written")
        obs.increment("ingest/refreshes")
        obs.event("refresh_live", model=name, dataset_version=target,
                  epochs=len(trainer.history), invalidated=invalidated)
        return RefreshOutcome(model=name, dataset_version=target,
                              epochs_trained=epochs_trained, resumed=resumed,
                              invalidated=invalidated,
                              checkpoint=str(path))
