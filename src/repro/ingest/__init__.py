"""Continuous learning: crash-safe ingest, drift detection, refresh.

Production corpora arrive as a stream; this package closes the loop from
new data to a refreshed serving fleet without ever losing a committed
batch or serving mixed model versions:

* :class:`DatasetStore` — append-only versioned corpus with atomic,
  fsynced manifest commits, content-addressed batches, a fingerprint
  chain and quarantine for anything corrupt (see ``store.py``).
* :func:`corpus_statistics` / :class:`DriftDetector` — exact mergeable
  feature/degree/``K_V`` statistics and σ-normalised drift scores
  reported as ``validate/drift_*`` metrics (``drift.py``).
* :class:`RefreshController` — plan-pinned fine-tune from the live
  checkpoint under :func:`~repro.resilience.interrupt_guard`, model
  registration with full trainer state, atomic fleet swap with
  selective cache invalidation, and a ``LIVE.json`` go-live commit
  (``refresh.py``).
* :class:`IngestPipeline` — the validate → commit → drift → refresh
  front door behind ``repro ingest`` / ``repro refresh --watch``
  (``pipeline.py``).

Every stage between two crash points is idempotent, so the whole loop
can be SIGKILLed anywhere and simply re-run — the chaos suite in
``tests/ingest/`` does exactly that. See docs/CONTINUITY.md.
"""

from .drift import (
    DriftDetector,
    DriftReport,
    combine_statistics,
    corpus_statistics,
    summarize_statistics,
)
from .pipeline import IngestPipeline, IngestReport
from .refresh import (
    RefreshController,
    RefreshOutcome,
    read_live,
    register_trainer,
    swap_fleet,
    write_live,
)
from .store import DatasetStore, StoreCorruptionError

__all__ = [
    "DatasetStore",
    "StoreCorruptionError",
    "corpus_statistics",
    "combine_statistics",
    "summarize_statistics",
    "DriftDetector",
    "DriftReport",
    "RefreshController",
    "RefreshOutcome",
    "register_trainer",
    "swap_fleet",
    "read_live",
    "write_live",
    "IngestPipeline",
    "IngestReport",
]
