"""Distribution-drift statistics and detection for streaming graph data.

SGCL's augmentation quality is tied to the data distribution (the
Lipschitz constants *are* a distributional statistic), so a continuously
fed corpus needs a cheap, exact way to notice when incoming batches stop
looking like the data the live model was trained on. This module keeps
three families of statistics per corpus:

* **feature moments** — per-dimension mean/std of node features;
* **degree distribution** — mean/std/max node degree;
* **``K_V`` moments** — mean/std of the per-node Lipschitz constants
  under a frozen generator (the live model's ``f_q``), computed through
  :func:`repro.runtime.precompute_node_constants` so repeated sweeps hit
  the content-addressed cache.

Statistics are stored as **mergeable accumulators** (counts, sums and
sums of squares — all JSON-serialisable floats) rather than derived
moments, so a dataset version's cumulative statistics are the *exact*
combination of its batches' (:func:`combine_statistics`), independent of
batching. :class:`DriftDetector` turns the accumulators into drift
scores — mean shift in reference-σ units plus relative σ change — and
reports them as ``validate/drift_*`` gauges with configurable ``warn``
and ``refresh`` thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs import current

__all__ = ["corpus_statistics", "combine_statistics", "summarize_statistics",
           "DriftDetector", "DriftReport"]

_EPS = 1e-8


def corpus_statistics(graphs, *, generator=None, cache=None,
                      workers: int | None = None) -> dict:
    """Mergeable statistics accumulator for a corpus of graphs.

    With a ``generator`` (a frozen Lipschitz generator, e.g.
    ``trainer.model.generator``) the per-node ``K_V`` moments are
    included, optionally cached through ``cache`` (a
    :class:`~repro.runtime.PrecomputeCache`). All values are plain
    Python floats/lists — the dict round-trips through JSON unchanged.
    """
    graphs = list(graphs)
    if not graphs:
        raise ValueError("corpus_statistics requires at least one graph")
    dim = graphs[0].x.shape[1]
    feature_sum = np.zeros(dim)
    feature_sumsq = np.zeros(dim)
    num_nodes = 0
    degree_sum = 0.0
    degree_sumsq = 0.0
    degree_max = 0.0
    for graph in graphs:
        if graph.x.shape[1] != dim:
            raise ValueError(
                f"feature dimension mismatch: {graph.x.shape[1]} != {dim}")
        x = np.asarray(graph.x, dtype=np.float64)
        feature_sum += x.sum(axis=0)
        feature_sumsq += (x * x).sum(axis=0)
        num_nodes += graph.num_nodes
        degrees = np.asarray(graph.degrees(), dtype=np.float64)
        degree_sum += float(degrees.sum())
        degree_sumsq += float((degrees * degrees).sum())
        if degrees.size:
            degree_max = max(degree_max, float(degrees.max()))
    acc = {
        "num_graphs": len(graphs),
        "num_nodes": int(num_nodes),
        "feature_dim": int(dim),
        "feature_sum": feature_sum.tolist(),
        "feature_sumsq": feature_sumsq.tolist(),
        "degree_sum": degree_sum,
        "degree_sumsq": degree_sumsq,
        "degree_max": degree_max,
        "k_v": None,
    }
    if generator is not None:
        from ..runtime import precompute_node_constants

        constants = precompute_node_constants(generator, graphs,
                                              workers=workers, cache=cache)
        flat = np.concatenate([np.asarray(k, dtype=np.float64).ravel()
                               for k in constants])
        acc["k_v"] = {
            "sum": float(flat.sum()),
            "sumsq": float((flat * flat).sum()),
            "count": int(flat.size),
        }
    return acc


def combine_statistics(a: dict, b: dict) -> dict:
    """Exact merge of two accumulators (as if computed over the union).

    ``K_V`` moments survive the merge only when both sides carry them —
    a partially ``K_V``-annotated corpus would silently bias the moments
    otherwise.
    """
    if a["feature_dim"] != b["feature_dim"]:
        raise ValueError(
            f"cannot combine statistics with feature dims "
            f"{a['feature_dim']} != {b['feature_dim']}")
    merged = {
        "num_graphs": a["num_graphs"] + b["num_graphs"],
        "num_nodes": a["num_nodes"] + b["num_nodes"],
        "feature_dim": a["feature_dim"],
        "feature_sum": (np.asarray(a["feature_sum"])
                        + np.asarray(b["feature_sum"])).tolist(),
        "feature_sumsq": (np.asarray(a["feature_sumsq"])
                          + np.asarray(b["feature_sumsq"])).tolist(),
        "degree_sum": a["degree_sum"] + b["degree_sum"],
        "degree_sumsq": a["degree_sumsq"] + b["degree_sumsq"],
        "degree_max": max(a["degree_max"], b["degree_max"]),
        "k_v": None,
    }
    if a.get("k_v") and b.get("k_v"):
        merged["k_v"] = {
            "sum": a["k_v"]["sum"] + b["k_v"]["sum"],
            "sumsq": a["k_v"]["sumsq"] + b["k_v"]["sumsq"],
            "count": a["k_v"]["count"] + b["k_v"]["count"],
        }
    return merged


def _moments(total: float, sumsq: float, count: float):
    if count <= 0:
        return float("nan"), float("nan")
    mean = total / count
    var = max(0.0, sumsq / count - mean * mean)
    return mean, float(np.sqrt(var))


def summarize_statistics(acc: dict) -> dict:
    """Derived moments (means/stds) of an accumulator, for reports."""
    n = acc["num_nodes"]
    fmean = np.asarray(acc["feature_sum"], dtype=np.float64) / max(n, 1)
    fvar = np.maximum(
        0.0, np.asarray(acc["feature_sumsq"], dtype=np.float64) / max(n, 1)
        - fmean * fmean)
    dmean, dstd = _moments(acc["degree_sum"], acc["degree_sumsq"], n)
    summary = {
        "num_graphs": acc["num_graphs"],
        "num_nodes": acc["num_nodes"],
        "feature_mean": fmean.tolist(),
        "feature_std": np.sqrt(fvar).tolist(),
        "degree_mean": dmean,
        "degree_std": dstd,
        "degree_max": acc["degree_max"],
        "k_v_mean": None,
        "k_v_std": None,
    }
    if acc.get("k_v"):
        kmean, kstd = _moments(acc["k_v"]["sum"], acc["k_v"]["sumsq"],
                               acc["k_v"]["count"])
        summary["k_v_mean"] = kmean
        summary["k_v_std"] = kstd
    return summary


def _shift_score(ref_mean, ref_std, new_mean, new_std) -> float:
    """Mean shift in reference-σ units, plus relative σ change.

    The max of the two legs: ``|Δmean| / (σ_ref + ε)`` catches location
    drift, ``|σ_new/σ_ref − 1|`` catches dispersion drift (a distribution
    can change shape without moving its mean).
    """
    shift = abs(new_mean - ref_mean) / (ref_std + _EPS)
    spread = abs(new_std / (ref_std + _EPS) - 1.0) if ref_std > _EPS \
        else (0.0 if new_std <= _EPS else float("inf"))
    return float(max(shift, spread))


@dataclass
class DriftReport:
    """Outcome of one drift check: per-family scores and a verdict."""

    scores: dict = field(default_factory=dict)
    max_score: float = 0.0
    status: str = "ok"           # "ok" | "warn" | "refresh"
    warn_threshold: float = 0.5
    refresh_threshold: float = 2.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def refresh_due(self) -> bool:
        return self.status == "refresh"

    def to_dict(self) -> dict:
        return {"scores": dict(self.scores), "max_score": self.max_score,
                "status": self.status,
                "warn_threshold": self.warn_threshold,
                "refresh_threshold": self.refresh_threshold}


class DriftDetector:
    """Score incoming-batch statistics against a reference accumulator.

    Parameters
    ----------
    reference:
        Accumulator of the corpus the live model was trained on
        (typically the ``statistics`` block of the live pointer, or a
        manifest's ``cumulative_statistics``).
    warn_threshold / refresh_threshold:
        Score levels at which the verdict becomes ``"warn"`` /
        ``"refresh"``. Scores are σ-normalised, so 0.5 means half a
        reference standard deviation of mean shift (or a 50 % change in
        spread).
    observer:
        Receives the ``validate/drift_*`` gauges and counters; defaults
        to the ambient observer.
    """

    def __init__(self, reference: dict, *, warn_threshold: float = 0.5,
                 refresh_threshold: float = 2.0, observer=None):
        if warn_threshold <= 0 or refresh_threshold <= 0:
            raise ValueError("drift thresholds must be positive")
        if refresh_threshold < warn_threshold:
            raise ValueError(
                f"refresh_threshold ({refresh_threshold}) must be >= "
                f"warn_threshold ({warn_threshold})")
        self.reference = reference
        self.warn_threshold = warn_threshold
        self.refresh_threshold = refresh_threshold
        self._observer = observer

    def _obs(self):
        return self._observer if self._observer is not None else current()

    def check(self, statistics: dict) -> DriftReport:
        """Drift report for a batch accumulator vs. the reference."""
        ref = summarize_statistics(self.reference)
        new = summarize_statistics(statistics)
        ref_fmean = np.asarray(ref["feature_mean"])
        ref_fstd = np.asarray(ref["feature_std"])
        new_fmean = np.asarray(new["feature_mean"])
        new_fstd = np.asarray(new["feature_std"])
        if ref_fmean.shape != new_fmean.shape:
            raise ValueError(
                f"feature dimension mismatch: reference "
                f"{ref_fmean.shape[0]} vs batch {new_fmean.shape[0]}")
        scores = {
            "feature": max(
                _shift_score(ref_fmean[d], ref_fstd[d],
                             new_fmean[d], new_fstd[d])
                for d in range(ref_fmean.shape[0])),
            "degree": _shift_score(ref["degree_mean"], ref["degree_std"],
                                   new["degree_mean"], new["degree_std"]),
        }
        if ref["k_v_mean"] is not None and new["k_v_mean"] is not None:
            scores["kv"] = _shift_score(ref["k_v_mean"], ref["k_v_std"],
                                        new["k_v_mean"], new["k_v_std"])
        max_score = max(scores.values())
        if max_score >= self.refresh_threshold:
            status = "refresh"
        elif max_score >= self.warn_threshold:
            status = "warn"
        else:
            status = "ok"
        obs = self._obs()
        for name, score in scores.items():
            obs.set_gauge(f"validate/drift_{name}", score)
        obs.set_gauge("validate/drift_max", max_score)
        if status == "warn":
            obs.increment("validate/drift_warn")
        elif status == "refresh":
            obs.increment("validate/drift_refresh")
        obs.event("drift", status=status, max_score=max_score,
                  **{f"score_{k}": v for k, v in scores.items()})
        return DriftReport(scores=scores, max_score=max_score, status=status,
                           warn_threshold=self.warn_threshold,
                           refresh_threshold=self.refresh_threshold)
