"""The streaming front door: validate → commit → drift-check → refresh.

:class:`IngestPipeline` is what ``repro ingest`` and ``repro refresh
--watch`` drive: each incoming batch of graphs is structurally validated
(:class:`~repro.validate.DatasetValidator`, invalid graphs dropped and
counted under the configured policy), committed to the
:class:`DatasetStore` (crash-safe, idempotent), and scored against the
live model's training statistics by a :class:`DriftDetector`. A batch
whose drift crosses the refresh threshold marks a refresh as due; the
attached :class:`RefreshController` (if any) handles it — either
immediately in :meth:`watch` or whenever the operator runs
``repro refresh``.

``K_V`` drift needs the live generator; the pipeline lazily loads it
from the controller's registry (memoised per model name) and degrades
gracefully — before the first refresh there is no reference, so batches
commit without a drift verdict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..data.io import load_saved_dataset
from ..obs import current
from ..validate import DatasetValidator, ValidationError
from .drift import DriftDetector, DriftReport
from .refresh import RefreshController, read_live
from .store import DatasetStore

__all__ = ["IngestPipeline", "IngestReport"]


@dataclass
class IngestReport:
    """Outcome of one ingested batch."""

    version: int
    num_graphs: int
    dropped: int = 0
    created: bool = True          # False = duplicate batch, no new version
    drift: DriftReport | None = None
    action: str = "ok"            # "ok" | "warn" | "refresh" | "duplicate"

    @property
    def refresh_due(self) -> bool:
        return self.action == "refresh"

    def to_dict(self) -> dict:
        return {"version": self.version, "num_graphs": self.num_graphs,
                "dropped": self.dropped, "created": self.created,
                "action": self.action,
                "drift": self.drift.to_dict() if self.drift else None}


@dataclass
class _GeneratorCache:
    """Live generator, memoised per model name (checkpoint loads are slow)."""

    registry: object = None
    name: str | None = None
    generator: object = field(default=None, repr=False)

    def get(self, registry, name: str | None):
        if registry is None or name is None or name not in registry:
            return None
        if name != self.name:
            from ..serve import load_trainer

            self.registry = registry
            self.name = name
            self.generator = load_trainer(registry.path(name)).model.generator
        return self.generator


class IngestPipeline:
    """Validate, commit and drift-check streaming graph batches.

    Parameters
    ----------
    store:
        Destination :class:`DatasetStore`.
    controller:
        Optional :class:`RefreshController`; supplies the model registry
        for ``K_V`` drift and handles due refreshes in :meth:`watch`.
    policy:
        Validation policy: ``"drop"`` (default — invalid graphs are
        filtered and counted), ``"raise"`` or ``"warn"``.
    warn_threshold / refresh_threshold:
        Drift thresholds (see :class:`DriftDetector`).
    """

    def __init__(self, store: DatasetStore, *,
                 controller: RefreshController | None = None,
                 policy: str = "drop", warn_threshold: float = 0.5,
                 refresh_threshold: float = 2.0, observer=None):
        self.store = store
        self.controller = controller
        self.validator = DatasetValidator(policy=policy, observer=observer)
        self.warn_threshold = warn_threshold
        self.refresh_threshold = refresh_threshold
        self._observer = observer
        self._generator = _GeneratorCache()

    def _obs(self):
        return self._observer if self._observer is not None else current()

    # ------------------------------------------------------------------
    def reference(self) -> dict | None:
        """Training statistics of the live model (None before a refresh)."""
        live = read_live(self.store.root)
        return live["statistics"] if live else None

    def _live_generator(self):
        live = read_live(self.store.root)
        registry = self.controller.registry if self.controller else None
        return self._generator.get(registry,
                                   live["model"] if live else None)

    # ------------------------------------------------------------------
    def ingest(self, graphs, **append_kwargs) -> IngestReport:
        """Validate, commit and drift-score one batch of graphs."""
        graphs = list(graphs)
        report = self.validator.validate(graphs)
        dropped = 0
        if not report.ok:
            if self.validator.policy == "raise":
                raise ValidationError(report)
            if self.validator.policy == "drop":
                invalid = set(report.invalid_indices)
                graphs = [g for i, g in enumerate(graphs)
                          if i not in invalid]
                dropped = len(invalid)
                self._obs().increment("ingest/dropped_graphs", dropped)
        if not graphs:
            raise ValidationError(report)
        manifest, created = self.store.append(
            graphs, generator=self._live_generator(), **append_kwargs)
        if not created:
            self._obs().increment("ingest/duplicate_batches")
            return IngestReport(version=manifest["version"],
                                num_graphs=len(graphs), dropped=dropped,
                                created=False, action="duplicate")
        drift = None
        action = "ok"
        reference = self.reference()
        if reference is not None:
            detector = DriftDetector(
                reference, warn_threshold=self.warn_threshold,
                refresh_threshold=self.refresh_threshold,
                observer=self._observer)
            drift = detector.check(manifest["statistics"])
            action = drift.status
        return IngestReport(version=manifest["version"],
                            num_graphs=len(graphs), dropped=dropped,
                            drift=drift, action=action)

    def ingest_file(self, path: str | Path, **append_kwargs) -> IngestReport:
        """Ingest a batch previously written by :func:`save_dataset`."""
        dataset = load_saved_dataset(path)
        return self.ingest(dataset.graphs, name=dataset.name,
                           num_classes=dataset.num_classes,
                           task=dataset.task, **append_kwargs)

    # ------------------------------------------------------------------
    def process_spool(self, spool_dir: str | Path) -> list[IngestReport]:
        """Ingest every ``*.npz`` batch in a spool directory, in name order.

        Processed files move to ``<spool>/ingested/`` *after* their
        batch commits — a crash mid-batch leaves the file in the spool
        and the next sweep re-ingests it (the store dedupes, so this is
        exactly-once end to end).
        """
        spool = Path(spool_dir)
        done = spool / "ingested"
        reports = []
        for path in sorted(spool.glob("*.npz")):
            reports.append(self.ingest_file(path))
            done.mkdir(parents=True, exist_ok=True)
            path.replace(done / path.name)
        return reports

    def watch(self, spool_dir: str | Path, *, interval: float = 5.0,
              max_cycles: int | None = None, refresh: bool = True,
              sleep=time.sleep) -> list[IngestReport]:
        """Poll a spool directory, ingesting and refreshing continuously.

        Each cycle sweeps the spool; if any batch crossed the refresh
        threshold (or the live model lags the store) and a controller is
        attached, a refresh runs before the next sleep. ``max_cycles``
        bounds the loop for tests/CLIs; ``sleep`` is injectable.
        """
        all_reports: list[IngestReport] = []
        cycles = 0
        while max_cycles is None or cycles < max_cycles:
            cycles += 1
            reports = self.process_spool(spool_dir)
            all_reports.extend(reports)
            if refresh and self.controller is not None \
                    and any(r.refresh_due for r in reports):
                self.controller.refresh()
            if max_cycles is None or cycles < max_cycles:
                sleep(interval)
        return all_reports
