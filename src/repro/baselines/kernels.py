"""Traditional graph kernels: GL (graphlet), WL (subtree), DGK.

These are the non-neural baselines of Table III. Each kernel produces an
explicit feature map per graph; classification then uses the same SVM path
as the neural methods (linear kernel on the explicit map — equivalent to
the kernel machine).

* **GL** (Shervashidze et al., 2009): normalised counts of connected
  3-node graphlets (wedges, triangles) and node/edge statistics.
* **WL** (Shervashidze et al., 2011): Weisfeiler-Lehman label-refinement
  histograms accumulated over ``h`` iterations.
* **DGK** (Yanardag & Vishwanathan, 2015): WL histograms re-weighted by
  latent sub-structure similarity — label embeddings from an SVD of the
  PPMI co-occurrence matrix of WL labels, mirroring the deep graph kernel's
  skip-gram step.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..graph import Graph

__all__ = ["graphlet_features", "wl_features", "dgk_features"]


def _initial_labels(graph: Graph) -> list[int]:
    """Discrete starting labels: argmax of one-hot features (or degree)."""
    if graph.num_features > 1:
        return [int(i) for i in np.argmax(graph.x, axis=1)]
    return [int(d) for d in graph.degrees()]


def _neighbours(graph: Graph) -> list[list[int]]:
    out: list[list[int]] = [[] for _ in range(graph.num_nodes)]
    for u, v in graph.edge_index.T:
        out[int(u)].append(int(v))
    return out


# ----------------------------------------------------------------------
# GL — graphlet kernel
# ----------------------------------------------------------------------
def graphlet_features(graphs: list[Graph]) -> np.ndarray:
    """Counts of connected 3-node graphlets per graph, L1-normalised.

    Features: [wedges (open triples), triangles, edges, nodes], each scaled
    by graph size so the map is comparable across graph sizes.
    """
    rows = []
    for graph in graphs:
        neighbours = [set(adjacent) for adjacent in _neighbours(graph)]
        degrees = graph.degrees()
        wedges = float(((degrees * (degrees - 1)) / 2.0).sum())
        triangles = 0.0
        for u, v in graph.edge_index.T:
            if u < v:
                triangles += len(neighbours[int(u)] & neighbours[int(v)])
        triangles /= 3.0
        wedges -= 3.0 * triangles  # open wedges only
        total = max(wedges + triangles, 1.0)
        rows.append([wedges / total, triangles / total,
                     graph.num_edges / 2.0 / max(graph.num_nodes, 1),
                     np.log1p(graph.num_nodes)])
    return np.asarray(rows)


# ----------------------------------------------------------------------
# WL — Weisfeiler-Lehman subtree kernel
# ----------------------------------------------------------------------
def _wl_label_sequences(graphs: list[Graph],
                        iterations: int) -> list[Counter]:
    """Per-graph multiset of labels accumulated over WL iterations.

    A shared relabelling dictionary guarantees consistent label ids across
    graphs (the kernel requirement).
    """
    labels = [_initial_labels(g) for g in graphs]
    neighbour_lists = [_neighbours(g) for g in graphs]
    histograms = [Counter(f"0:{l}" for l in ls) for ls in labels]
    relabel: dict[tuple, int] = {}
    for iteration in range(1, iterations + 1):
        new_labels = []
        for graph_labels, neighbours in zip(labels, neighbour_lists):
            refreshed = []
            for node, label in enumerate(graph_labels):
                signature = (label, tuple(sorted(
                    graph_labels[n] for n in neighbours[node])))
                if signature not in relabel:
                    relabel[signature] = len(relabel)
                refreshed.append(relabel[signature])
            new_labels.append(refreshed)
        labels = new_labels
        for histogram, graph_labels in zip(histograms, labels):
            histogram.update(f"{iteration}:{l}" for l in graph_labels)
    return histograms


def wl_features(graphs: list[Graph], iterations: int = 3) -> np.ndarray:
    """Explicit WL subtree feature map (sparse histogram → dense matrix)."""
    histograms = _wl_label_sequences(graphs, iterations)
    vocabulary = sorted({label for h in histograms for label in h})
    index = {label: i for i, label in enumerate(vocabulary)}
    features = np.zeros((len(graphs), len(vocabulary)))
    for row, histogram in enumerate(histograms):
        for label, count in histogram.items():
            features[row, index[label]] = count
    # L2-normalise rows so the linear kernel is a cosine-like similarity.
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    return features / np.maximum(norms, 1e-12)


# ----------------------------------------------------------------------
# DGK — deep graph kernel
# ----------------------------------------------------------------------
def dgk_features(graphs: list[Graph], iterations: int = 3,
                 embedding_dim: int = 32) -> np.ndarray:
    """WL histograms projected through PPMI-SVD label embeddings.

    The deep graph kernel learns sub-structure embeddings with skip-gram on
    co-occurring sub-structures; the closed-form equivalent is an SVD of the
    positive PMI co-occurrence matrix (Levy & Goldberg, 2014), which we use.
    """
    histograms = _wl_label_sequences(graphs, iterations)
    vocabulary = sorted({label for h in histograms for label in h})
    index = {label: i for i, label in enumerate(vocabulary)}
    v = len(vocabulary)
    counts = np.zeros((len(graphs), v))
    for row, histogram in enumerate(histograms):
        for label, count in histogram.items():
            counts[row, index[label]] = count
    # Co-occurrence: labels appearing in the same graph.
    co = counts.T @ counts
    totals = co.sum()
    row_sums = co.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        pmi = np.log(co * totals / (row_sums @ row_sums.T))
    pmi[~np.isfinite(pmi)] = 0.0
    ppmi = np.maximum(pmi, 0.0)
    dim = min(embedding_dim, v)
    u, s, _ = np.linalg.svd(ppmi, hermitian=True)
    embeddings = u[:, :dim] * np.sqrt(s[:dim])
    features = counts @ embeddings
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    return features / np.maximum(norms, 1e-12)
