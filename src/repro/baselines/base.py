"""Shared scaffolding for baseline pre-training methods.

Every GCL / generative baseline in the paper's tables is implemented as a
subclass of :class:`BasePretrainer`: it owns a :class:`GNNEncoder` (the same
architecture SGCL uses, per §VI.A.2's encoder-matched comparison), an Adam
optimiser, and a seeded pre-training loop; subclasses implement one
mini-batch ``step``.
"""

from __future__ import annotations

import time
import warnings
from pathlib import Path
from typing import Sequence

import numpy as np

from ..data import DataLoader
from ..gnn import GNNEncoder
from ..graph import Graph
from ..nn import Adam, Module
from ..obs import current
from ..tensor import Tensor
from ..validate.numerics import NumericsGuard, global_grad_norm

__all__ = ["BasePretrainer"]


class BasePretrainer(Module):
    """Base class: encoder + optimiser + epoch loop.

    Parameters
    ----------
    in_dim:
        Node feature dimension.
    hidden_dim, num_layers, conv, pooling:
        Encoder architecture (defaults match SGCL's TU setup).
    lr, batch_size, seed:
        Optimisation / reproducibility knobs.
    numerics_policy, grad_clip:
        :class:`~repro.validate.NumericsGuard` wiring, mirroring
        ``SGCLConfig``: what to do with NaN/Inf batches (``raise`` /
        ``skip`` / ``warn``) and an optional global gradient-norm cap.
    """

    #: subclasses that need ≥2 graphs per batch (contrastive losses)
    needs_pairs = True

    def __init__(self, in_dim: int, *, hidden_dim: int = 32,
                 num_layers: int = 3, conv: str = "gin", pooling: str = "sum",
                 lr: float = 1e-3, batch_size: int = 128, seed: int = 0,
                 numerics_policy: str = "skip",
                 grad_clip: float | None = None):
        super().__init__()
        root = np.random.default_rng(seed)
        self._init_rng = np.random.default_rng(root.integers(2 ** 63))
        self._shuffle_rng = np.random.default_rng(root.integers(2 ** 63))
        self.rng = np.random.default_rng(root.integers(2 ** 63))
        self.batch_size = batch_size
        self.lr = lr
        self.numerics_policy = numerics_policy
        self.grad_clip = grad_clip
        self.in_dim = in_dim
        self.encoder = GNNEncoder(in_dim, hidden_dim, num_layers,
                                  rng=self._init_rng, conv=conv,
                                  pooling=pooling)
        self._build(self._init_rng)
        self.optimizer = Adam(self.parameters(), lr=lr)
        self.history: list[float] = []
        self._best_loss = float("inf")

    # ------------------------------------------------------------------
    def _build(self, rng: np.random.Generator) -> None:
        """Hook for subclasses to add heads/generators before the optimiser
        collects parameters."""

    def step(self, batch) -> Tensor:
        """Compute the method's loss for one batch (subclass responsibility)."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def pretrain(self, graphs: Sequence[Graph], epochs: int = 20, *,
                 checkpoint_dir: str | Path | None = None,
                 save_every: int | None = None,
                 observer=None) -> list[float]:
        """Run the pre-training loop; returns per-epoch mean losses.

        ``checkpoint_dir``/``save_every`` mirror
        :meth:`repro.core.SGCLTrainer.pretrain`: best-loss epochs go to
        ``<dir>/best.npz``, every ``save_every``-th to
        ``<dir>/epoch-NNNN.npz``. ``observer`` (default: the ambient
        :func:`repro.obs.current`) receives one ``epoch`` event per epoch
        and ``pretrain/epoch``/``pretrain/batch`` spans (with
        ``pretrain/loss``/``pretrain/backward``/``pretrain/step``
        children, matching the SGCL trainer's phase layout).
        """
        obs = observer if observer is not None else current()
        guard = NumericsGuard(policy=self.numerics_policy,
                              grad_clip=self.grad_clip, observer=obs)
        parameters = self.parameters()
        self.train()
        for _ in range(epochs):
            losses = []
            skipped_batches = 0
            started = time.perf_counter()
            loader = DataLoader(graphs, self.batch_size, shuffle=True,
                                rng=self._shuffle_rng)
            with obs.span("pretrain/epoch"):
                for batch in loader:
                    if self.needs_pairs and batch.num_graphs < 2:
                        continue
                    with obs.span("pretrain/batch"):
                        with obs.span("pretrain/loss"):
                            loss = self.step(batch)
                        if not guard.check_loss({"loss": loss.item()}):
                            skipped_batches += 1
                            continue
                        self.optimizer.zero_grad()
                        with obs.span("pretrain/backward"):
                            loss.backward()
                        if not guard.guard_gradients(
                                parameters, global_grad_norm(parameters)):
                            skipped_batches += 1
                            continue
                        with obs.span("pretrain/step"):
                            self.optimizer.step()
                    losses.append(loss.item())
            if not losses:
                # NaN (not 0.0) keeps an all-skipped epoch from being
                # mistaken for a perfect one by best-loss checkpointing.
                warnings.warn(
                    f"epoch {len(self.history) + 1}: no batch was trained "
                    f"({skipped_batches} skipped)", RuntimeWarning,
                    stacklevel=2)
            self.history.append(
                float(np.mean(losses)) if losses else float("nan"))
            obs.event("epoch", method=type(self).__name__,
                      epoch=len(self.history), loss=self.history[-1],
                      num_batches=len(losses),
                      skipped_batches=skipped_batches,
                      epoch_seconds=time.perf_counter() - started)
            if checkpoint_dir is not None:
                self._checkpoint_epoch(Path(checkpoint_dir), save_every)
        return self.history

    def _checkpoint_epoch(self, directory: Path,
                          save_every: int | None) -> None:
        epoch = len(self.history)
        if save_every and epoch % save_every == 0:
            self.save_checkpoint(directory / f"epoch-{epoch:04d}.npz")
        if np.isfinite(self.history[-1]) and self.history[-1] < self._best_loss:
            self._best_loss = self.history[-1]
            self.save_checkpoint(directory / "best.npz")

    def save_checkpoint(self, path: str | Path,
                        metadata: dict | None = None) -> Path:
        """Write the full pretrainer state (encoder + heads + optimizer)."""
        from ..serve.checkpoint import save_checkpoint

        meta = {"method": type(self).__name__, "history": self.history}
        return save_checkpoint(path, self, optimizer=self.optimizer,
                               metadata={**meta, **(metadata or {})})
