"""Generative / predictive pre-training baselines.

* **AttrMasking** (Hu et al., ICLR 2020): mask node attributes, predict them
  from the encoder's node representations.
* **ContextPred** (Hu et al., ICLR 2020): discriminate whether a node
  representation and a (pooled) context representation come from the same
  node, with negative sampling.
* **GAE** (Kipf & Welling, 2016): reconstruct the adjacency (link
  prediction with negative sampling).
* **DGI / Infomax** (Veličković et al., 2019): discriminate node
  representations of the real graph from those of a feature-shuffled
  corruption against a pooled summary.
* **NoPretrain**: a randomly initialised encoder (the "No Pre-Train" rows).
"""

from __future__ import annotations

import numpy as np

from ..graph import Batch
from ..nn import Linear, Parameter, binary_cross_entropy_with_logits, mse_loss
from ..tensor import Tensor, concatenate, gather, segment_mean
from .base import BasePretrainer

__all__ = ["AttrMasking", "ContextPred", "GAE", "DGI", "NoPretrain"]


class AttrMasking(BasePretrainer):
    """Mask a fraction of node features; regress them from representations."""

    needs_pairs = False

    def __init__(self, in_dim: int, *, mask_ratio: float = 0.15, **kwargs):
        self.mask_ratio = mask_ratio
        self._in_dim = in_dim
        super().__init__(in_dim, **kwargs)

    def _build(self, rng: np.random.Generator) -> None:
        self.decoder = Linear(self.encoder.out_dim, self._in_dim, rng=rng)

    def step(self, batch: Batch) -> Tensor:
        n = batch.num_nodes
        num_masked = max(1, int(self.mask_ratio * n))
        masked = self.rng.choice(n, size=num_masked, replace=False)
        corrupted = batch.x.copy()
        corrupted[masked] = 0.0
        reps = self.encoder.node_representations(
            Tensor(corrupted), batch.edge_index, n)
        predicted = self.decoder(gather(reps, masked))
        return mse_loss(predicted, batch.x[masked])


class ContextPred(BasePretrainer):
    """Node-vs-context discrimination with negative sampling."""

    needs_pairs = False

    def _build(self, rng: np.random.Generator) -> None:
        dim = self.encoder.out_dim
        self.context_head = Linear(dim, dim, rng=rng)

    def step(self, batch: Batch) -> Tensor:
        reps = self.encoder(batch)
        # Context = mean of each node's neighbours (1-hop context pooling).
        src, dst = batch.edge_index
        context = segment_mean(gather(reps, src), dst, batch.num_nodes)
        context = self.context_head(context)
        n = batch.num_nodes
        permutation = self.rng.permutation(n)
        positive_logits = (reps * context).sum(axis=1)
        negative_logits = (reps * gather(context, permutation)).sum(axis=1)
        logits = concatenate([positive_logits, negative_logits], axis=0)
        targets = np.concatenate([np.ones(n), np.zeros(n)])
        return binary_cross_entropy_with_logits(logits, targets)


class GAE(BasePretrainer):
    """Graph auto-encoder: inner-product link prediction."""

    needs_pairs = False

    def step(self, batch: Batch) -> Tensor:
        reps = self.encoder(batch)
        num_edges = batch.num_edges
        if num_edges == 0:
            return (reps * 0.0).sum()
        src, dst = batch.edge_index
        positive = (gather(reps, src) * gather(reps, dst)).sum(axis=1)
        neg_src = self.rng.integers(batch.num_nodes, size=num_edges)
        neg_dst = self.rng.integers(batch.num_nodes, size=num_edges)
        negative = (gather(reps, neg_src) * gather(reps, neg_dst)).sum(axis=1)
        logits = concatenate([positive, negative], axis=0)
        targets = np.concatenate([np.ones(num_edges), np.zeros(num_edges)])
        return binary_cross_entropy_with_logits(logits, targets)


class DGI(BasePretrainer):
    """Deep Graph Infomax: real-vs-corrupted node/summary discrimination."""

    needs_pairs = False

    def _build(self, rng: np.random.Generator) -> None:
        dim = self.encoder.out_dim
        self.bilinear = Parameter(rng.normal(0, 0.1, size=(dim, dim)))

    def step(self, batch: Batch) -> Tensor:
        reps = self.encoder(batch)
        summary = segment_mean(reps, batch.node_graph,
                               batch.num_graphs).sigmoid()
        shuffled = Batch(batch.graphs)
        shuffled.x = batch.x[self.rng.permutation(batch.num_nodes)]
        corrupted = self.encoder(shuffled)
        per_node_summary = gather(summary, batch.node_graph)
        positive = ((reps @ self.bilinear) * per_node_summary).sum(axis=1)
        negative = ((corrupted @ self.bilinear) * per_node_summary).sum(axis=1)
        n = batch.num_nodes
        logits = concatenate([positive, negative], axis=0)
        targets = np.concatenate([np.ones(n), np.zeros(n)])
        return binary_cross_entropy_with_logits(logits, targets)


class NoPretrain(BasePretrainer):
    """Randomly initialised encoder — pre-training is a no-op."""

    needs_pairs = False

    def pretrain(self, graphs, epochs: int = 0) -> list[float]:
        return []

    def step(self, batch: Batch) -> Tensor:  # pragma: no cover
        raise RuntimeError("NoPretrain has no training step")
