"""GraphCL (You et al., NeurIPS 2020) — random-augmentation contrastive learning.

Two views are produced per graph by independently sampled augmentations from
the four-operation pool (node dropping, edge perturbation, attribute masking,
subgraph); the InfoNCE loss contrasts the views' projected embeddings.
"""

from __future__ import annotations

import numpy as np

from ..core.augmentation import GRAPHCL_AUGMENTATIONS
from ..core.losses import semantic_info_nce
from ..gnn import ProjectionHead
from ..graph import Batch
from ..tensor import Tensor
from .base import BasePretrainer

__all__ = ["GraphCL"]


class GraphCL(BasePretrainer):
    """GraphCL with a configurable augmentation pool.

    Parameters
    ----------
    aug_names:
        Subset of ``{"node_drop", "edge_perturb", "attr_mask", "subgraph"}``
        to sample from (GraphCL tunes this per dataset; default: all four).
    aug_ratio:
        Perturbation strength (GraphCL default 0.2).
    tau:
        InfoNCE temperature.
    """

    def __init__(self, in_dim: int, *, aug_names: tuple[str, ...] | None = None,
                 aug_ratio: float = 0.2, tau: float = 0.2, **kwargs):
        self.aug_names = tuple(aug_names or sorted(GRAPHCL_AUGMENTATIONS))
        unknown = set(self.aug_names) - set(GRAPHCL_AUGMENTATIONS)
        if unknown:
            raise ValueError(f"unknown augmentations: {sorted(unknown)}")
        self.aug_ratio = aug_ratio
        self.tau = tau
        super().__init__(in_dim, **kwargs)

    def _build(self, rng: np.random.Generator) -> None:
        self.projection = ProjectionHead(self.encoder.out_dim, rng=rng)

    # ------------------------------------------------------------------
    def _augment(self, graphs) -> Batch:
        name = self.aug_names[int(self.rng.integers(len(self.aug_names)))]
        op = GRAPHCL_AUGMENTATIONS[name]
        return Batch([op(g, self.aug_ratio, self.rng) for g in graphs])

    def _embed(self, batch: Batch) -> Tensor:
        return self.projection(self.encoder.graph_representations(batch))

    def step(self, batch: Batch) -> Tensor:
        view_a = self._embed(self._augment(batch.graphs))
        view_b = self._embed(self._augment(batch.graphs))
        return semantic_info_nce(view_a, view_b, self.tau)
