"""AD-GCL (Suresh et al., NeurIPS 2021) — adversarial edge-drop augmentation.

A learnable edge scorer produces per-edge keep weights; the *augmenter* is
trained to maximise the InfoNCE loss (removing as much redundant information
as possible) while the encoder minimises it — alternating adversarial steps.
Edges are kept softly via their Bernoulli keep probability (the relaxation
the original uses during training).
"""

from __future__ import annotations

import numpy as np

from ..core.losses import semantic_info_nce
from ..gnn import ProjectionHead
from ..graph import Batch
from ..nn import Adam, MLP
from ..tensor import Tensor, gather, segment_sum
from .base import BasePretrainer

__all__ = ["ADGCL"]


class ADGCL(BasePretrainer):
    """AD-GCL with a two-layer edge scorer and alternating updates."""

    def __init__(self, in_dim: int, *, tau: float = 0.2,
                 augmenter_lr: float = 1e-3, reg_lambda: float = 5.0,
                 **kwargs):
        self.tau = tau
        self.augmenter_lr = augmenter_lr
        self.reg_lambda = reg_lambda
        super().__init__(in_dim, **kwargs)
        augmenter_params = (self.edge_scorer.parameters()
                            + self.scorer_encoder.parameters())
        self._augmenter_optimizer = Adam(augmenter_params,
                                         lr=self.augmenter_lr)
        # The main optimiser must not touch augmenter parameters.
        encoder_params = (self.encoder.parameters()
                          + self.projection.parameters())
        self.optimizer = Adam(encoder_params, lr=self.lr)

    def _build(self, rng: np.random.Generator) -> None:
        self.projection = ProjectionHead(self.encoder.out_dim, rng=rng)
        from ..gnn import GNNEncoder
        self.scorer_encoder = GNNEncoder(self.in_dim, self.encoder.hidden_dim,
                                         2, rng=rng, conv="gin")
        self.edge_scorer = MLP([2 * self.encoder.hidden_dim,
                                self.encoder.hidden_dim, 1], rng=rng)

    # ------------------------------------------------------------------
    def _edge_keep_weights(self, batch: Batch) -> Tensor:
        node_reps = self.scorer_encoder(batch)
        src, dst = batch.edge_index
        from ..tensor import concatenate
        pair = concatenate([gather(node_reps, src), gather(node_reps, dst)],
                           axis=1)
        return self.edge_scorer(pair).sigmoid().reshape(batch.num_edges)

    def _view_embeddings(self, batch: Batch, keep: Tensor) -> Tensor:
        """Encode with per-edge soft weights by scaling messages.

        Implemented by duplicating the encoder forward with messages scaled
        through a weighted adjacency: we emulate it via node_weight=None and
        a pre-scaled feature trick is not possible, so we fall back to the
        GIN aggregation with scaled messages.
        """
        # Manual GIN-style forward with edge weights to keep things simple.
        x = Tensor(batch.x)
        h = x
        src, dst = batch.edge_index
        for conv in self.encoder.convs:
            messages = gather(h, src) * keep.reshape(batch.num_edges, 1)
            agg = segment_sum(messages, dst, batch.num_nodes)
            h = conv.mlp(h * (1.0 + conv.eps) + agg)
        from ..gnn import global_sum_pool
        pooled = global_sum_pool(h, batch.node_graph, batch.num_graphs)
        return self.projection(pooled)

    def _anchor_embeddings(self, batch: Batch) -> Tensor:
        return self.projection(self.encoder.graph_representations(batch))

    # ------------------------------------------------------------------
    def step(self, batch: Batch) -> Tensor:
        # 1) Augmenter ascent step: maximise loss (+ keep-ratio regulariser).
        keep = self._edge_keep_weights(batch)
        z_anchor = self._anchor_embeddings(batch)
        z_view = self._view_embeddings(batch, keep)
        loss_adv = semantic_info_nce(z_anchor, z_view, self.tau)
        regulariser = keep.mean()
        augmenter_objective = -loss_adv + self.reg_lambda * (
            regulariser - 0.7) ** 2.0
        self._augmenter_optimizer.zero_grad()
        self.optimizer.zero_grad()
        augmenter_objective.backward()
        self._augmenter_optimizer.step()
        # 2) Encoder descent step on fresh forward with updated augmenter.
        keep = self._edge_keep_weights(batch).detach()
        z_anchor = self._anchor_embeddings(batch)
        z_view = self._view_embeddings(batch, keep)
        return semantic_info_nce(z_anchor, z_view, self.tau)

    def pretrain(self, graphs, epochs: int = 20):
        if self.encoder.conv_name != "gin":
            raise ValueError("ADGCL's weighted message passing requires GIN")
        return super().pretrain(graphs, epochs)
