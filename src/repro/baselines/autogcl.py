"""AutoGCL (Yin et al., AAAI 2022) — learnable view generators.

Each of two independent view generators is a small GNN emitting per-node
logits over {keep, drop, mask}; views are sampled from the (Gumbel-softmax
relaxed) categorical and realised as node drops + attribute masks. The
contrastive loss is complemented by a *similarity regulariser* that keeps
the two generators from collapsing onto each other.
"""

from __future__ import annotations

import numpy as np

from ..core.losses import semantic_info_nce
from ..gnn import GNNEncoder, ProjectionHead
from ..graph import Batch, Graph
from ..nn import Linear
from ..tensor import Tensor, gather
from .base import BasePretrainer

__all__ = ["AutoGCL"]

_KEEP, _DROP, _MASK = 0, 1, 2


class _ViewGenerator:
    """One learnable view generator: GNN + 3-way categorical head."""

    def __init__(self, in_dim: int, hidden_dim: int,
                 rng: np.random.Generator):
        self.encoder = GNNEncoder(in_dim, hidden_dim, 2, rng=rng, conv="gin")
        self.head = Linear(hidden_dim, 3, rng=rng)

    def parameters(self):
        return self.encoder.parameters() + self.head.parameters()

    def probabilities(self, batch: Batch) -> Tensor:
        """Per-node keep/drop/mask probabilities, shape ``(N, 3)``."""
        return self.head(self.encoder(batch)).softmax(axis=1)


class AutoGCL(BasePretrainer):
    """AutoGCL with two generators and a generator-similarity penalty."""

    def __init__(self, in_dim: int, *, tau: float = 0.2,
                 similarity_weight: float = 0.3, max_drop: float = 0.3,
                 **kwargs):
        self.tau = tau
        self.similarity_weight = similarity_weight
        self.max_drop = max_drop
        self._in_dim = in_dim
        super().__init__(in_dim, **kwargs)

    def _build(self, rng: np.random.Generator) -> None:
        self.projection = ProjectionHead(self.encoder.out_dim, rng=rng)
        self.generators = [
            _ViewGenerator(self._in_dim, self.encoder.hidden_dim, rng)
            for _ in range(2)
        ]
        # Register generator parameters for the shared optimiser.
        self.generator_modules = [g.encoder for g in self.generators] + \
            [g.head for g in self.generators]

    # ------------------------------------------------------------------
    def node_probabilities(self, batch: Batch) -> Tensor:
        """Keep-probabilities of the first generator (visualisation hook)."""
        return self.generators[0].probabilities(batch)[
            (np.arange(batch.num_nodes),
             np.full(batch.num_nodes, _KEEP))]

    def _materialise_view(self, batch: Batch, probs: Tensor
                          ) -> tuple[Batch, Tensor]:
        """Sample hard keep/drop/mask per node; return view batch + soft
        weights (keep-probability of surviving nodes) for the gradient path."""
        choices = np.empty(batch.num_nodes, dtype=np.int64)
        p = probs.data
        for i in range(batch.num_nodes):
            choices[i] = self.rng.choice(3, p=p[i] / p[i].sum())
        view_graphs: list[Graph] = []
        surviving_global: list[np.ndarray] = []
        for graph_id, graph in enumerate(batch.graphs):
            nodes = batch.nodes_of(graph_id)
            local = choices[nodes]
            drop_local = np.flatnonzero(local == _DROP)
            # Cap the drop fraction so views stay informative.
            max_drops = int(self.max_drop * graph.num_nodes)
            drop_local = drop_local[:max_drops]
            keep_local = np.setdiff1d(np.arange(graph.num_nodes), drop_local)
            if keep_local.size == 0:
                keep_local = np.array([0])
            view = graph.subgraph(keep_local)
            mask_local = np.flatnonzero(local == _MASK)
            mask_in_view = np.flatnonzero(np.isin(keep_local, mask_local))
            if mask_in_view.size:
                view.x[mask_in_view] = 0.0
            view_graphs.append(view)
            surviving_global.append(nodes[keep_local])
        keep_probs = probs[(np.arange(batch.num_nodes),
                            np.full(batch.num_nodes, _KEEP))]
        soft = gather(keep_probs, np.concatenate(surviving_global))
        return Batch(view_graphs), soft

    def step(self, batch: Batch) -> Tensor:
        probs_a = self.generators[0].probabilities(batch)
        probs_b = self.generators[1].probabilities(batch)
        view_a, soft_a = self._materialise_view(batch, probs_a)
        view_b, soft_b = self._materialise_view(batch, probs_b)
        z_a = self.projection(self.encoder.graph_representations(
            view_a, node_weight=soft_a))
        z_b = self.projection(self.encoder.graph_representations(
            view_b, node_weight=soft_b))
        loss = semantic_info_nce(z_a, z_b, self.tau)
        # Similarity penalty: discourage identical generator outputs.
        similarity = ((probs_a - probs_b) ** 2.0).mean()
        return loss - self.similarity_weight * similarity
