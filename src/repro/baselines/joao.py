"""JOAOv2 (You et al., ICML 2021) — joint augmentation optimisation.

GraphCL with the augmentation-pair distribution learned by a min-max game:
the sampler upweights augmentation pairs that currently yield *high*
contrastive loss (hard augmentations), while the encoder minimises the loss
under the sampled pairs. JOAOv2 additionally uses an augmentation-aware
projection head (one head per augmentation); we keep per-augmentation heads
as in the original.
"""

from __future__ import annotations

import numpy as np

from ..core.augmentation import GRAPHCL_AUGMENTATIONS
from ..core.losses import semantic_info_nce
from ..gnn import ProjectionHead
from ..graph import Batch
from ..tensor import Tensor
from .base import BasePretrainer

__all__ = ["JOAOv2"]


class JOAOv2(BasePretrainer):
    """JOAOv2 with learned augmentation-pair sampling distribution."""

    def __init__(self, in_dim: int, *, aug_ratio: float = 0.2,
                 tau: float = 0.2, gamma: float = 0.1, **kwargs):
        self.aug_ratio = aug_ratio
        self.tau = tau
        self.gamma = gamma  # step size of the distribution update
        self.aug_names = sorted(GRAPHCL_AUGMENTATIONS)
        self.aug_probs = np.full(len(self.aug_names),
                                 1.0 / len(self.aug_names))
        self._recent_losses = np.zeros(len(self.aug_names))
        super().__init__(in_dim, **kwargs)

    def _build(self, rng: np.random.Generator) -> None:
        self.heads = [ProjectionHead(self.encoder.out_dim, rng=rng)
                      for _ in self.aug_names]

    # ------------------------------------------------------------------
    def _augment(self, graphs, aug_index: int) -> Batch:
        op = GRAPHCL_AUGMENTATIONS[self.aug_names[aug_index]]
        return Batch([op(g, self.aug_ratio, self.rng) for g in graphs])

    def step(self, batch: Batch) -> Tensor:
        index = int(self.rng.choice(len(self.aug_names), p=self.aug_probs))
        head = self.heads[index]
        z_a = head(self.encoder.graph_representations(
            self._augment(batch.graphs, index)))
        z_b = head(self.encoder.graph_representations(
            self._augment(batch.graphs, index)))
        loss = semantic_info_nce(z_a, z_b, self.tau)
        self._update_distribution(index, loss.item())
        return loss

    def _update_distribution(self, index: int, loss_value: float) -> None:
        """Mirror-descent-style update: upweight high-loss augmentations."""
        self._recent_losses[index] = loss_value
        logits = self.gamma * self._recent_losses
        logits -= logits.max()
        exp = np.exp(logits)
        self.aug_probs = exp / exp.sum()
