"""RGCL (Li et al., ICML 2022) — rationale-aware graph contrastive learning.

A *rationale generator* scores every node's probability of belonging to the
graph's rationale (the label-relevant substructure); the rationale view keeps
high-probability nodes, the complement view keeps the rest. InfoNCE pulls
the anchor towards its rationale view; the complement acts as a negative.
The node scorer is trained through a soft node-weighting pathway (the
Gumbel relaxation of the original, simplified to probability weighting).
"""

from __future__ import annotations

import numpy as np

from ..core.augmentation import phi_node_drop
from ..core.losses import complement_loss, semantic_info_nce
from ..gnn import GNNEncoder, ProjectionHead
from ..graph import Batch
from ..nn import MLP
from ..tensor import Tensor, gather
from .base import BasePretrainer

__all__ = ["RGCL"]


class RGCL(BasePretrainer):
    """RGCL with an MLP rationale scorer on generator-GNN representations."""

    def __init__(self, in_dim: int, *, keep_ratio: float = 0.9,
                 tau: float = 0.2, lambda_c: float = 0.1, **kwargs):
        self.keep_ratio = keep_ratio
        self.tau = tau
        self.lambda_c = lambda_c
        self._in_dim = in_dim
        super().__init__(in_dim, **kwargs)

    def _build(self, rng: np.random.Generator) -> None:
        self.projection = ProjectionHead(self.encoder.out_dim, rng=rng)
        self.rationale_encoder = GNNEncoder(
            self._in_dim, self.encoder.hidden_dim, 2, rng=rng, conv="gin")
        self.rationale_scorer = MLP(
            [self.encoder.hidden_dim, self.encoder.hidden_dim, 1], rng=rng)

    # ------------------------------------------------------------------
    def node_probabilities(self, batch: Batch) -> Tensor:
        """Per-node rationale probabilities (Fig. 7 comparison uses these)."""
        reps = self.rationale_encoder(batch)
        return self.rationale_scorer(reps).sigmoid().reshape(batch.num_nodes)

    def step(self, batch: Batch) -> Tensor:
        probabilities = self.node_probabilities(batch)
        per_graph = batch.unbatch_node_values(probabilities.data)
        num_drops = [max(0, int(round((1 - self.keep_ratio) * g.num_nodes)))
                     for g in batch.graphs]
        rationale_views, complement_views, soft_ids = [], [], []
        for graph_id, (graph, p, k) in enumerate(
                zip(batch.graphs, per_graph, num_drops)):
            view = phi_node_drop(graph, k, 1.0 - p + 1e-6, self.rng)
            complement = phi_node_drop(graph, k, p + 1e-6, self.rng)
            rationale_views.append(view)
            complement_views.append(complement)
            soft_ids.append(view.meta["parent_nodes"]
                            + batch.node_offsets[graph_id])
        soft = gather(probabilities, np.concatenate(soft_ids))
        view_batch = Batch(rationale_views)
        z_anchor = self.projection(self.encoder.graph_representations(batch))
        z_view = self.projection(self.encoder.graph_representations(
            view_batch, node_weight=soft))
        z_complement = self.projection(self.encoder.graph_representations(
            Batch(complement_views)))
        loss = semantic_info_nce(z_anchor, z_view, self.tau)
        return loss + self.lambda_c * complement_loss(
            z_anchor, z_view, z_complement, self.tau)
