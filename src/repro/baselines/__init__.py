"""Baseline methods: every comparator in the paper's tables.

Neural: InfoGraph, GraphCL, JOAOv2, AD-GCL, SimGRACE, RGCL, AutoGCL,
AttrMasking, ContextPred, GAE, Infomax(DGI), No-Pre-Train.
Kernels: GL, WL, DGK.
"""

from .base import BasePretrainer
from .graphcl import GraphCL
from .infograph import InfoGraph
from .joao import JOAOv2
from .adgcl import ADGCL
from .simgrace import SimGRACE
from .rgcl import RGCL
from .autogcl import AutoGCL
from .pretrain import GAE, DGI, AttrMasking, ContextPred, NoPretrain
from .kernels import dgk_features, graphlet_features, wl_features
from .registry import (
    KERNEL_METHODS,
    NEURAL_METHODS,
    kernel_feature_map,
    make_method,
)

__all__ = [
    "BasePretrainer",
    "GraphCL",
    "InfoGraph",
    "JOAOv2",
    "ADGCL",
    "SimGRACE",
    "RGCL",
    "AutoGCL",
    "AttrMasking",
    "ContextPred",
    "GAE",
    "DGI",
    "NoPretrain",
    "graphlet_features",
    "wl_features",
    "dgk_features",
    "make_method",
    "kernel_feature_map",
    "NEURAL_METHODS",
    "KERNEL_METHODS",
]
