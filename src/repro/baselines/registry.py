"""Name → method factory registry used by the benchmark harness.

Neural methods share the interface ``method = make_method(name, in_dim,
**overrides)`` → an object with ``.pretrain(graphs, epochs)`` and
``.encoder``; kernel methods are exposed through
:func:`kernel_feature_map`.
"""

from __future__ import annotations

from typing import Callable

from ..core import SGCLConfig, SGCLTrainer
from .adgcl import ADGCL
from .autogcl import AutoGCL
from .graphcl import GraphCL
from .infograph import InfoGraph
from .joao import JOAOv2
from .kernels import dgk_features, graphlet_features, wl_features
from .pretrain import GAE, DGI, AttrMasking, ContextPred, NoPretrain
from .rgcl import RGCL
from .simgrace import SimGRACE

__all__ = ["make_method", "kernel_feature_map", "NEURAL_METHODS",
           "KERNEL_METHODS"]


class _SGCLAdapter:
    """Present :class:`SGCLTrainer` through the baseline interface."""

    def __init__(self, in_dim: int, **overrides):
        config_fields = set(SGCLConfig.__dataclass_fields__)
        config_kwargs = {k: v for k, v in overrides.items()
                         if k in config_fields}
        unknown = set(overrides) - config_fields
        if unknown:
            raise TypeError(f"unknown SGCL options: {sorted(unknown)}")
        self.trainer = SGCLTrainer(in_dim, SGCLConfig(**config_kwargs))

    @property
    def encoder(self):
        return self.trainer.encoder

    @property
    def model(self):
        return self.trainer.model

    def pretrain(self, graphs, epochs: int = 20, **kwargs):
        return self.trainer.pretrain(graphs, epochs=epochs, **kwargs)

    def save_checkpoint(self, path, metadata: dict | None = None):
        return self.trainer.save_checkpoint(path, metadata=metadata)


def _sgcl_variant(**fixed):
    def factory(in_dim: int, **overrides):
        merged = dict(fixed)
        merged.update(overrides)
        return _SGCLAdapter(in_dim, **merged)

    return factory


NEURAL_METHODS: dict[str, Callable] = {
    "InfoGraph": InfoGraph,
    "GraphCL": GraphCL,
    "JOAOv2": JOAOv2,
    "AD-GCL": ADGCL,
    "SimGRACE": SimGRACE,
    "RGCL": RGCL,
    "AutoGCL": AutoGCL,
    "AttrMasking": AttrMasking,
    "ContextPred": ContextPred,
    "GAE": GAE,
    "Infomax": DGI,
    "No Pre-Train": NoPretrain,
    "SGCL": _sgcl_variant(),
    # Table V ablation rows.
    "SGCL w/o VG": _sgcl_variant(augmentation="random"),
    "SGCL w/o LGA": _sgcl_variant(augmentation="learnable"),
    "SGCL w/o SRL": _sgcl_variant(use_semantic_readout=False),
    "SGCL w/o Lc": _sgcl_variant(use_complement_loss=False, lambda_c=0.0),
    "SGCL w/o LW": _sgcl_variant(use_weight_reg=False, lambda_w=0.0),
}

KERNEL_METHODS: dict[str, Callable] = {
    "GL": graphlet_features,
    "WL": wl_features,
    "DGK": dgk_features,
}


def make_method(name: str, in_dim: int, **overrides):
    """Instantiate a neural pre-training method by its paper name."""
    if name not in NEURAL_METHODS:
        raise KeyError(
            f"unknown method {name!r}; available: {sorted(NEURAL_METHODS)}")
    return NEURAL_METHODS[name](in_dim, **overrides)


def kernel_feature_map(name: str, graphs):
    """Explicit feature map of a kernel method by its paper name."""
    if name not in KERNEL_METHODS:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(KERNEL_METHODS)}")
    return KERNEL_METHODS[name](graphs)
