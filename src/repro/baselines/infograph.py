"""InfoGraph (Sun et al., ICLR 2020) — local-global mutual information.

Maximises the Jensen-Shannon MI estimate between node-level representations
and their own graph's pooled representation: a bilinear discriminator scores
(node, graph) pairs; nodes paired with their own graph are positives, nodes
paired with the other graphs in the batch are negatives.
"""

from __future__ import annotations

import numpy as np

from ..graph import Batch
from ..nn import Parameter
from ..tensor import Tensor
from .base import BasePretrainer

__all__ = ["InfoGraph"]


def _softplus(x: Tensor) -> Tensor:
    return x.softplus()


class InfoGraph(BasePretrainer):
    """InfoGraph with a bilinear local-global discriminator."""

    def _build(self, rng: np.random.Generator) -> None:
        dim = self.encoder.out_dim
        self.bilinear = Parameter(rng.normal(0, 0.1, size=(dim, dim)))

    def step(self, batch: Batch) -> Tensor:
        nodes = self.encoder(batch)
        graphs = self.encoder.graph_representations(batch)
        # score[v, g] = h_v^T B z_g for every node-graph pair in the batch.
        scores = (nodes @ self.bilinear) @ graphs.T
        own = np.zeros((batch.num_nodes, batch.num_graphs), dtype=bool)
        own[np.arange(batch.num_nodes), batch.node_graph] = True
        # JSD MI estimator: E_pos[-sp(-s)] - E_neg[sp(s)] → minimise negation.
        positive = scores[(np.arange(batch.num_nodes), batch.node_graph)]
        positive_term = _softplus(-positive).mean()
        negative_all = _softplus(scores) * Tensor((~own).astype(np.float64))
        negative_term = negative_all.sum() * (
            1.0 / max((~own).sum(), 1))
        return positive_term + negative_term
