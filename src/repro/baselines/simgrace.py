"""SimGRACE (Xia et al., WWW 2022) — contrast without graph augmentation.

The second view comes from a *perturbed copy of the encoder*: each parameter
is perturbed by Gaussian noise scaled to its own magnitude
(``θ' = θ + η·ε, ε ~ N(0, σ(θ)²)``); the InfoNCE loss contrasts the original
and perturbed encoders' embeddings of the same graphs.
"""

from __future__ import annotations

import numpy as np

from ..core.losses import semantic_info_nce
from ..gnn import ProjectionHead
from ..graph import Batch
from ..tensor import Tensor, no_grad
from .base import BasePretrainer

__all__ = ["SimGRACE"]


class SimGRACE(BasePretrainer):
    """SimGRACE with magnitude-scaled weight perturbation."""

    def __init__(self, in_dim: int, *, eta: float = 0.1, tau: float = 0.2,
                 **kwargs):
        self.eta = eta
        self.tau = tau
        super().__init__(in_dim, **kwargs)

    def _build(self, rng: np.random.Generator) -> None:
        self.projection = ProjectionHead(self.encoder.out_dim, rng=rng)

    def step(self, batch: Batch) -> Tensor:
        z_anchor = self.projection(self.encoder.graph_representations(batch))
        saved = self.encoder.state_dict()
        for param in self.encoder.parameters():
            scale = float(param.data.std())
            if scale > 0:
                param.data += self.eta * self.rng.normal(
                    0, scale, size=param.data.shape)
        with no_grad():
            z_view = self.projection(
                self.encoder.graph_representations(batch))
        self.encoder.load_state_dict(saved)
        return semantic_info_nce(z_anchor, z_view.detach(), self.tau)
