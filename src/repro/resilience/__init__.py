"""Fault tolerance subsystem: retries, deadlines, breakers, auto-resume.

Composable primitives that keep long pre-training runs and the serving
path alive through the failures production actually sees — hung or
OOM-killed workers, truncated checkpoints, slow or broken model calls:

* :class:`RetryPolicy` — exponential backoff with deterministic jitter
  (the schedule depends only on ``(seed, attempt)``).
* :class:`Deadline` — a per-request monotonic time budget raising
  :class:`DeadlineExceeded` when spent.
* :class:`CircuitBreaker` — closed/open/half-open isolation of a failing
  dependency, with :class:`CircuitOpenError` rejections.
* :func:`find_latest_checkpoint` / :func:`resume_trainer` — discovery of
  the most advanced *valid* checkpoint (corrupt bundles are skipped, not
  raised on).
* :func:`interrupt_guard` — SIGINT/SIGTERM trapping for graceful
  epoch-boundary stops and emergency checkpoints.

Everything emits ``resilience/*`` metrics through the ambient
:func:`repro.obs.current` observer. Consumers: per-chunk timeouts and
worker replacement in :class:`repro.runtime.ParallelExecutor`, crash-safe
``repro pretrain --resume``, and :class:`repro.serve.EmbeddingService`
deadlines/shedding/degraded mode. See docs/RESILIENCE.md.
"""

from .autoresume import (
    InterruptState,
    find_latest_checkpoint,
    interrupt_guard,
    resume_trainer,
)
from .policies import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    DeadlineExceeded,
    LoadShedError,
    ResilienceError,
    RetryExhaustedError,
    RetryPolicy,
)

__all__ = [
    "ResilienceError",
    "RetryExhaustedError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "LoadShedError",
    "RetryPolicy",
    "Deadline",
    "CircuitBreaker",
    "find_latest_checkpoint",
    "resume_trainer",
    "interrupt_guard",
    "InterruptState",
]
