"""Crash-safe training resume: checkpoint discovery + signal trapping.

Two pieces turn a checkpoint directory into a crash-safe training run:

* :func:`find_latest_checkpoint` scans a directory for the most advanced
  **valid** checkpoint — candidates are ranked by how many epochs they
  carry, every candidate is integrity-verified (header parse + sha256
  checksum via :func:`repro.serve.verify_checkpoint`), and corrupt or
  truncated bundles are skipped (counted under
  ``resilience/corrupt_checkpoints``) so a partially written file never
  poisons a resume — discovery falls back to the previous valid one.
* :func:`interrupt_guard` traps SIGINT/SIGTERM for the enclosed block.
  The first signal requests a *graceful* stop (the training loop finishes
  the current epoch, then exits cleanly so an emergency checkpoint can be
  written at an epoch boundary — keeping resumed histories bit-identical
  to uninterrupted runs); a second signal raises ``KeyboardInterrupt``
  for callers who really mean it.

``repro pretrain --checkpoint-dir DIR --resume`` wires both together; see
docs/RESILIENCE.md for the full failure matrix.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Callable

from ..obs import current

__all__ = ["find_latest_checkpoint", "resume_trainer", "interrupt_guard",
           "InterruptState"]


def _checkpoint_epochs(path: Path) -> int | None:
    """Epochs recorded in a bundle's header; None if unreadable."""
    from ..serve.checkpoint import read_checkpoint_header

    try:
        header = read_checkpoint_header(path)
    except Exception:  # noqa: BLE001 — any unreadable bundle is a non-candidate
        return None
    history = header.get("metadata", {}).get("history", [])
    return len(history) if isinstance(history, list) else 0


def find_latest_checkpoint(directory: str | Path,
                           pattern: str = "*.npz") -> Path | None:
    """Most advanced *valid* checkpoint under ``directory`` (or None).

    Candidates are ranked by (epochs trained, modification time,
    filename) and verified in that order; the first one that passes a
    full integrity check (readable archive, schema version, sha256
    checksum) wins. The filename leg breaks mtime ties deterministically
    — on filesystems with coarse timestamps, ``latest.npz`` and
    ``epoch-0003.npz`` written in the same second would otherwise
    resume in directory-iteration order.
    Corrupt, truncated or unreadable bundles are skipped and counted
    under ``resilience/corrupt_checkpoints`` — a crash mid-write therefore
    falls back to the previous valid checkpoint instead of raising.
    """
    from ..serve.checkpoint import verify_checkpoint

    directory = Path(directory)
    if not directory.is_dir():
        return None
    obs = current()
    ranked: list[tuple[int, float, Path]] = []
    for path in directory.glob(pattern):
        epochs = _checkpoint_epochs(path)
        if epochs is None:
            obs.increment("resilience/corrupt_checkpoints")
            continue
        ranked.append((epochs, path.stat().st_mtime, path))
    ranked.sort(key=lambda entry: (entry[0], entry[1], entry[2].name),
                reverse=True)
    for _, _, path in ranked:
        if verify_checkpoint(path):
            return path
        obs.increment("resilience/corrupt_checkpoints")
    return None


def resume_trainer(directory: str | Path):
    """Rebuild an :class:`~repro.core.SGCLTrainer` from the latest valid
    checkpoint under ``directory``; None when no valid checkpoint exists.

    The resumed trainer's continued ``pretrain`` is bit-identical to a run
    that never stopped (see :meth:`SGCLTrainer.from_checkpoint`).
    """
    from ..core.trainer import SGCLTrainer

    path = find_latest_checkpoint(directory)
    if path is None:
        return None
    trainer = SGCLTrainer.from_checkpoint(path)
    current().event("resume", checkpoint=str(path),
                    epochs_done=len(trainer.history))
    return trainer


class InterruptState:
    """Handle yielded by :func:`interrupt_guard`.

    ``interrupted`` flips to True on the first trapped signal;
    ``signal_name`` records which one arrived.
    """

    def __init__(self):
        self.interrupted = False
        self.signal_name: str | None = None


@contextmanager
def interrupt_guard(on_interrupt: Callable[[], None] | None = None, *,
                    signals: tuple = (signal.SIGINT, signal.SIGTERM)):
    """Trap ``signals`` for the enclosed block; graceful first, hard second.

    The first trapped signal sets ``state.interrupted``, counts
    ``resilience/interrupts`` and calls ``on_interrupt()`` (typically
    :meth:`SGCLTrainer.request_stop`, so the loop exits at the next epoch
    boundary). A second signal raises :class:`KeyboardInterrupt`
    immediately. Previous handlers are restored on exit. Only usable from
    the main thread (signal-handler rule); elsewhere the guard is inert
    and the state is still yielded.
    """
    state = InterruptState()

    def handler(signum, frame):
        if state.interrupted:
            raise KeyboardInterrupt
        state.interrupted = True
        state.signal_name = signal.Signals(signum).name
        current().increment("resilience/interrupts")
        if on_interrupt is not None:
            on_interrupt()

    if threading.current_thread() is not threading.main_thread():
        yield state
        return
    previous = {}
    for sig in signals:
        previous[sig] = signal.signal(sig, handler)
    try:
        yield state
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
