"""Composable resilience primitives: retries, deadlines, circuit breaking.

Three small, dependency-free building blocks shared by the runtime, the
training loop and the serving layer:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  **deterministic** jitter (derived from ``(seed, attempt)`` via
  ``numpy.random.SeedSequence``), so two runs with the same seed back off
  identically — retry schedules are reproducible, like everything else in
  this codebase.
* :class:`Deadline` — a monotonic time budget threaded through a request;
  ``check()`` raises :class:`DeadlineExceeded` once the budget is spent.
* :class:`CircuitBreaker` — a closed → open → half-open state machine
  that stops hammering a failing dependency and probes it again after a
  recovery timeout.

All three emit ``resilience/*`` metrics through the ambient
:func:`repro.obs.current` observer (a no-op when observability is off),
so every retry, timeout and breaker transition is visible in the same
substrate as training telemetry. See docs/RESILIENCE.md.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from ..obs import current

__all__ = [
    "ResilienceError",
    "RetryExhaustedError",
    "DeadlineExceeded",
    "CircuitOpenError",
    "LoadShedError",
    "RetryPolicy",
    "Deadline",
    "CircuitBreaker",
]


class ResilienceError(RuntimeError):
    """Base class for failures raised by the resilience primitives."""


class RetryExhaustedError(ResilienceError):
    """Every attempt of a :meth:`RetryPolicy.call` failed.

    The final attempt's exception is chained as ``__cause__``.
    """

    def __init__(self, attempts: int, last_error: BaseException):
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            f"operation failed after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}")


class DeadlineExceeded(ResilienceError):
    """A :class:`Deadline` budget was spent before the work finished."""


class CircuitOpenError(ResilienceError):
    """A :class:`CircuitBreaker` refused the call (dependency unhealthy)."""


class LoadShedError(ResilienceError):
    """A request was rejected to protect an overloaded service."""


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    Parameters
    ----------
    max_attempts:
        Total attempts (first try included); must be >= 1.
    base_delay:
        Delay before the first retry, in seconds. ``0`` disables sleeping
        entirely (useful in tests and for in-process retries).
    multiplier:
        Exponential growth factor between consecutive retries.
    max_delay:
        Cap on any single backoff delay.
    jitter:
        Fraction of each delay randomised away (0 = none, 0.5 = up to half).
        The jitter for retry ``i`` depends only on ``(seed, i)``, so
        schedules are bit-reproducible across runs and worker counts.
    seed:
        Root of the jitter stream.
    sleep:
        Injectable sleep function (tests pass a recorder).

    Examples
    --------
    >>> policy = RetryPolicy(max_attempts=3, base_delay=0.1, seed=7)
    >>> policy.call(flaky_io)          # retries twice, then gives up
    """

    def __init__(self, max_attempts: int = 3, *, base_delay: float = 0.05,
                 multiplier: float = 2.0, max_delay: float = 2.0,
                 jitter: float = 0.5, seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        if base_delay < 0 or max_delay < 0:
            raise ValueError("delays must be >= 0")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self.sleep = sleep

    # ------------------------------------------------------------------
    def delay(self, retry: int) -> float:
        """Backoff before retry ``retry`` (0-based), jitter included.

        Deterministic: depends only on the policy parameters and
        ``(seed, retry)``, never on wall-clock or call history.
        """
        if retry < 0:
            raise ValueError("retry index must be >= 0")
        raw = min(self.max_delay, self.base_delay * self.multiplier ** retry)
        if self.jitter == 0.0 or raw == 0.0:
            return raw
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, retry]))
        return raw * (1.0 - self.jitter * float(rng.random()))

    def delays(self) -> list[float]:
        """The full backoff schedule (one entry per possible retry)."""
        return [self.delay(i) for i in range(self.max_attempts - 1)]

    # ------------------------------------------------------------------
    def call(self, fn: Callable, *args,
             retry_on: tuple[type[BaseException], ...] = (Exception,),
             on_retry: Callable[[int, BaseException], None] | None = None,
             **kwargs):
        """Run ``fn(*args, **kwargs)`` under this policy.

        Exceptions matching ``retry_on`` consume an attempt (counted under
        ``resilience/retries``); anything else propagates immediately.
        After the last attempt a :class:`RetryExhaustedError` is raised
        (counted under ``resilience/giveups``) with the final error
        chained. ``on_retry(retry_index, error)`` is invoked before each
        backoff sleep.
        """
        obs = current()
        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except retry_on as error:  # noqa: PERF203 — retry loop
                last = error
                if attempt == self.max_attempts - 1:
                    break
                obs.increment("resilience/retries")
                if on_retry is not None:
                    on_retry(attempt, error)
                pause = self.delay(attempt)
                if pause > 0:
                    self.sleep(pause)
        obs.increment("resilience/giveups")
        raise RetryExhaustedError(self.max_attempts, last) from last


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
class Deadline:
    """A monotonic time budget; ``None`` seconds means unlimited.

    Instances are cheap value objects created per request and threaded
    through the code doing the work; long-running stages call
    :meth:`check` at natural yield points (between encoder chunks,
    between epochs, …).
    """

    __slots__ = ("seconds", "_clock", "_expires")

    def __init__(self, seconds: float | None, *,
                 clock: Callable[[], float] = time.monotonic):
        if seconds is not None and seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._expires = None if seconds is None else clock() + seconds

    def remaining(self) -> float:
        """Seconds left (``inf`` for an unlimited deadline; can go negative)."""
        if self._expires is None:
            return float("inf")
        return self._expires - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, label: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` (and count it) once expired."""
        if self.expired:
            current().increment("resilience/deadline_exceeded")
            raise DeadlineExceeded(
                f"{label} exceeded its {self.seconds:.3f}s deadline")

    def __repr__(self) -> str:
        if self.seconds is None:
            return "Deadline(unlimited)"
        return f"Deadline({self.seconds}s, remaining={self.remaining():.3f}s)"


# ----------------------------------------------------------------------
# CircuitBreaker
# ----------------------------------------------------------------------
class CircuitBreaker:
    """Closed → open → half-open failure isolation for a dependency.

    * **closed** — calls flow; consecutive failures are counted and reset
      on any success. ``failure_threshold`` consecutive failures trip the
      breaker (counted under ``resilience/breaker_open``).
    * **open** — calls are refused (:meth:`allow` returns False,
      :meth:`call` raises :class:`CircuitOpenError`, counted under
      ``resilience/breaker_rejections``) until ``recovery_timeout``
      seconds have passed.
    * **half-open** — one probe call is let through; success closes the
      breaker, failure re-opens it and restarts the recovery clock.

    The current state is mirrored to the ``resilience/breaker_state``
    gauge (0 = closed, 1 = half-open, 2 = open).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    _STATE_GAUGE = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}

    def __init__(self, failure_threshold: int = 5, *,
                 recovery_timeout: float = 30.0,
                 clock: Callable[[], float] = time.monotonic,
                 name: str = "breaker"):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        if recovery_timeout <= 0:
            raise ValueError(
                f"recovery_timeout must be positive, got {recovery_timeout}")
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self.name = name
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._openings = 0
        self._rejections = 0
        self._failures = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state; an expired open breaker reads as half-open."""
        if self._state == self.OPEN and self._opened_at is not None \
                and self._clock() - self._opened_at >= self.recovery_timeout:
            self._transition(self.HALF_OPEN)
        return self._state

    def _transition(self, state: str) -> None:
        self._state = state
        current().set_gauge("resilience/breaker_state",
                            self._STATE_GAUGE[state])

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """Whether a call may proceed right now (open breakers refuse)."""
        state = self.state
        if state == self.OPEN:
            self._rejections += 1
            current().increment("resilience/breaker_rejections")
            return False
        return True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        if self._state != self.CLOSED:
            self._transition(self.CLOSED)

    def record_failure(self) -> None:
        self._failures += 1
        current().increment("resilience/breaker_failures")
        if self._state == self.HALF_OPEN:
            self._open()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._open()

    def _open(self) -> None:
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._openings += 1
        current().increment("resilience/breaker_open")
        self._transition(self.OPEN)

    # ------------------------------------------------------------------
    def call(self, fn: Callable, *args, **kwargs):
        """Run ``fn`` through the breaker, recording the outcome."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit {self.name!r} is open; retry after "
                f"{self.recovery_timeout}s recovery timeout")
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def stats(self) -> dict:
        """State + lifetime counters, for ``stats()``-style surfaces."""
        return {
            "state": self.state,
            "failures": self._failures,
            "openings": self._openings,
            "rejections": self._rejections,
        }

    def __repr__(self) -> str:
        return (f"CircuitBreaker(name={self.name!r}, state={self.state!r}, "
                f"threshold={self.failure_threshold})")
