"""repro — reproduction of SGCL (Cui et al., ICDE 2024).

Semantic-aware Graph Contrastive Learning with Lipschitz Graph Augmentation,
built end-to-end on a from-scratch numpy substrate (autodiff, GNNs, datasets,
classifiers). See README.md for a quickstart and DESIGN.md for the system
inventory.
"""

# Defined before the submodule imports: serve.checkpoint stamps it into
# checkpoint headers at import time.
__version__ = "1.3.0"

from . import (
    baselines,
    bench,
    core,
    data,
    eval,
    fleet,
    gnn,
    graph,
    nn,
    obs,
    sampling,
    serve,
    tensor,
    validate,
)

__all__ = [
    "tensor",
    "nn",
    "graph",
    "gnn",
    "data",
    "eval",
    "core",
    "baselines",
    "bench",
    "obs",
    "sampling",
    "serve",
    "fleet",
    "validate",
    "__version__",
]
