"""Dataset container and name → generator registry.

The paper evaluates on TU datasets, Zinc-2M, MoleculeNet and
MNIST-Superpixel. None of those are downloadable in this offline
environment, so every dataset here is produced by a *seeded synthetic
generator* statistically matched to the original (see DESIGN.md §2). The
registry hides that behind the same ``load_dataset("MUTAG")`` call a PyG
user would expect.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..graph import Graph

__all__ = ["GraphDataset", "register_dataset", "load_dataset", "available_datasets"]


class GraphDataset:
    """An in-memory list of graphs plus task metadata.

    Parameters
    ----------
    name:
        Human-readable dataset name.
    graphs:
        The member graphs.
    num_classes:
        Number of classes for single-label classification; for multi-task
        binary datasets this is the number of tasks.
    task:
        ``"classification"`` (int labels) or ``"multitask"`` (float label
        vectors with NaN = missing, evaluated by ROC-AUC).
    """

    def __init__(self, name: str, graphs: Sequence[Graph], num_classes: int,
                 task: str = "classification"):
        if task not in ("classification", "multitask"):
            raise ValueError(f"unknown task type {task!r}")
        if not graphs:
            raise ValueError("dataset must contain at least one graph")
        self.name = name
        self.graphs = list(graphs)
        self.num_classes = num_classes
        self.task = task

    def __len__(self) -> int:
        return len(self.graphs)

    def __getitem__(self, index):
        if isinstance(index, (list, np.ndarray)):
            return GraphDataset(self.name, [self.graphs[i] for i in index],
                                self.num_classes, self.task)
        return self.graphs[index]

    def __iter__(self):
        return iter(self.graphs)

    def __repr__(self) -> str:
        return (f"GraphDataset({self.name!r}, n={len(self)}, "
                f"classes={self.num_classes}, task={self.task!r})")

    # ------------------------------------------------------------------
    @property
    def num_features(self) -> int:
        return self.graphs[0].num_features

    def labels(self) -> np.ndarray:
        """Graph-level labels, one row per graph.

        Graphs without a graph-level label (``y=None`` — e.g. node-labelled
        corpora, where supervision lives on the nodes) contribute NaN rows
        instead of silently degrading the result to an object array: with
        any labelled graph present the missing entries become NaN (scalar
        or NaN-filled vector, matching the labelled shape); with no
        labelled graph at all the result is an all-NaN float vector.
        """
        ys = [g.y for g in self.graphs]
        if all(y is not None for y in ys):
            return np.asarray(ys)
        reference = next((y for y in ys if y is not None), None)
        if reference is None:
            return np.full(len(ys), np.nan)
        blank = np.full(np.shape(reference), np.nan) \
            if np.ndim(reference) else np.nan
        return np.asarray([blank if y is None else y for y in ys],
                          dtype=np.float64)

    def statistics(self) -> dict[str, float]:
        """Summary statistics in the format of the paper's Tables I/II.

        ``num_labeled`` counts graphs carrying a graph-level label, so
        corpora mixing labelled and node-labelled (``y=None``) graphs
        report their supervision coverage instead of crashing consumers
        that assume every graph is labelled.
        """
        nodes = np.array([g.num_nodes for g in self.graphs], dtype=float)
        edges = np.array([g.num_edges / 2 for g in self.graphs], dtype=float)
        return {
            "num_graphs": len(self),
            "avg_nodes": float(nodes.mean()),
            "avg_edges": float(edges.mean()),
            "num_features": self.num_features,
            "num_classes": self.num_classes,
            "num_labeled": sum(g.y is not None for g in self.graphs),
        }

    def subset(self, indices) -> "GraphDataset":
        return self[np.asarray(indices, dtype=np.int64)]


_REGISTRY: dict[str, Callable[..., GraphDataset]] = {}


def register_dataset(name: str):
    """Decorator registering a generator under ``name`` (case-insensitive)."""

    def decorator(fn: Callable[..., GraphDataset]):
        _REGISTRY[name.lower()] = fn
        return fn

    return decorator


def load_dataset(name: str, *, seed: int = 0, scale: float = 1.0,
                 validate: str | None = None, **kwargs) -> GraphDataset:
    """Instantiate a registered dataset.

    Parameters
    ----------
    seed:
        Generator seed — identical seeds produce identical datasets.
    scale:
        Fraction of the original graph count (and, for the huge datasets,
        node count) to generate; benches use small scales so CPU runs finish.
    validate:
        Run the structural invariant suite (:class:`repro.validate.
        DatasetValidator`) over the loaded graphs under this policy —
        ``"raise"``, ``"drop"`` or ``"warn"``. ``None`` (default) skips
        validation; the bundled generators are checked in CI via
        ``repro doctor``.
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; available: {available_datasets()}")
    dataset = _REGISTRY[key](seed=seed, scale=scale, **kwargs)
    if validate is not None:
        from ..validate import DatasetValidator

        dataset = DatasetValidator(policy=validate).apply(dataset)
    return dataset


def available_datasets() -> list[str]:
    return sorted(_REGISTRY)
