"""Dataset split utilities: stratified k-fold, scaffold split, label-rate split.

These implement the three evaluation protocols of the paper:
* unsupervised learning — 90/10 pretrain split + SVM 10-fold CV (§VI.B),
* transfer learning — scaffold split of downstream molecule tasks (§VI.B),
* semi-supervised learning — 1% / 10% label-rate fine-tuning (§VI.E).
"""

from __future__ import annotations

import numpy as np

from .dataset import GraphDataset

__all__ = [
    "train_test_split",
    "stratified_kfold",
    "scaffold_split",
    "label_rate_split",
]


def train_test_split(n: int, test_fraction: float,
                     rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Random index split; returns ``(train_idx, test_idx)``."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    return np.sort(order[n_test:]), np.sort(order[:n_test])


def stratified_kfold(labels: np.ndarray, k: int,
                     rng: np.random.Generator) -> list[tuple[np.ndarray, np.ndarray]]:
    """Stratified k-fold: each fold preserves class proportions.

    Returns a list of ``(train_idx, test_idx)`` pairs. Used for the paper's
    10-fold SVM cross-validation on TU datasets.
    """
    labels = np.asarray(labels)
    if k < 2:
        raise ValueError("k must be at least 2")
    folds: list[list[int]] = [[] for _ in range(k)]
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        rng.shuffle(members)
        for i, index in enumerate(members):
            folds[i % k].append(int(index))
    result = []
    for i in range(k):
        test = np.sort(np.array(folds[i], dtype=np.int64))
        train = np.sort(np.concatenate(
            [np.array(folds[j], dtype=np.int64) for j in range(k) if j != i]))
        result.append((train, test))
    return result


def scaffold_split(dataset: GraphDataset, fractions: tuple[float, float, float]
                   = (0.8, 0.1, 0.1)) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic scaffold split (Hu et al. 2020 protocol).

    Graphs are grouped by ``meta["scaffold"]``; groups are sorted by
    descending size and greedily assigned to train, then valid, then test —
    so test scaffolds are rare ones never seen in training (the
    out-of-distribution setting transfer learning evaluates).
    """
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError("fractions must sum to 1")
    groups: dict[object, list[int]] = {}
    for index, graph in enumerate(dataset):
        key = graph.meta.get("scaffold")
        if key is None:
            raise KeyError(f"graph {index} has no 'scaffold' metadata")
        groups.setdefault(key, []).append(index)
    # Big scaffolds first, ties broken by scaffold key for determinism.
    ordered = sorted(groups.items(), key=lambda kv: (-len(kv[1]), str(kv[0])))
    n = len(dataset)
    train_cap = fractions[0] * n
    valid_cap = (fractions[0] + fractions[1]) * n
    train, valid, test = [], [], []
    assigned = 0
    for _, members in ordered:
        if assigned + len(members) <= train_cap or not train:
            train.extend(members)
        elif assigned + len(members) <= valid_cap or not valid:
            valid.extend(members)
        else:
            test.extend(members)
        assigned += len(members)
    if not test:  # tiny datasets: steal the last valid scaffold
        test.append(valid.pop())
    return (np.sort(np.array(train)), np.sort(np.array(valid)),
            np.sort(np.array(test)))


def label_rate_split(labels: np.ndarray, label_rate: float,
                     rng: np.random.Generator) -> np.ndarray:
    """Indices of a stratified labelled subset of size ``label_rate · n``.

    At least one example per class is always included (the 1 % setting on a
    small dataset would otherwise lose classes entirely).
    """
    labels = np.asarray(labels)
    if not 0.0 < label_rate <= 1.0:
        raise ValueError("label_rate must be in (0, 1]")
    picked: list[int] = []
    for cls in np.unique(labels):
        members = np.flatnonzero(labels == cls)
        rng.shuffle(members)
        count = max(1, int(round(label_rate * len(members))))
        picked.extend(members[:count].tolist())
    return np.sort(np.array(picked, dtype=np.int64))
