"""MNIST-Superpixel-like digit graphs (Fig. 7 visualisation workload).

Digits are drawn as stroke polylines on a small raster, then converted to a
superpixel graph: every active cell becomes a node with ``(intensity, row,
col)`` features, plus low-intensity background cells sampled as noise nodes;
edges connect spatially adjacent cells (8-neighbourhood). Stroke cells are
recorded in ``meta["semantic_nodes"]`` — Fig. 7's "semantic nodes at the
centre of the digit" ground truth.
"""

from __future__ import annotations

import numpy as np

from ..graph import Graph
from .dataset import GraphDataset, register_dataset

__all__ = ["generate_superpixel_dataset", "digit_graph", "DIGIT_STROKES"]

_GRID = 12  # raster side length

# Polyline control points (row, col) in a unit square, per digit.
DIGIT_STROKES: dict[int, list[list[tuple[float, float]]]] = {
    0: [[(0.1, 0.5), (0.3, 0.85), (0.7, 0.85), (0.9, 0.5), (0.7, 0.15),
         (0.3, 0.15), (0.1, 0.5)]],
    1: [[(0.1, 0.5), (0.9, 0.5)], [(0.3, 0.3), (0.1, 0.5)]],
    2: [[(0.2, 0.2), (0.1, 0.5), (0.2, 0.8), (0.5, 0.6), (0.9, 0.2),
         (0.9, 0.8)]],
    3: [[(0.1, 0.2), (0.15, 0.8), (0.5, 0.5), (0.85, 0.8), (0.9, 0.2)]],
    4: [[(0.1, 0.7), (0.9, 0.7)], [(0.1, 0.7), (0.6, 0.15), (0.6, 0.85)]],
    5: [[(0.1, 0.8), (0.1, 0.2), (0.5, 0.2), (0.55, 0.8), (0.9, 0.7),
         (0.9, 0.2)]],
    6: [[(0.1, 0.7), (0.5, 0.2), (0.9, 0.4), (0.85, 0.8), (0.55, 0.75),
         (0.5, 0.3)]],
    7: [[(0.1, 0.15), (0.1, 0.85), (0.9, 0.35)]],
    8: [[(0.3, 0.5), (0.15, 0.75), (0.3, 0.5), (0.15, 0.25), (0.3, 0.5)],
        [(0.3, 0.5), (0.6, 0.2), (0.9, 0.5), (0.6, 0.8), (0.3, 0.5)]],
    9: [[(0.9, 0.3), (0.15, 0.6), (0.1, 0.3), (0.4, 0.2), (0.45, 0.65)]],
}


def _rasterize(digit: int, rng: np.random.Generator) -> np.ndarray:
    """Render the digit's strokes onto a ``_GRID×_GRID`` intensity raster."""
    raster = np.zeros((_GRID, _GRID))
    jitter = rng.normal(0, 0.02, size=2)
    for stroke in DIGIT_STROKES[digit]:
        points = np.array(stroke) + jitter
        for (r0, c0), (r1, c1) in zip(points[:-1], points[1:]):
            steps = max(2, int(3 * _GRID * np.hypot(r1 - r0, c1 - c0)))
            for t in np.linspace(0.0, 1.0, steps):
                row = int(np.clip((r0 + t * (r1 - r0)) * (_GRID - 1), 0, _GRID - 1))
                col = int(np.clip((c0 + t * (c1 - c0)) * (_GRID - 1), 0, _GRID - 1))
                raster[row, col] = 1.0
    return raster


def digit_graph(digit: int, rng: np.random.Generator,
                noise_nodes: int = 12) -> Graph:
    """Superpixel graph of one digit: stroke nodes + background noise nodes."""
    raster = _rasterize(digit, rng)
    stroke_cells = np.argwhere(raster > 0)
    background = np.argwhere(raster == 0)
    rng.shuffle(background)
    noise_cells = background[:noise_nodes]
    cells = np.concatenate([stroke_cells, noise_cells], axis=0)
    intensity = np.concatenate([
        rng.uniform(0.7, 1.0, size=len(stroke_cells)),
        rng.uniform(0.0, 0.15, size=len(noise_cells)),
    ])
    # As in PyG's MNISTSuperpixels, node features are the superpixel
    # intensity; positions only build the adjacency (kept in meta for
    # rendering). A second channel carries intensity² so the feature is not
    # rank-1 across the graph.
    x = np.column_stack([intensity, intensity ** 2])
    # 8-neighbourhood adjacency between chosen cells.
    edges = []
    for i in range(len(cells)):
        for j in range(i + 1, len(cells)):
            if np.abs(cells[i] - cells[j]).max() <= 1:
                edges.append((i, j))
    if not edges:
        edges = [(0, min(1, len(cells) - 1))]
    arr = np.array(edges, dtype=np.int64)
    edge_index = np.concatenate([arr, arr[:, ::-1]], axis=0).T
    mask = np.zeros(len(cells), dtype=bool)
    mask[:len(stroke_cells)] = True
    return Graph(x, edge_index, int(digit),
                 {"semantic_nodes": mask, "cells": cells, "grid": _GRID})


@register_dataset("MNIST-Superpixel")
def generate_superpixel_dataset(*, seed: int = 0, scale: float = 1.0,
                                digits: tuple[int, ...] = tuple(range(10)),
                                per_digit: int | None = None) -> GraphDataset:
    """Dataset of superpixel digit graphs (default 20 per digit × scale)."""
    rng = np.random.default_rng(seed + 55001)
    count = per_digit if per_digit is not None else max(4, int(20 * scale))
    graphs = [digit_graph(d, rng) for d in digits for _ in range(count)]
    return GraphDataset("MNIST-Superpixel", graphs, num_classes=10)
