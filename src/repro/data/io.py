"""Dataset serialisation: save/load a :class:`GraphDataset` to ``.npz``.

The synthetic generators are deterministic, but saving materialised datasets
is still useful for pinning the exact graphs of a committed experiment run,
sharing them with collaborators, or loading external graphs prepared by
other tooling. The format packs every graph's arrays into one compressed
archive plus a small JSON header.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from ..graph import Graph
from .dataset import GraphDataset

__all__ = ["save_dataset", "load_saved_dataset", "atomic_write"]

_FORMAT_VERSION = 1
# Metadata values that are numpy arrays are persisted; everything else must
# be JSON-encodable.
_META_ARRAY_PREFIX = "metaarr"

# Indirection so tests can observe/deny the flushes without touching the
# real os.fsync that the rest of the process relies on.
_FSYNC = os.fsync


def _fsync_fd_of(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        _FSYNC(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: str | Path, suffix: str = "", durable: bool = True):
    """Yield a temporary sibling path; rename onto ``path`` on success.

    Creates parent directories, writes to a pid-unique temporary file and
    atomically renames it into place, so concurrent writers can never leave a
    truncated file at ``path``. ``suffix`` keeps writers that key on the file
    extension happy (``np.savez`` appends ``.npz`` unless already present).

    With ``durable=True`` (the default) the temporary file's data is
    fsynced *before* the rename and the parent directory entry *after*
    it — the POSIX ordering that makes the commit survive power loss:
    a crash can lose the whole write or keep the whole write, but can
    never surface ``path`` pointing at unflushed data. ``durable=False``
    skips both flushes for callers writing disposable scratch files.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp{suffix}")
    try:
        yield tmp
        if durable and tmp.exists():
            _fsync_fd_of(tmp)
        os.replace(tmp, path)
        if durable:
            _fsync_fd_of(path.parent)
    finally:
        if tmp.exists():
            tmp.unlink()


def save_dataset(dataset: GraphDataset, path: str | Path) -> Path:
    """Write ``dataset`` to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays: dict[str, np.ndarray] = {}
    header: dict = {
        "version": _FORMAT_VERSION,
        "name": dataset.name,
        "num_classes": dataset.num_classes,
        "task": dataset.task,
        "num_graphs": len(dataset),
        "graphs": [],
    }
    for i, graph in enumerate(dataset):
        arrays[f"x{i}"] = graph.x
        arrays[f"e{i}"] = graph.edge_index
        entry: dict = {"meta": {}, "meta_arrays": []}
        if graph.y is None:
            entry["y"] = None
        elif np.isscalar(graph.y) or isinstance(graph.y, (int, float)):
            entry["y"] = float(graph.y)
        else:
            arrays[f"y{i}"] = np.asarray(graph.y, dtype=float)
            entry["y"] = "__array__"
        for key, value in graph.meta.items():
            if isinstance(value, np.ndarray):
                arrays[f"{_META_ARRAY_PREFIX}_{i}_{key}"] = value
                entry["meta_arrays"].append(key)
            else:
                entry["meta"][key] = value
        header["graphs"].append(entry)
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8)
    with atomic_write(path, suffix=".npz") as tmp:
        np.savez_compressed(tmp, **arrays)
    return path


def load_saved_dataset(path: str | Path) -> GraphDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    with np.load(Path(path), allow_pickle=False) as archive:
        header = json.loads(bytes(archive["__header__"]).decode())
        if header["version"] != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported dataset format version {header['version']}")
        graphs = []
        for i, entry in enumerate(header["graphs"]):
            if entry["y"] is None:
                y = None
            elif entry["y"] == "__array__":
                y = archive[f"y{i}"]
            else:
                y = entry["y"]
                y = int(y) if header["task"] == "classification" else y
            meta = dict(entry["meta"])
            for key in entry["meta_arrays"]:
                meta[key] = archive[f"{_META_ARRAY_PREFIX}_{i}_{key}"]
            graphs.append(Graph(archive[f"x{i}"], archive[f"e{i}"], y, meta))
    return GraphDataset(header["name"], graphs, header["num_classes"],
                        header["task"])
