"""Dataset substrate: containers, loaders, splits, synthetic generators."""

from .dataset import GraphDataset, available_datasets, load_dataset, register_dataset
from .loader import DataLoader
from .splits import (
    label_rate_split,
    scaffold_split,
    stratified_kfold,
    train_test_split,
)
from .motifs import MOTIF_KINDS, motif_edges, motif_size
from .tu import TU_SPECS, generate_tu_dataset
from .molecules import (
    FUNCTIONAL_GROUPS,
    MOLECULENET_SPECS,
    NUM_ATOM_TYPES,
    generate_moleculenet_like,
    generate_zinc_like,
)
from .io import atomic_write, load_saved_dataset, save_dataset
from .superpixel import DIGIT_STROKES, digit_graph, generate_superpixel_dataset

__all__ = [
    "GraphDataset",
    "load_dataset",
    "register_dataset",
    "available_datasets",
    "DataLoader",
    "train_test_split",
    "stratified_kfold",
    "scaffold_split",
    "label_rate_split",
    "MOTIF_KINDS",
    "motif_edges",
    "motif_size",
    "TU_SPECS",
    "generate_tu_dataset",
    "MOLECULENET_SPECS",
    "FUNCTIONAL_GROUPS",
    "NUM_ATOM_TYPES",
    "generate_zinc_like",
    "generate_moleculenet_like",
    "save_dataset",
    "atomic_write",
    "load_saved_dataset",
    "DIGIT_STROKES",
    "digit_graph",
    "generate_superpixel_dataset",
]
