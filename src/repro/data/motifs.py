"""Motif library used to plant class-discriminative semantic structure.

Synthetic datasets plant one motif per class inside otherwise
uninformative background graphs. The motif nodes are exactly the
"semantic-related nodes" of the paper — the ground truth that the
Lipschitz constant generator is supposed to discover — so every generator
records them in ``Graph.meta["semantic_nodes"]``.
"""

from __future__ import annotations

__all__ = ["motif_edges", "MOTIF_KINDS", "SOCIAL_MOTIF_KINDS", "motif_size"]

# Class id → motif shape, per dataset style. Molecule-style datasets use
# low-degree motifs (cycles/paths — functional-group-like ring systems) whose
# nodes carry high-magnitude attribute features; social-style datasets use
# dense motifs (cliques/wheels — communities) whose nodes are hubs. In both
# cases the motif nodes have high representation influence, which is what the
# Lipschitz statistic K = D_R/D_T measures.
MOTIF_KINDS: list[str] = ["cycle4", "cycle6", "path5", "cycle5", "path6",
                          "cycle7", "path4"]
SOCIAL_MOTIF_KINDS: list[str] = ["clique4", "clique6", "wheel6", "clique5",
                                 "star7"]


def motif_size(kind: str) -> int:
    """Number of nodes the named motif occupies."""
    return len(_builders()[kind](0)[0])


def motif_edges(kind: str, offset: int = 0) -> tuple[list[int], list[tuple[int, int]]]:
    """Return ``(node_ids, undirected_edge_list)`` for a motif.

    Node ids start at ``offset``; edges are undirected pairs (callers add
    both orientations).
    """
    builders = _builders()
    if kind not in builders:
        raise KeyError(f"unknown motif {kind!r}; available: {sorted(builders)}")
    return builders[kind](offset)


def _builders():
    def clique(k):
        def build(offset):
            nodes = list(range(offset, offset + k))
            edges = [(nodes[i], nodes[j]) for i in range(k) for j in range(i + 1, k)]
            return nodes, edges
        return build

    def cycle(k):
        def build(offset):
            nodes = list(range(offset, offset + k))
            edges = [(nodes[i], nodes[(i + 1) % k]) for i in range(k)]
            return nodes, edges
        return build

    def star(k):
        def build(offset):
            nodes = list(range(offset, offset + k))
            edges = [(nodes[0], nodes[i]) for i in range(1, k)]
            return nodes, edges
        return build

    def path(k):
        def build(offset):
            nodes = list(range(offset, offset + k))
            edges = [(nodes[i], nodes[i + 1]) for i in range(k - 1)]
            return nodes, edges
        return build

    def wheel(k):
        def build(offset):
            nodes = list(range(offset, offset + k))
            rim = nodes[1:]
            edges = [(rim[i], rim[(i + 1) % len(rim)]) for i in range(len(rim))]
            edges += [(nodes[0], r) for r in rim]
            return nodes, edges
        return build

    return {
        "clique4": clique(4),
        "clique5": clique(5),
        "cycle4": cycle(4),
        "cycle5": cycle(5),
        "cycle6": cycle(6),
        "cycle7": cycle(7),
        "clique6": clique(6),
        "star5": star(5),
        "star7": star(7),
        "path4": path(4),
        "path5": path(5),
        "path6": path(6),
        "wheel6": wheel(6),
    }
