"""Mini-batch loader producing :class:`~repro.graph.Batch` objects."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from ..graph import Batch, Graph

__all__ = ["DataLoader"]


class DataLoader:
    """Iterate over a graph collection in (optionally shuffled) mini-batches.

    Parameters
    ----------
    graphs:
        A :class:`GraphDataset` or any sequence of graphs.
    batch_size:
        Graphs per batch (paper: 128 for pre-training, 16 inside the
        Lipschitz constant generator).
    shuffle:
        Reshuffle at the start of every epoch.
    rng:
        Seeded generator used for shuffling; required when ``shuffle=True``.
    drop_last:
        Drop the final short batch (contrastive losses need ≥2 graphs).
    """

    def __init__(self, graphs: Sequence[Graph], batch_size: int, *,
                 shuffle: bool = False, rng: np.random.Generator | None = None,
                 drop_last: bool = False):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if shuffle and rng is None:
            raise ValueError("shuffle=True requires a seeded rng")
        self.graphs = list(graphs)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.graphs)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        order = np.arange(len(self.graphs))
        if self.shuffle:
            self.rng.shuffle(order)
        for start in range(0, len(order), self.batch_size):
            chunk = order[start:start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            yield Batch([self.graphs[i] for i in chunk])
