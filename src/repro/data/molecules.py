"""Synthetic molecular datasets (transfer-learning benchmarks).

Stand-ins for Zinc-2M (pre-training corpus) and the eight MoleculeNet
downstream tasks of Table II. Molecules are built from a shared grammar:

* a **scaffold** — one of several ring/chain templates (the scaffold id
  drives the deterministic scaffold split, exactly as Murcko scaffolds do
  in Hu et al. 2020's protocol);
* carbon **side chains** — semantic-free background structure;
* **functional groups** — small typed motifs (nitro-, carboxyl-,
  sulfonyl-like, …). These are the semantic nodes; downstream task labels
  are noisy boolean functions of which groups are present, so pre-training
  that learns to preserve functional groups transfers, mirroring why real
  molecular pre-training transfers.

Node features are one-hot atom types. Graphs store ``meta["scaffold"]``,
``meta["functional_groups"]`` (presence vector) and ``meta["semantic_nodes"]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import Graph
from ..graph.transforms import one_hot
from .dataset import GraphDataset, register_dataset

__all__ = [
    "NUM_ATOM_TYPES",
    "FUNCTIONAL_GROUPS",
    "MOLECULENET_SPECS",
    "generate_zinc_like",
    "generate_moleculenet_like",
]

# Atom-type vocabulary: 0=C 1=N 2=O 3=S 4=F 5=Cl 6=Br 7=P 8=B 9=Si 10=Se 11=I
NUM_ATOM_TYPES = 12

# name → (edge template over local ids, atom types per local id). Local node 0
# is the attachment point that bonds to the host molecule.
FUNCTIONAL_GROUPS: dict[str, tuple[list[tuple[int, int]], list[int]]] = {
    "nitro": ([(0, 1), (1, 2), (1, 3)], [0, 1, 2, 2]),
    "carboxyl": ([(0, 1), (1, 2), (1, 3)], [0, 0, 2, 2]),
    "hydroxyl": ([(0, 1)], [0, 2]),
    "amine": ([(0, 1)], [0, 1]),
    "halogen": ([(0, 1)], [0, 5]),
    "sulfonyl": ([(0, 1), (1, 2), (1, 3)], [0, 3, 2, 2]),
    "phosphate": ([(0, 1), (1, 2), (1, 3), (1, 4)], [0, 7, 2, 2, 2]),
    "thiol": ([(0, 1)], [0, 3]),
}
_FG_NAMES = sorted(FUNCTIONAL_GROUPS)

_SCAFFOLDS = ["benzene", "cyclopentane", "fused_bicyclic", "chain", "pyridine",
              "macrocycle", "spiro", "biphenyl"]


@dataclass(frozen=True)
class MoleculeNetSpec:
    """Published statistics of one MoleculeNet dataset (paper Table II).

    ``shifted`` marks datasets whose chemistry is out-of-distribution with
    respect to the ZincLike pre-training corpus. The paper observes exactly
    this on CLINTOX ("the Lipschitz constants generator trained by ZINC15
    may not precisely capture the semantic information in the CLINTOX
    dataset"), so the CLINTOX stand-in skews its functional-group frequencies
    and substitutes rare atom types — reproducing the OOD failure mode that
    ``repro.core.adapt_generator`` then addresses.
    """

    name: str
    num_graphs: int
    num_tasks: int
    missing_rate: float  # fraction of (graph, task) labels that are missing
    shifted: bool = False


MOLECULENET_SPECS: dict[str, MoleculeNetSpec] = {
    "BBBP": MoleculeNetSpec("BBBP", 2039, 1, 0.0),
    "TOX21": MoleculeNetSpec("TOX21", 7831, 12, 0.17),
    "TOXCAST": MoleculeNetSpec("TOXCAST", 8576, 617, 0.3),
    "SIDER": MoleculeNetSpec("SIDER", 1427, 27, 0.0),
    "CLINTOX": MoleculeNetSpec("CLINTOX", 1478, 2, 0.0, shifted=True),
    "MUV": MoleculeNetSpec("MUV", 93087, 17, 0.84),
    "HIV": MoleculeNetSpec("HIV", 41127, 1, 0.0),
    "BACE": MoleculeNetSpec("BACE", 1513, 1, 0.0),
}

_MAX_TASKS = 16  # cap huge multi-task panels (ToxCast: 617) for CPU runs


# ----------------------------------------------------------------------
# Molecule construction
# ----------------------------------------------------------------------
def _scaffold_edges(name: str, rng: np.random.Generator
                    ) -> tuple[list[tuple[int, int]], list[int]]:
    """Return (edge list, atom types) of a scaffold; node ids from 0."""
    def ring(k, start=0):
        return [((start + i), start + (i + 1) % k) for i in range(k)]

    if name == "benzene":
        return ring(6), [0] * 6
    if name == "pyridine":
        return ring(6), [1] + [0] * 5
    if name == "cyclopentane":
        return ring(5), [0] * 5
    if name == "fused_bicyclic":
        edges = ring(6) + [(4, 6), (6, 7), (7, 8), (8, 9), (9, 5)]
        return edges, [0] * 10
    if name == "chain":
        k = int(rng.integers(5, 9))
        return [(i, i + 1) for i in range(k - 1)], [0] * k
    if name == "macrocycle":
        k = int(rng.integers(8, 12))
        return ring(k), [0] * k
    if name == "spiro":
        # Two 5-rings sharing node 4 (spiro junction).
        return ring(5) + ring(5, start=4), [0] * 9
    if name == "biphenyl":
        return ring(6) + ring(6, start=6) + [(0, 6)], [0] * 12
    raise KeyError(f"unknown scaffold {name!r}")


def _build_molecule(rng: np.random.Generator, fg_probability: np.ndarray
                    ) -> Graph:
    """Assemble scaffold + side chains + functional groups into a Graph."""
    scaffold_name = _SCAFFOLDS[int(rng.integers(len(_SCAFFOLDS)))]
    edges, atoms = _scaffold_edges(scaffold_name, rng)
    atoms = list(atoms)
    semantic: list[int] = []
    # Carbon side chains: background, semantic-free.
    for _ in range(int(rng.integers(0, 4))):
        host = int(rng.integers(len(atoms)))
        length = int(rng.integers(1, 4))
        for _ in range(length):
            new = len(atoms)
            atoms.append(0)
            edges.append((host, new))
            host = new
    # Functional groups: the semantic motifs.
    presence = np.zeros(len(_FG_NAMES), dtype=bool)
    for fg_index, fg_name in enumerate(_FG_NAMES):
        if rng.random() >= fg_probability[fg_index]:
            continue
        presence[fg_index] = True
        template_edges, template_atoms = FUNCTIONAL_GROUPS[fg_name]
        host = int(rng.integers(len(atoms)))
        base = len(atoms) - 1  # local id 0 maps onto the host atom
        mapping = {0: host}
        for local in range(1, len(template_atoms)):
            mapping[local] = base + local
            atoms.append(template_atoms[local])
            semantic.append(base + local)
        semantic.append(host)
        for u, v in template_edges:
            edges.append((mapping[u], mapping[v]))
    n = len(atoms)
    mask = np.zeros(n, dtype=bool)
    if semantic:
        mask[np.array(semantic, dtype=np.int64)] = True
    arr = np.array(edges, dtype=np.int64)
    edge_index = np.concatenate([arr, arr[:, ::-1]], axis=0).T
    x = one_hot(np.array(atoms), NUM_ATOM_TYPES)
    meta = {
        "scaffold": scaffold_name,
        "functional_groups": presence,
        "semantic_nodes": mask,
    }
    return Graph(x, edge_index, None, meta)


# ----------------------------------------------------------------------
# Datasets
# ----------------------------------------------------------------------
def generate_zinc_like(*, seed: int = 0, scale: float = 1.0,
                       num_graphs: int | None = None) -> GraphDataset:
    """Unlabeled pre-training corpus (Zinc-2M stand-in).

    ``scale=1.0`` maps to 2000 graphs (not 2M — CPU budget); override with
    ``num_graphs`` for larger corpora.
    """
    rng = np.random.default_rng(seed + 77001)
    count = num_graphs if num_graphs is not None else max(64, int(2000 * scale))
    fg_probability = np.full(len(_FG_NAMES), 0.25)
    graphs = [_build_molecule(rng, fg_probability) for _ in range(count)]
    return GraphDataset("ZincLike", graphs, num_classes=1)


def generate_moleculenet_like(spec: MoleculeNetSpec, *, seed: int = 0,
                              scale: float = 1.0,
                              label_noise: float = 0.1) -> GraphDataset:
    """One downstream multi-task binary dataset.

    Each task's label is a noisy boolean rule over two functional groups
    (presence XOR / OR / AND), so tasks are learnable from semantic structure
    but not trivially. ``missing_rate`` entries are NaN, matching the sparse
    label panels of Tox21/MUV.
    """
    rng = np.random.default_rng(seed + 88001 + _stable_hash(spec.name))
    count = max(48, int(round(min(spec.num_graphs, 4000) * scale)))
    num_tasks = min(spec.num_tasks, _MAX_TASKS)
    # Per-task rules, fixed for the dataset.
    rules = []
    ops = ["or", "and", "xor"]
    for _ in range(num_tasks):
        a, b = rng.choice(len(_FG_NAMES), size=2, replace=False)
        rules.append((int(a), int(b), ops[int(rng.integers(len(ops)))]))
    if spec.shifted:
        # Out-of-distribution chemistry: skewed functional-group frequencies
        # relative to the 0.25-uniform ZincLike corpus.
        fg_probability = 0.05 + 0.65 * (np.arange(len(_FG_NAMES))
                                        % 2).astype(float)
    else:
        fg_probability = np.full(len(_FG_NAMES), 0.35)
    graphs = []
    for _ in range(count):
        graph = _build_molecule(rng, fg_probability)
        if spec.shifted:
            _shift_atom_distribution(graph, rng)
        presence = graph.meta["functional_groups"]
        labels = np.zeros(num_tasks)
        for t, (a, b, op) in enumerate(rules):
            if op == "or":
                value = presence[a] or presence[b]
            elif op == "and":
                value = presence[a] and presence[b]
            else:
                value = presence[a] != presence[b]
            if rng.random() < label_noise:
                value = not value
            labels[t] = float(value)
        missing = rng.random(num_tasks) < spec.missing_rate
        labels[missing] = np.nan
        graph.y = labels
        graphs.append(graph)
    return GraphDataset(spec.name, graphs, num_classes=num_tasks,
                        task="multitask")


def _shift_atom_distribution(graph: Graph, rng: np.random.Generator,
                             carbon_swap_rate: float = 0.3) -> None:
    """Swap a fraction of carbon atoms for rare types (Si/Se/I) in place.

    Creates atom-type statistics the ZincLike-pre-trained generator never
    saw — the CLINTOX out-of-distribution condition.
    """
    rare_types = np.array([9, 10, 11])
    carbons = np.flatnonzero(graph.x[:, 0] == 1.0)
    swap = carbons[rng.random(len(carbons)) < carbon_swap_rate]
    graph.x[swap, 0] = 0.0
    graph.x[swap, rare_types[rng.integers(len(rare_types), size=len(swap))]] \
        = 1.0


def _stable_hash(name: str) -> int:
    return sum(ord(c) * (31 ** i) for i, c in enumerate(name)) % 100003


# ----------------------------------------------------------------------
# Registry entries
# ----------------------------------------------------------------------
register_dataset("ZINC")(generate_zinc_like)
register_dataset("ZINC-2M")(generate_zinc_like)


def _make_loader(spec: MoleculeNetSpec):
    def loader(*, seed: int = 0, scale: float = 1.0, **kwargs) -> GraphDataset:
        return generate_moleculenet_like(spec, seed=seed, scale=scale, **kwargs)

    loader.__name__ = f"load_{spec.name.lower()}"
    loader.__doc__ = f"Synthetic {spec.name}-like dataset (see module docstring)."
    return loader


for _spec in MOLECULENET_SPECS.values():
    register_dataset(_spec.name)(_make_loader(_spec))
