"""Synthetic TU-dataset generators (unsupervised-learning benchmarks).

The original TU datasets (Morris et al., 2020) are not downloadable in this
offline environment. Each generator here produces seeded graphs matched to
the published statistics of Table I — graph count, average node/edge counts,
class count, and attribute style — with a **planted class-discriminative
motif** per graph:

* Molecule-style datasets (MUTAG, PROTEINS, NCI1, DD) use sparse tree-like
  backbones with categorical node labels (one-hot features). The motif nodes
  carry a class-correlated node label.
* Social-style datasets (COLLAB, RDT-B, RDT-M-5K, IMDB-B) use dense random
  backbones with degree one-hot features, as GraphCL does for attribute-free
  TU datasets.

Every graph stores ``meta["semantic_nodes"]`` — the boolean mask of planted
motif nodes — used by tests and Fig. 7 to score how well augmentation methods
identify semantic structure. Models never see it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import Graph
from ..graph.transforms import one_hot
from .dataset import GraphDataset, register_dataset
from .motifs import MOTIF_KINDS, SOCIAL_MOTIF_KINDS, motif_edges

__all__ = ["TU_SPECS", "generate_tu_dataset"]


@dataclass(frozen=True)
class TUSpec:
    """Published statistics of one TU dataset (paper Table I)."""

    name: str
    num_graphs: int
    avg_nodes: float
    avg_edges: float
    num_classes: int
    style: str            # "molecule" | "social"
    num_node_labels: int  # categorical label vocabulary (molecule style)


TU_SPECS: dict[str, TUSpec] = {
    "MUTAG": TUSpec("MUTAG", 188, 17.93, 19.79, 2, "molecule", 7),
    "PROTEINS": TUSpec("PROTEINS", 1113, 39.06, 72.82, 2, "molecule", 3),
    "NCI1": TUSpec("NCI1", 4110, 29.87, 32.30, 2, "molecule", 37),
    "DD": TUSpec("DD", 1178, 284.32, 715.66, 2, "molecule", 89),
    "COLLAB": TUSpec("COLLAB", 5000, 74.49, 2457.78, 3, "social", 0),
    "RDT-B": TUSpec("RDT-B", 2000, 429.63, 497.75, 2, "social", 0),
    "RDT-M-5K": TUSpec("RDT-M-5K", 4999, 508.52, 594.87, 5, "social", 0),
    "IMDB-B": TUSpec("IMDB-B", 1000, 19.77, 96.53, 2, "social", 0),
}

_MAX_DEGREE_FEATURE = 16  # social-style log2-degree one-hot buckets


def generate_tu_dataset(spec: TUSpec, *, seed: int = 0, scale: float = 1.0,
                        node_scale: float = 1.0,
                        label_noise: float = 0.1) -> GraphDataset:
    """Generate one synthetic TU-like dataset.

    Parameters
    ----------
    scale:
        Fraction of the published graph count to generate (min 24).
    node_scale:
        Fraction of the published average node count (min 10 nodes/graph) —
        lets CPU benches shrink the huge DD/RDT graphs.
    label_noise:
        Probability that a graph's label is flipped to a random class, so
        classifiers cannot reach a trivial 100 %.
    """
    rng = np.random.default_rng(seed + _stable_hash(spec.name))
    num_graphs = max(24, int(round(spec.num_graphs * scale)))
    avg_nodes = max(10.0, spec.avg_nodes * node_scale)
    avg_edges = max(avg_nodes, spec.avg_edges * node_scale)
    graphs = []
    for _ in range(num_graphs):
        label = int(rng.integers(spec.num_classes))
        if spec.style == "molecule":
            graph = _molecule_graph(rng, spec, label, avg_nodes, avg_edges)
        else:
            graph = _social_graph(rng, spec, label, avg_nodes, avg_edges)
        if rng.random() < label_noise:
            graph.y = int(rng.integers(spec.num_classes))
        graphs.append(graph)
    return GraphDataset(spec.name, graphs, spec.num_classes)


# ----------------------------------------------------------------------
# Molecule-style generation
# ----------------------------------------------------------------------
def _molecule_graph(rng: np.random.Generator, spec: TUSpec, label: int,
                    avg_nodes: float, avg_edges: float) -> Graph:
    """Sparse backbone (random tree + a few extra ring closures) + motif."""
    n = max(4, _sample_size(rng, avg_nodes) - 6)  # motif adds ~6 nodes back
    edges = _random_tree_edges(rng, n)
    extra = max(0, int(round(n * (avg_edges / avg_nodes - 1.0))))
    edges.extend(_random_extra_edges(rng, n, extra, edges))
    n, semantic = _plant_motif(rng, label, n, edges, MOTIF_KINDS)
    # Node labels: background uniform; motif nodes biased to a class label.
    # The bias is deliberately moderate (0.65) so classification accuracy
    # lands in the paper's 70–90 % band instead of at ceiling.
    labels = rng.integers(spec.num_node_labels, size=n)
    class_label = label % spec.num_node_labels
    for node in np.flatnonzero(semantic):
        if rng.random() < 0.65:
            labels[node] = class_label
    # Continuous attribute channels (PROTEINS-style node attributes): motif
    # atoms carry high-magnitude attributes, background atoms near-zero ones.
    # This is the feature-salience signal the Lipschitz generator picks up,
    # analogous to superpixel intensity in the paper's Fig. 7. Class
    # difficulty is controlled independently by the label bias above, so a
    # strong salience marker does not make classification easier.
    attributes = np.where(semantic[:, None],
                          rng.normal(1.5, 0.15, size=(n, 2)),
                          rng.normal(0.1, 0.1, size=(n, 2)))
    x = np.column_stack([one_hot(labels, spec.num_node_labels), attributes])
    return Graph(x, _to_edge_index(edges), int(label),
                 {"semantic_nodes": semantic})


# ----------------------------------------------------------------------
# Social-style generation
# ----------------------------------------------------------------------
def _social_graph(rng: np.random.Generator, spec: TUSpec, label: int,
                  avg_nodes: float, avg_edges: float) -> Graph:
    """Erdős–Rényi-ish backbone at the spec's density + motif; degree features."""
    # The class signal is the number (1–3) and shape of planted communities.
    # A density signal would not survive on near-complete graphs (COLLAB's
    # average degree is ~66 on ~74 nodes), but community count is robust at
    # any density and node scale.
    copies = 1 + label % 3
    n = max(4, _sample_size(rng, avg_nodes) - 6 * copies)
    target_edges = max(n - 1, int(round(avg_edges * n / avg_nodes)))
    edges = _random_tree_edges(rng, n)  # guarantee connectivity
    edges.extend(_random_extra_edges(rng, n, target_edges - len(edges), edges))
    masks = []
    for _ in range(copies):
        n, mask = _plant_motif(rng, label, n, edges, SOCIAL_MOTIF_KINDS,
                               attach_hosts=3)
        masks.append(mask)
    semantic = np.zeros(n, dtype=bool)
    for mask in masks:
        semantic[: len(mask)] |= mask
    edge_index = _to_edge_index(edges)
    degree = np.bincount(edge_index[0], minlength=n)
    # log2-bucketed degree one-hot: stays informative across the 100×
    # density range between IMDB-B (deg ≈ 10) and COLLAB (deg ≈ 60+),
    # where a raw clipped one-hot would collapse all dense-graph nodes
    # into the final bucket.
    buckets = np.minimum(np.log2(degree + 1).astype(np.int64),
                         _MAX_DEGREE_FEATURE - 1)
    # Activity attribute channels (think user activity on Reddit): community
    # (motif) members are highly active — the same magnitude-salience marker
    # the molecule datasets carry, needed because sparse social graphs
    # (RDT-B/RDT-M-5K) give motif nodes no degree prominence.
    activity = np.where(semantic[:, None],
                        rng.normal(1.5, 0.15, size=(n, 2)),
                        rng.normal(0.1, 0.1, size=(n, 2)))
    x = np.column_stack([one_hot(buckets, _MAX_DEGREE_FEATURE), activity])
    return Graph(x, edge_index, int(label), {"semantic_nodes": semantic})


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _stable_hash(name: str) -> int:
    return sum(ord(c) * (31 ** i) for i, c in enumerate(name)) % 100003


def _sample_size(rng: np.random.Generator, avg_nodes: float) -> int:
    n = int(round(rng.normal(avg_nodes, 0.25 * avg_nodes)))
    return max(10, n)


def _random_tree_edges(rng: np.random.Generator, n: int) -> list[tuple[int, int]]:
    """Uniform random recursive tree — connected sparse backbone."""
    return [(int(rng.integers(i)), i) for i in range(1, n)]


def _random_extra_edges(rng: np.random.Generator, n: int, count: int,
                        existing: list[tuple[int, int]]) -> list[tuple[int, int]]:
    seen = {frozenset(e) for e in existing}
    extra: list[tuple[int, int]] = []
    attempts = 0
    while len(extra) < count and attempts < 20 * max(count, 1):
        attempts += 1
        u, v = rng.integers(n), rng.integers(n)
        if u == v:
            continue
        key = frozenset((int(u), int(v)))
        if key in seen:
            continue
        seen.add(key)
        extra.append((int(u), int(v)))
    return extra


def _plant_motif(rng: np.random.Generator, label: int, n: int,
                 edges: list[tuple[int, int]], kinds: list[str],
                 attach_hosts: int = 1) -> tuple[int, np.ndarray]:
    """Append a class-specific motif as a cohesive attached subgraph.

    The motif's nodes are *new* nodes ``n .. n+k-1`` wired per the motif
    template and attached to ``attach_hosts`` random host nodes — mirroring
    how functional groups sit on molecules and communities sit in social
    graphs. Cohesion matters: a scattered motif's nodes have no mutual
    message-passing influence, so no encoder (and no augmentation scorer)
    could single them out. Returns the new node count and the semantic mask.
    """
    kind = kinds[label % len(kinds)]
    template_nodes, template_edges = motif_edges(kind)
    k = len(template_nodes)
    mapping = {t: n + i for i, t in enumerate(template_nodes)}
    for u, v in template_edges:
        edges.append((mapping[u], mapping[v]))
    for _ in range(attach_hosts):
        host = int(rng.integers(n))
        anchor = n + int(rng.integers(k))
        edges.append((host, anchor))
    total = n + k
    mask = np.zeros(total, dtype=bool)
    mask[n:] = True
    return total, mask


def _to_edge_index(edges: list[tuple[int, int]]) -> np.ndarray:
    if not edges:
        return np.zeros((2, 0), dtype=np.int64)
    arr = np.array(edges, dtype=np.int64)
    return np.concatenate([arr, arr[:, ::-1]], axis=0).T


# ----------------------------------------------------------------------
# Registry entries
# ----------------------------------------------------------------------
def _make_loader(spec: TUSpec):
    def loader(*, seed: int = 0, scale: float = 1.0, **kwargs) -> GraphDataset:
        return generate_tu_dataset(spec, seed=seed, scale=scale, **kwargs)

    loader.__name__ = f"load_{spec.name.lower().replace('-', '_')}"
    loader.__doc__ = f"Synthetic {spec.name}-like dataset (see module docstring)."
    return loader


for _spec in TU_SPECS.values():
    register_dataset(_spec.name)(_make_loader(_spec))
