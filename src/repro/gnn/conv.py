"""Graph convolution layers: GIN, GCN, GraphSAGE, GAT.

All layers share the signature ``forward(x, edge_index, num_nodes,
node_weight=None, workspace=None)`` where ``x`` is the ``(N, d)``
node-feature Tensor and ``edge_index`` the ``(2, E)`` int ndarray of a
(possibly batched) graph. ``workspace`` is an optional
:class:`repro.graph.MessagePassingWorkspace` carrying cached scatter
plans, the self-looped edge index and GCN normalisation weights for the
batch topology; with it, a layer performs no per-call index arithmetic.
Results are identical with or without it.

``node_weight`` implements the paper's perturbation-mask mechanism (Eq. 14):
a per-node multiplier applied to both a node's own contribution and to the
messages it sends. With a binary mask this *is* node dropping inside the
encoder; with soft values it is the differentiable relaxation used to train
the augmentation-probability head.
"""

from __future__ import annotations

import numpy as np

from ..nn import Linear, MLP, Module, Parameter
from ..tensor import Tensor, gather, segment_mean, segment_softmax, segment_sum
from ..graph.transforms import add_self_loops, normalized_adjacency_weights

__all__ = ["GINConv", "GCNConv", "SAGEConv", "GATConv", "CONV_TYPES"]


def _apply_node_weight(x: Tensor, node_weight: Tensor | None) -> Tensor:
    if node_weight is None:
        return x
    return x * node_weight.reshape(len(node_weight), 1)


class GINConv(Module):
    """Graph Isomorphism Network layer (Xu et al., 2019).

    ``h'_i = MLP((1 + ε) h_i + Σ_{j∈N(i)} h_j)`` with a learnable ε and a
    2-layer MLP with BatchNorm — the encoder SGCL and all GCL baselines use.
    """

    def __init__(self, in_dim: int, out_dim: int, *, rng: np.random.Generator,
                 batch_norm: bool = True):
        super().__init__()
        self.eps = Parameter(np.zeros(1))
        self.mlp = MLP([in_dim, out_dim, out_dim], rng=rng,
                       batch_norm=batch_norm)

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int,
                node_weight: Tensor | None = None, workspace=None) -> Tensor:
        x = _apply_node_weight(x, node_weight)
        src, dst = edge_index
        src_plan = workspace.plan("src") if workspace is not None else None
        dst_plan = workspace.plan("dst") if workspace is not None else None
        messages = gather(x, src, plan=src_plan)
        aggregated = segment_sum(messages, dst, num_nodes, plan=dst_plan)
        combined = x * (1.0 + self.eps) + aggregated
        out = self.mlp(combined)
        return _apply_node_weight(out, node_weight)


class GCNConv(Module):
    """Graph Convolutional Network layer (Kipf & Welling, 2017).

    Symmetric-normalised aggregation with self-loops: ``H' = D̂^{-1/2} Â
    D̂^{-1/2} H W``.
    """

    def __init__(self, in_dim: int, out_dim: int, *, rng: np.random.Generator):
        super().__init__()
        self.linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int,
                node_weight: Tensor | None = None, workspace=None) -> Tensor:
        x = _apply_node_weight(x, node_weight)
        if workspace is not None:
            looped = workspace.looped
            norm = workspace.gcn_norm()
            src_plan = workspace.plan("looped_src")
            dst_plan = workspace.plan("looped_dst")
        else:
            looped = add_self_loops(edge_index, num_nodes)
            norm = normalized_adjacency_weights(looped, num_nodes)
            src_plan = dst_plan = None
        src, dst = looped
        transformed = self.linear(x)
        messages = gather(transformed, src, plan=src_plan) * Tensor(norm[:, None])
        out = segment_sum(messages, dst, num_nodes, plan=dst_plan)
        return _apply_node_weight(out.relu(), node_weight)


class SAGEConv(Module):
    """GraphSAGE layer with mean aggregation (Hamilton et al., 2017)."""

    def __init__(self, in_dim: int, out_dim: int, *, rng: np.random.Generator):
        super().__init__()
        self.self_linear = Linear(in_dim, out_dim, rng=rng)
        self.neigh_linear = Linear(in_dim, out_dim, rng=rng)

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int,
                node_weight: Tensor | None = None, workspace=None) -> Tensor:
        x = _apply_node_weight(x, node_weight)
        src, dst = edge_index
        src_plan = workspace.plan("src") if workspace is not None else None
        dst_plan = workspace.plan("dst") if workspace is not None else None
        neighbours = segment_mean(gather(x, src, plan=src_plan), dst,
                                  num_nodes, plan=dst_plan)
        out = self.self_linear(x) + self.neigh_linear(neighbours)
        return _apply_node_weight(out.relu(), node_weight)


class GATConv(Module):
    """Graph attention layer (Veličković et al., 2018), ``heads`` averaged.

    Attention logits ``e_ij = LeakyReLU(a_s·Wh_i + a_d·Wh_j)`` are
    softmax-normalised over each destination's incoming edges (self-loops
    added). The per-edge attention of the *last* forward pass is cached in
    ``last_attention`` — the Lipschitz constant generator's fast mode uses it
    to approximate each node's contribution (paper §IV.B / §V complexity).
    """

    def __init__(self, in_dim: int, out_dim: int, *, rng: np.random.Generator,
                 heads: int = 1, negative_slope: float = 0.2):
        super().__init__()
        self.heads = heads
        self.negative_slope = negative_slope
        self.linears = [Linear(in_dim, out_dim, rng=rng, bias=False)
                        for _ in range(heads)]
        self.att_src = [Parameter(rng.normal(0, 0.1, size=out_dim))
                        for _ in range(heads)]
        self.att_dst = [Parameter(rng.normal(0, 0.1, size=out_dim))
                        for _ in range(heads)]
        self.last_attention: np.ndarray | None = None
        self.last_edge_index: np.ndarray | None = None

    def forward(self, x: Tensor, edge_index: np.ndarray, num_nodes: int,
                node_weight: Tensor | None = None, workspace=None) -> Tensor:
        x = _apply_node_weight(x, node_weight)
        if workspace is not None:
            looped = workspace.looped
            src_plan = workspace.plan("looped_src")
            dst_plan = workspace.plan("looped_dst")
        else:
            looped = add_self_loops(edge_index, num_nodes)
            src_plan = dst_plan = None
        src, dst = looped
        head_outputs = []
        attention_sum = np.zeros(looped.shape[1])
        for linear, a_src, a_dst in zip(self.linears, self.att_src, self.att_dst):
            h = linear(x)
            # Per-node scores once, then scalar gathers per edge — one
            # (N,d)@(d,) matvec instead of two (E,d) gathers and matvecs.
            logits = (gather(h @ a_src, src, plan=src_plan)
                      + gather(h @ a_dst, dst, plan=dst_plan))
            logits = logits.leaky_relu(self.negative_slope)
            alpha = segment_softmax(logits, dst, num_nodes, plan=dst_plan)
            attention_sum += alpha.data
            messages = gather(h, src, plan=src_plan) * alpha.reshape(len(src), 1)
            head_outputs.append(segment_sum(messages, dst, num_nodes,
                                            plan=dst_plan))
        out = head_outputs[0]
        for extra in head_outputs[1:]:
            out = out + extra
        out = out * (1.0 / self.heads)
        self.last_attention = attention_sum / self.heads
        self.last_edge_index = looped
        return _apply_node_weight(out.relu(), node_weight)


CONV_TYPES = {
    "gin": GINConv,
    "gcn": GCNConv,
    "sage": SAGEConv,
    "gat": GATConv,
}
