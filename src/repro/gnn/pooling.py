"""Graph-level readouts (global pooling) over batched node representations."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, segment_max, segment_mean, segment_sum

__all__ = [
    "global_sum_pool",
    "global_mean_pool",
    "global_max_pool",
    "weighted_sum_pool",
    "POOLING_TYPES",
]


def global_sum_pool(x: Tensor, node_graph: np.ndarray, num_graphs: int, *,
                    plan=None) -> Tensor:
    """Sum node representations per graph — SGCL's default readout."""
    return segment_sum(x, node_graph, num_graphs, plan=plan)


def global_mean_pool(x: Tensor, node_graph: np.ndarray, num_graphs: int, *,
                     plan=None) -> Tensor:
    return segment_mean(x, node_graph, num_graphs, plan=plan)


def global_max_pool(x: Tensor, node_graph: np.ndarray, num_graphs: int, *,
                    plan=None) -> Tensor:
    return segment_max(x, node_graph, num_graphs, plan=plan)


def weighted_sum_pool(x: Tensor, weights: Tensor, node_graph: np.ndarray,
                      num_graphs: int, *, plan=None) -> Tensor:
    """Sum pooling with per-node scalar weights.

    Implements Eq. 21's ``Pooling(f_k(H, A) ⊙ K_V)``: node representations are
    scaled by their (Lipschitz-constant) semantic scores before pooling.
    """
    weighted = x * weights.reshape(len(weights), 1)
    return segment_sum(weighted, node_graph, num_graphs, plan=plan)


POOLING_TYPES = {
    "sum": global_sum_pool,
    "mean": global_mean_pool,
    "max": global_max_pool,
}
