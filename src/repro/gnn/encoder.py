"""Configurable multi-layer GNN encoder + projection head.

``GNNEncoder`` is the ``f(·,·;θ)`` of the paper: a stack of graph
convolutions producing node representations ``H^{(l)}``, with a pooled
graph-level readout. SGCL instantiates two of these with identical
architecture but unshared parameters (``f_q`` for the Lipschitz generator,
``f_k`` for representation learning), and every baseline reuses the same
class so comparisons are encoder-matched (paper §VI.A.2).
"""

from __future__ import annotations

import numpy as np

from ..graph import Batch
from ..nn import MLP, Module
from ..tensor import Tensor, concatenate
from .conv import CONV_TYPES
from .pooling import POOLING_TYPES, weighted_sum_pool

__all__ = ["GNNEncoder", "ProjectionHead"]


class GNNEncoder(Module):
    """Multi-layer GNN producing node and graph representations.

    Parameters
    ----------
    in_dim:
        Input feature dimension ``d^(0)``.
    hidden_dim:
        Hidden width ``d^(l)`` (paper: 32 for TU, 300 for transfer).
    num_layers:
        Number of graph convolutions (paper: 3 for TU, 5 for transfer).
    conv:
        One of ``gin``, ``gcn``, ``sage``, ``gat`` (Fig. 6 sweep).
    pooling:
        One of ``sum`` (default, as in GIN/SGCL), ``mean``, ``max``.
    jk:
        Jumping-knowledge style: ``last`` uses the final layer's node
        representations; ``cat`` concatenates all layers (as in GraphCL's
        released evaluation encoder).
    """

    def __init__(self, in_dim: int, hidden_dim: int, num_layers: int, *,
                 rng: np.random.Generator, conv: str = "gin",
                 pooling: str = "sum", jk: str = "last",
                 batch_norm: bool = True):
        super().__init__()
        if conv not in CONV_TYPES:
            raise ValueError(f"unknown conv {conv!r}; choose from {sorted(CONV_TYPES)}")
        if pooling not in POOLING_TYPES:
            raise ValueError(f"unknown pooling {pooling!r}")
        if jk not in ("last", "cat"):
            raise ValueError(f"jk must be 'last' or 'cat', got {jk!r}")
        self.conv_name = conv
        self.jk = jk
        self.in_dim = in_dim
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.batch_norm = batch_norm
        self.pooling_name = pooling
        conv_cls = CONV_TYPES[conv]
        dims = [in_dim] + [hidden_dim] * num_layers
        conv_kwargs = {"batch_norm": batch_norm} if conv == "gin" else {}
        self.convs = [conv_cls(d_in, d_out, rng=rng, **conv_kwargs)
                      for d_in, d_out in zip(dims[:-1], dims[1:])]

    # ------------------------------------------------------------------
    def spec(self) -> dict:
        """Constructor arguments needed to rebuild this encoder.

        Stored in checkpoint headers so a serving process can reconstruct
        the architecture without the original training script.
        """
        return {
            "in_dim": self.in_dim,
            "hidden_dim": self.hidden_dim,
            "num_layers": self.num_layers,
            "conv": self.conv_name,
            "pooling": self.pooling_name,
            "jk": self.jk,
            "batch_norm": self.batch_norm,
        }

    @classmethod
    def from_spec(cls, spec: dict, *,
                  rng: np.random.Generator | None = None) -> "GNNEncoder":
        """Rebuild an encoder from :meth:`spec` output (weights random until
        a ``state_dict`` is loaded)."""
        rng = rng if rng is not None else np.random.default_rng(0)
        return cls(spec["in_dim"], spec["hidden_dim"], spec["num_layers"],
                   rng=rng, conv=spec["conv"], pooling=spec["pooling"],
                   jk=spec["jk"], batch_norm=spec["batch_norm"])

    # ------------------------------------------------------------------
    @property
    def out_dim(self) -> int:
        """Dimension of node/graph representations this encoder emits."""
        if self.jk == "cat":
            return self.hidden_dim * len(self.convs)
        return self.hidden_dim

    def node_representations(self, x: Tensor, edge_index: np.ndarray,
                             num_nodes: int,
                             node_weight: Tensor | None = None,
                             workspace=None) -> Tensor:
        """Run the conv stack; ``node_weight`` is the Eq. 14 mask/soft weight.

        ``workspace`` (cached scatter plans for this topology) is shared by
        all layers; see :meth:`repro.graph.Batch.workspace`.
        """
        layer_outputs = []
        h = x
        for conv in self.convs:
            h = conv(h, edge_index, num_nodes, node_weight=node_weight,
                     workspace=workspace)
            layer_outputs.append(h)
        if self.jk == "cat":
            return concatenate(layer_outputs, axis=1)
        return layer_outputs[-1]

    def forward(self, batch: Batch, node_weight: Tensor | None = None) -> Tensor:
        """Node representations for a batch (Tensor of shape ``(N, out_dim)``)."""
        return self.node_representations(Tensor(batch.x), batch.edge_index,
                                         batch.num_nodes,
                                         node_weight=node_weight,
                                         workspace=batch.workspace())

    def graph_representations(self, batch: Batch,
                              node_weight: Tensor | None = None,
                              pool_weights: Tensor | None = None) -> Tensor:
        """Pooled graph-level representations of shape ``(num_graphs, out_dim)``.

        ``pool_weights`` (per-node scalars) switches to weighted sum pooling —
        Eq. 21's semantic-score readout.
        """
        nodes = self.forward(batch, node_weight=node_weight)
        pool_plan = batch.workspace().pool_plan()
        if pool_weights is not None:
            return weighted_sum_pool(nodes, pool_weights, batch.node_graph,
                                     batch.num_graphs, plan=pool_plan)
        pool = POOLING_TYPES[self.pooling_name]
        return pool(nodes, batch.node_graph, batch.num_graphs, plan=pool_plan)


class ProjectionHead(Module):
    """2-layer MLP projection head ``Proj(·)`` (paper §IV.D, following [20]).

    Thrown away after pre-training; downstream tasks consume the encoder's
    pooled output directly.
    """

    def __init__(self, in_dim: int, out_dim: int | None = None, *,
                 rng: np.random.Generator):
        super().__init__()
        out_dim = out_dim or in_dim
        self.net = MLP([in_dim, in_dim, out_dim], rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)
