"""GNN substrate: convolution layers, pooling, encoders."""

from .conv import CONV_TYPES, GATConv, GCNConv, GINConv, SAGEConv
from .pooling import (
    POOLING_TYPES,
    global_max_pool,
    global_mean_pool,
    global_sum_pool,
    weighted_sum_pool,
)
from .encoder import GNNEncoder, ProjectionHead

__all__ = [
    "GINConv",
    "GCNConv",
    "SAGEConv",
    "GATConv",
    "CONV_TYPES",
    "global_sum_pool",
    "global_mean_pool",
    "global_max_pool",
    "weighted_sum_pool",
    "POOLING_TYPES",
    "GNNEncoder",
    "ProjectionHead",
]
