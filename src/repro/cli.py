"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List registered datasets with their generated statistics.
``pretrain``
    Pre-train a method on a dataset and report unsupervised CV accuracy.
``transfer``
    Pre-train on ZincLike and fine-tune on a MoleculeNet-style task.
``inspect``
    Print per-node Lipschitz constants vs planted ground truth.

Examples
--------
::

    python -m repro datasets
    python -m repro pretrain --method SGCL --dataset MUTAG --epochs 5
    python -m repro transfer --method SGCL --downstream BBBP
    python -m repro inspect --dataset PROTEINS
"""

from __future__ import annotations

import argparse


def _cmd_datasets(args: argparse.Namespace) -> None:
    from .data import available_datasets, load_dataset

    print(f"{'name':<18}{'graphs':>8}{'avg nodes':>11}{'avg edges':>11}"
          f"{'classes':>9}{'task':>16}")
    for name in available_datasets():
        dataset = load_dataset(name, seed=0, scale=args.scale)
        stats = dataset.statistics()
        print(f"{name:<18}{stats['num_graphs']:>8}"
              f"{stats['avg_nodes']:>11.1f}{stats['avg_edges']:>11.1f}"
              f"{stats['num_classes']:>9}{dataset.task:>16}")


def _cmd_pretrain(args: argparse.Namespace) -> None:
    from .bench import run_unsupervised

    mean, std = run_unsupervised(
        args.method, args.dataset, seeds=list(range(args.seeds)),
        scale=args.scale, epochs=args.epochs, classifier=args.classifier)
    print(f"{args.method} on {args.dataset}: "
          f"{mean:.2f} ± {std:.2f} % ({args.seeds} seed(s))")


def _cmd_transfer(args: argparse.Namespace) -> None:
    from .bench import run_transfer

    mean, std = run_transfer(
        args.method, args.downstream, seeds=list(range(args.seeds)),
        pretrain_scale=args.scale, downstream_scale=args.scale,
        pretrain_epochs=args.epochs, finetune_epochs=args.finetune_epochs)
    print(f"{args.method} → {args.downstream}: "
          f"ROC-AUC {mean:.2f} ± {std:.2f} %")


def _cmd_inspect(args: argparse.Namespace) -> None:
    from .core import SGCLConfig, SGCLTrainer
    from .core.analysis import semantic_identification_auc
    from .data import load_dataset
    from .graph import Batch

    dataset = load_dataset(args.dataset, seed=0, scale=args.scale)
    trainer = SGCLTrainer(dataset.num_features,
                          SGCLConfig(epochs=args.epochs, batch_size=32,
                                     seed=0))
    trainer.pretrain(dataset.graphs)
    generator = trainer.model.generator
    auc = semantic_identification_auc(
        lambda g: generator.node_constants(Batch([g])).data,
        dataset.graphs, max_graphs=40)
    print(f"semantic-node identification ROC-AUC on {args.dataset}: "
          f"{auc:.3f}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SGCL reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="list registered datasets")
    datasets.add_argument("--scale", type=float, default=0.05)
    datasets.set_defaults(fn=_cmd_datasets)

    pretrain = sub.add_parser("pretrain", help="unsupervised protocol")
    pretrain.add_argument("--method", default="SGCL")
    pretrain.add_argument("--dataset", default="MUTAG")
    pretrain.add_argument("--epochs", type=int, default=5)
    pretrain.add_argument("--seeds", type=int, default=1)
    pretrain.add_argument("--scale", type=float, default=0.1)
    pretrain.add_argument("--classifier", default="logreg",
                          choices=["logreg", "svm"])
    pretrain.set_defaults(fn=_cmd_pretrain)

    transfer = sub.add_parser("transfer", help="transfer protocol")
    transfer.add_argument("--method", default="SGCL")
    transfer.add_argument("--downstream", default="BBBP")
    transfer.add_argument("--epochs", type=int, default=3)
    transfer.add_argument("--finetune-epochs", type=int, default=5)
    transfer.add_argument("--seeds", type=int, default=1)
    transfer.add_argument("--scale", type=float, default=0.08)
    transfer.set_defaults(fn=_cmd_transfer)

    inspect = sub.add_parser("inspect", help="semantic-node diagnostics")
    inspect.add_argument("--dataset", default="PROTEINS")
    inspect.add_argument("--epochs", type=int, default=4)
    inspect.add_argument("--scale", type=float, default=0.08)
    inspect.set_defaults(fn=_cmd_inspect)
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    main()
