"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``datasets``
    List registered datasets with their generated statistics.
``pretrain``
    Pre-train a method on a dataset and report unsupervised CV accuracy.
    With ``--node-level``, train node-level SGCL on sampled subgraphs of
    a large node dataset (``community-1m``) and report the node
    linear-probe accuracy instead.
``sample``
    Draw seeded subgraphs from a node dataset and summarise the stream
    (reproduces exactly what ``pretrain --node-level`` consumes).
``transfer``
    Pre-train on ZincLike and fine-tune on a MoleculeNet-style task.
``inspect``
    Print per-node Lipschitz constants vs planted ground truth.
``save``
    Pre-train a method and write a serving checkpoint.
``embed``
    Serve embeddings of a dataset from a checkpoint (cached inference).
``serve``
    Serve a dataset through an N-shard embedding fleet (consistent-hash
    routing, failover, optional canary deploy) and report fleet telemetry.
``report``
    Render a JSONL run log (written via ``--log-dir``) as tables.
``profile``
    Op-level profile of a seeded pretrain slice: hot-path table
    (self/cumulative time per op×span), Chrome-trace + flamegraph
    artifacts, and a ``--compare`` perf-regression gate against the
    committed ``BENCH_hotpath.json`` baseline.
``doctor``
    Validate a dataset's structural invariants and smoke-test the guarded
    training path; non-zero exit on any failure (CI gate). With
    ``--drift-store`` it also scores the dataset against the store's live
    training statistics and fails at the refresh threshold.
``ingest``
    Validate, commit and drift-check one graph batch into an append-only
    versioned :class:`~repro.ingest.DatasetStore` (crash-safe, dedupes
    replayed batches).
``refresh``
    Fine-tune the live model onto the newest committed dataset version,
    register it and atomically go live; ``--watch`` polls a spool
    directory and refreshes whenever drift crosses the threshold.

``pretrain`` and ``transfer`` accept ``--log-dir DIR`` (write a JSONL
event log + run manifest under DIR) and ``--trace`` (print the span tree
after the run).

``pretrain --checkpoint-dir DIR`` switches to the crash-safe single-run
path: every epoch refreshes ``DIR/latest.npz``, SIGINT/SIGTERM stop the
run at the next epoch boundary and write ``DIR/emergency.npz`` on the way
out (exit code 130), and ``--resume`` continues bit-exactly from the most
advanced *valid* checkpoint in DIR (corrupt files are skipped — see
docs/RESILIENCE.md). Every command exits 130 on Ctrl-C instead of dumping
a traceback.

``pretrain``, ``transfer`` and ``inspect`` accept ``--workers N`` (fan
seed / precompute work out over N worker processes; default: the
``REPRO_WORKERS`` environment variable, else serial). Results are
bit-identical for any worker count — see docs/RUNTIME.md. ``inspect``
additionally accepts ``--cache-dir DIR`` to serve Lipschitz constants
from a content-addressed precompute cache.

Examples
--------
::

    python -m repro datasets --json
    python -m repro pretrain --method SGCL --dataset MUTAG --epochs 5 \
        --log-dir runs --trace
    python -m repro report runs/run-<id>.jsonl
    python -m repro transfer --method SGCL --downstream BBBP
    python -m repro inspect --dataset PROTEINS
    python -m repro save --method SGCL --dataset MUTAG --out ckpt/sgcl.npz
    python -m repro embed --checkpoint ckpt/sgcl.npz --dataset MUTAG \
        --out embeddings.npz --stats
    python -m repro serve --checkpoint ckpt/sgcl.npz --dataset MUTAG \
        --workers 4 --repeat 3 --stats
    python -m repro doctor --dataset MUTAG --scale 0.1
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from . import __version__


def _observer_from_args(args):
    """(observer, log_path) for ``--log-dir``/``--trace``; no-op otherwise."""
    if not (getattr(args, "log_dir", None) or getattr(args, "trace", False)):
        from .obs import NULL_OBSERVER

        return NULL_OBSERVER, None
    from pathlib import Path

    from .obs import JSONLSink, Observer

    observer = Observer()
    log_path = None
    if args.log_dir:
        log_path = Path(args.log_dir) / f"run-{observer.run_id}.jsonl"
        observer.sinks.append(JSONLSink(log_path))
    return observer, log_path


def _write_manifest(observer, log_path, args, *, command: str) -> None:
    """Pin config + dataset fingerprint + environment next to the log."""
    from .data import load_dataset
    from .obs import RunManifest, dataset_fingerprint

    dataset_name = getattr(args, "dataset", None) or args.downstream
    dataset = load_dataset(dataset_name, seed=0, scale=args.scale)
    manifest = RunManifest(
        observer.run_id,
        config={key: value for key, value in vars(args).items()
                if key not in ("fn", "command")},
        dataset={"name": dataset_name, "num_graphs": len(dataset),
                 "fingerprint": dataset_fingerprint(dataset.graphs)},
        seed=0, extra={"command": command})
    manifest.write(log_path.with_suffix(".manifest.json"))


def _finish_observer(observer, log_path, args) -> None:
    if not observer.enabled:
        return
    observer.emit_trace()
    observer.close()
    if getattr(args, "trace", False):
        from .obs import render_span_tree

        print(render_span_tree(observer.tracer))
    if log_path is not None:
        print(f"run log: {log_path}  (render with `repro report {log_path}`)")


def _cmd_datasets(args: argparse.Namespace) -> None:
    from .data import available_datasets, load_dataset
    from .sampling import available_node_datasets, load_node_dataset

    if args.json:
        payload = {}
        for name in available_datasets():
            dataset = load_dataset(name, seed=0, scale=args.scale)
            payload[name] = {**dataset.statistics(), "task": dataset.task}
        for name in available_node_datasets():
            dataset = load_node_dataset(name, seed=0, scale=args.scale)
            payload[name] = {**dataset.statistics(), "task": "node"}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    print(f"{'name':<18}{'graphs':>8}{'avg nodes':>11}{'avg edges':>11}"
          f"{'classes':>9}{'task':>16}")
    for name in available_datasets():
        dataset = load_dataset(name, seed=0, scale=args.scale)
        stats = dataset.statistics()
        print(f"{name:<18}{stats['num_graphs']:>8}"
              f"{stats['avg_nodes']:>11.1f}{stats['avg_edges']:>11.1f}"
              f"{stats['num_classes']:>9}{dataset.task:>16}")
    for name in available_node_datasets():
        dataset = load_node_dataset(name, seed=0, scale=args.scale)
        stats = dataset.statistics()
        print(f"{name:<18}{1:>8}"
              f"{stats['num_nodes']:>11.1f}{stats['num_edges']:>11.1f}"
              f"{stats['num_classes']:>9}{'node':>16}")


def _pretrain_checkpointed(args: argparse.Namespace) -> None:
    """Crash-safe single-run pre-training (``--checkpoint-dir``/``--resume``).

    Unlike the benchmark path this trains ONE seeded run with per-epoch
    checkpoints: ``latest.npz`` is refreshed atomically every epoch, a
    first SIGINT/SIGTERM stops the loop at the next epoch boundary and
    writes ``emergency.npz`` (exit 130), and ``--resume`` picks up from
    the most advanced valid checkpoint — bit-identical to a run that was
    never interrupted.
    """
    from pathlib import Path

    from .core import SGCLConfig, SGCLTrainer
    from .data import load_dataset
    from .resilience import interrupt_guard, resume_trainer

    if args.method != "SGCL":
        raise SystemExit(
            "pretrain: --checkpoint-dir/--resume support --method SGCL only "
            f"(got {args.method!r})")
    directory = Path(args.checkpoint_dir)
    observer, log_path = _observer_from_args(args)
    if log_path is not None:
        _write_manifest(observer, log_path, args, command="pretrain")
    dataset = load_dataset(args.dataset, seed=0, scale=args.scale)
    with observer.activate():
        trainer = resume_trainer(directory) if args.resume else None
        if trainer is None:
            trainer = SGCLTrainer(
                dataset.num_features,
                SGCLConfig(epochs=args.epochs, batch_size=32, seed=0))
        elif trainer.in_dim != dataset.num_features:
            raise SystemExit(
                f"pretrain: checkpoints in {directory} were trained with "
                f"in_dim={trainer.in_dim}; {args.dataset} has "
                f"{dataset.num_features} node features")
        done = len(trainer.history)
        remaining = max(0, args.epochs - done)
        if args.resume and done:
            print(f"resuming at epoch {done + 1} "
                  f"({remaining} of {args.epochs} epoch(s) remaining)")
        with interrupt_guard(on_interrupt=trainer.request_stop) as state:
            if remaining:
                trainer.pretrain(dataset.graphs, epochs=remaining,
                                 checkpoint_dir=directory)
        if state.interrupted:
            path = trainer.save_emergency_checkpoint(directory)
            _finish_observer(observer, log_path, args)
            print(f"interrupted ({state.signal_name}) after "
                  f"{len(trainer.history)} epoch(s); emergency checkpoint "
                  f"written to {path} — resume with --resume")
            raise SystemExit(130)
    _finish_observer(observer, log_path, args)
    loss = trainer.history[-1]["loss"] if trainer.history else float("nan")
    print(f"SGCL on {args.dataset}: {len(trainer.history)} epoch(s) "
          f"(loss {loss:.4f}); checkpoints in {directory}")


def _pretrain_node_level(args: argparse.Namespace) -> None:
    """Node-level SGCL over sampled subgraphs (``pretrain --node-level``).

    Trains one seeded :class:`~repro.sampling.NodeSGCLTrainer` run on a
    :class:`~repro.sampling.SubgraphStream` and reports the node-level
    linear-probe accuracy. ``--checkpoint-dir`` refreshes ``latest.npz``
    every epoch; ``--resume`` continues from it bit-exactly (the stream
    re-derives epoch seeds from the history length, so no loader state
    is persisted).
    """
    from pathlib import Path

    from .core import SGCLConfig
    from .eval import node_linear_probe
    from .runtime import ParallelExecutor
    from .sampling import NodeSGCLTrainer, SubgraphStream, load_node_dataset, \
        make_sampler

    if args.method != "SGCL":
        raise SystemExit(
            f"pretrain: --node-level supports --method SGCL only "
            f"(got {args.method!r})")
    observer, log_path = _observer_from_args(args)
    dataset = load_node_dataset(args.dataset, seed=0, scale=args.scale)
    if log_path is not None:
        from .obs import RunManifest

        RunManifest(
            observer.run_id,
            config={key: value for key, value in vars(args).items()
                    if key not in ("fn", "command")},
            dataset={"name": args.dataset, **dataset.statistics()},
            seed=0, extra={"command": "pretrain --node-level"},
        ).write(log_path.with_suffix(".manifest.json"))
    sampler = make_sampler(args.sampler, dataset)
    stream = SubgraphStream(
        sampler, samples_per_epoch=args.samples_per_epoch,
        batch_size=args.subgraph_batch, seed=0,
        executor=ParallelExecutor(args.workers))
    with observer.activate():
        trainer = None
        directory = Path(args.checkpoint_dir) if args.checkpoint_dir else None
        if args.resume and directory and (directory / "latest.npz").exists():
            trainer = NodeSGCLTrainer.from_checkpoint(directory / "latest.npz")
            print(f"resuming at epoch {len(trainer.history) + 1}")
        if trainer is None:
            trainer = NodeSGCLTrainer(
                dataset.num_features,
                SGCLConfig(epochs=args.epochs, seed=0))
        remaining = max(0, args.epochs - len(trainer.history))
        if remaining:
            trainer.pretrain(stream, epochs=remaining,
                             checkpoint_dir=directory)
        probe = node_linear_probe(
            trainer.encoder, dataset, seed=0,
            num_nodes=min(500, dataset.num_nodes))
    _finish_observer(observer, log_path, args)
    loss = trainer.history[-1]["loss"] if trainer.history else float("nan")
    suffix = f"; checkpoints in {directory}" if directory else ""
    print(f"SGCL node-level on {args.dataset} "
          f"({dataset.num_nodes} nodes, sampler={args.sampler}): "
          f"{len(trainer.history)} epoch(s), loss {loss:.4f}, "
          f"probe accuracy {probe['accuracy']:.1%} "
          f"({probe['num_train']}/{probe['num_test']} train/test)"
          f"{suffix}")


def _cmd_pretrain(args: argparse.Namespace) -> None:
    from .bench import run_unsupervised

    if args.resume and not args.checkpoint_dir:
        raise SystemExit("pretrain: --resume requires --checkpoint-dir")
    if args.node_level:
        _pretrain_node_level(args)
        return
    if args.checkpoint_dir:
        _pretrain_checkpointed(args)
        return
    observer, log_path = _observer_from_args(args)
    if log_path is not None:
        _write_manifest(observer, log_path, args, command="pretrain")
    started = time.perf_counter()
    with observer.activate():
        observer.event("run_start", command="pretrain", method=args.method,
                       dataset=args.dataset, epochs=args.epochs,
                       seeds=args.seeds)
        mean, std = run_unsupervised(
            args.method, args.dataset, seeds=list(range(args.seeds)),
            scale=args.scale, epochs=args.epochs, classifier=args.classifier,
            workers=args.workers)
        observer.event("run_end",
                       wall_seconds=round(time.perf_counter() - started, 3),
                       accuracy_mean=mean, accuracy_std=std)
    _finish_observer(observer, log_path, args)
    print(f"{args.method} on {args.dataset}: "
          f"{mean:.2f} ± {std:.2f} % ({args.seeds} seed(s))")


def _cmd_transfer(args: argparse.Namespace) -> None:
    from .bench import run_transfer

    observer, log_path = _observer_from_args(args)
    if log_path is not None:
        _write_manifest(observer, log_path, args, command="transfer")
    started = time.perf_counter()
    with observer.activate():
        observer.event("run_start", command="transfer", method=args.method,
                       dataset=args.downstream, epochs=args.epochs,
                       seeds=args.seeds)
        mean, std = run_transfer(
            args.method, args.downstream, seeds=list(range(args.seeds)),
            pretrain_scale=args.scale, downstream_scale=args.scale,
            pretrain_epochs=args.epochs,
            finetune_epochs=args.finetune_epochs, workers=args.workers)
        observer.event("run_end",
                       wall_seconds=round(time.perf_counter() - started, 3),
                       roc_auc_mean=mean, roc_auc_std=std)
    _finish_observer(observer, log_path, args)
    print(f"{args.method} → {args.downstream}: "
          f"ROC-AUC {mean:.2f} ± {std:.2f} %")


def _cmd_report(args: argparse.Namespace) -> None:
    from .obs import render_run_report

    print(render_run_report(args.log))


def _cmd_doctor(args: argparse.Namespace) -> None:
    from .validate import render_doctor_report, run_doctor

    report = run_doctor(args.dataset, seed=args.seed, scale=args.scale,
                        epochs=args.epochs, batch_size=args.batch_size,
                        max_graphs=args.max_graphs,
                        drift_store=args.drift_store,
                        drift_warn=args.drift_warn,
                        drift_refresh=args.drift_refresh)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_doctor_report(report))
    if not report["ok"]:
        raise SystemExit(1)


def _make_controller(args, store):
    """RefreshController for the ingest/refresh commands (None w/o registry)."""
    from .core import SGCLConfig
    from .ingest import RefreshController
    from .serve import ModelRegistry

    if not getattr(args, "registry", None):
        return None
    config = SGCLConfig(batch_size=args.batch_size, seed=args.seed,
                        precompute_cache_dir=None)
    return RefreshController(
        store, ModelRegistry(args.registry), model_base=args.model_base,
        epochs=args.refresh_epochs, window=args.window, config=config)


def _cmd_ingest(args: argparse.Namespace) -> None:
    """Validate, commit and drift-check one batch into a DatasetStore."""
    from .data import load_dataset
    from .data.io import load_saved_dataset
    from .ingest import DatasetStore, IngestPipeline

    store = DatasetStore(args.store)
    recovered = store.recover()
    pipeline = IngestPipeline(store, controller=_make_controller(args, store),
                              policy=args.policy,
                              warn_threshold=args.warn_threshold,
                              refresh_threshold=args.refresh_threshold)
    if args.from_npz:
        dataset = load_saved_dataset(args.from_npz)
        graphs = dataset.graphs
        name, num_classes, task = (dataset.name, dataset.num_classes,
                                   dataset.task)
    else:
        dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
        end = None if args.take is None else args.skip + args.take
        graphs = dataset.graphs[args.skip:end]
        name, num_classes, task = (args.dataset, dataset.num_classes,
                                   dataset.task)
    if not graphs:
        raise SystemExit("ingest: the batch selection is empty")
    if args.shift_features or args.tag_ids:
        graphs = [g.copy() for g in graphs]
        for i, graph in enumerate(graphs):
            if args.shift_features:
                graph.x = graph.x + args.shift_features
            if args.tag_ids:
                graph.meta["graph_id"] = f"{args.tag_ids}{args.skip + i}"
    report = pipeline.ingest(graphs, name=name, num_classes=num_classes,
                             task=task)
    payload = {**report.to_dict(), "store": str(store.root),
               "recovered": recovered, **store.stats()}
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        drift = "" if report.drift is None else (
            f", drift {report.drift.max_score:.2f} "
            f"({report.action})")
        print(f"ingested {report.num_graphs} graph(s) as version "
              f"{report.version} of {store.root}"
              f"{' [duplicate batch]' if not report.created else ''}"
              f"{f', dropped {report.dropped}' if report.dropped else ''}"
              f"{drift}")
        if report.refresh_due:
            print("drift crossed the refresh threshold — run "
                  f"`repro refresh --store {store.root}`")


def _cmd_refresh(args: argparse.Namespace) -> None:
    """Fine-tune, register and go live on the newest dataset version."""
    from .ingest import DatasetStore, IngestPipeline, read_live

    store = DatasetStore(args.store)
    controller = _make_controller(args, store)
    if controller is None:
        raise SystemExit("refresh: --registry is required")
    if args.watch:
        if not args.spool:
            raise SystemExit("refresh: --watch requires --spool")
        pipeline = IngestPipeline(
            store, controller=controller, policy=args.policy,
            warn_threshold=args.warn_threshold,
            refresh_threshold=args.refresh_threshold)
        reports = pipeline.watch(args.spool, interval=args.interval,
                                 max_cycles=args.max_cycles)
        live = read_live(store.root)
        payload = {
            "cycles": args.max_cycles, "batches": len(reports),
            "refreshes": sum(1 for r in reports if r.refresh_due),
            "live": live,
        }
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"watch: {len(reports)} batch(es) ingested; live model "
                  f"{live['model'] if live else None}")
        return
    outcome = controller.refresh(args.version, force=args.force)
    if args.json:
        print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
        return
    if outcome.skipped:
        print(f"refresh: live model already covers dataset version "
              f"{outcome.dataset_version} (use --force to retrain)")
    elif outcome.interrupted:
        print(f"refresh: interrupted after {outcome.epochs_trained} "
              f"epoch(s); run again to resume bit-identically")
        raise SystemExit(130)
    else:
        print(f"refresh: {outcome.model} live on dataset version "
              f"{outcome.dataset_version} ({outcome.epochs_trained} "
              f"epoch(s) trained, {outcome.invalidated} cache row(s) "
              f"invalidated)")


def _cmd_inspect(args: argparse.Namespace) -> None:
    from .core import SGCLConfig, SGCLTrainer
    from .core.analysis import semantic_identification_auc
    from .data import load_dataset

    dataset = load_dataset(args.dataset, seed=0, scale=args.scale)
    trainer = SGCLTrainer(dataset.num_features,
                          SGCLConfig(epochs=args.epochs, batch_size=32,
                                     seed=0))
    trainer.pretrain(dataset.graphs)
    cache = None
    if args.cache_dir:
        from .runtime import PrecomputeCache

        cache = PrecomputeCache(args.cache_dir)
    graphs = dataset.graphs[:40]
    constants = trainer.precompute_lipschitz(graphs, workers=args.workers,
                                             cache=cache)
    scores = {id(graph): k_v for graph, k_v in zip(graphs, constants)}
    auc = semantic_identification_auc(
        lambda g: scores[id(g)], graphs)
    print(f"semantic-node identification ROC-AUC on {args.dataset}: "
          f"{auc:.3f}")
    if cache is not None:
        stats = cache.stats()
        print(f"precompute cache: {stats['hits']} hit(s), "
              f"{stats['misses']} miss(es), {stats['entries']} entries")


def _cmd_save(args: argparse.Namespace) -> None:
    from .baselines import make_method
    from .data import load_dataset

    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    model = make_method(args.method, dataset.num_features, seed=args.seed)
    model.pretrain(dataset.graphs, epochs=args.epochs)
    try:
        path = model.save_checkpoint(
            args.out, metadata={"cli_method": args.method,
                                "cli_dataset": args.dataset,
                                "cli_epochs": args.epochs,
                                "cli_seed": args.seed})
    except OSError as error:
        raise SystemExit(
            f"save: cannot write checkpoint {args.out}: {error}") from error
    print(f"saved {args.method} pre-trained on {args.dataset} "
          f"({args.epochs} epoch(s)) to {path}")


def _cmd_sample(args: argparse.Namespace) -> None:
    """Draw seeded subgraphs and report the stream's shape.

    The exact subgraphs a ``pretrain --node-level`` run would see (same
    seed derivation), reproducible offline: ``repro sample --epoch 3
    --index 7`` prints epoch 3's 8th subgraph, bit-identical to the one
    the trainer consumed.
    """
    import numpy as np

    from .runtime import ParallelExecutor
    from .sampling import SubgraphStream, load_node_dataset, make_sampler

    observer, log_path = _observer_from_args(args)
    dataset = load_node_dataset(args.dataset, seed=0, scale=args.scale)
    sampler = make_sampler(args.sampler, dataset)
    stream = SubgraphStream(sampler, samples_per_epoch=args.samples,
                            batch_size=args.samples, seed=args.seed,
                            executor=ParallelExecutor(args.workers))
    with observer.activate():
        graphs = list(stream.subgraphs(epoch=args.epoch))
    _finish_observer(observer, log_path, args)
    nodes = np.array([g.num_nodes for g in graphs], dtype=float)
    edges = np.array([g.num_edges / 2 for g in graphs], dtype=float)
    payload = {
        "dataset": args.dataset,
        "sampler": args.sampler,
        "seed": args.seed,
        "epoch": args.epoch,
        "samples": len(graphs),
        "nodes": {"mean": float(nodes.mean()), "min": int(nodes.min()),
                  "max": int(nodes.max())},
        "edges": {"mean": float(edges.mean()), "min": int(edges.min()),
                  "max": int(edges.max())},
    }
    if args.index is not None:
        graph = graphs[args.index]
        payload["subgraph"] = {
            "index": args.index,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges // 2,
            "node_ids": graph.meta["node_id"][:20].tolist(),
        }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    print(f"{args.sampler} sampler on {args.dataset} "
          f"({dataset.num_nodes} nodes): {len(graphs)} subgraph(s), "
          f"epoch {args.epoch}, seed {args.seed}")
    print(f"  nodes/subgraph: mean {nodes.mean():.1f} "
          f"[{int(nodes.min())}, {int(nodes.max())}]")
    print(f"  edges/subgraph: mean {edges.mean():.1f} "
          f"[{int(edges.min())}, {int(edges.max())}]")
    if args.index is not None:
        sub = payload["subgraph"]
        print(f"  subgraph {sub['index']}: {sub['num_nodes']} nodes, "
              f"{sub['num_edges']} edges, first ids {sub['node_ids']}")


def _parse_node_ids(spec: str) -> list[int]:
    """``"0,5,9-12"`` → ``[0, 5, 9, 10, 11, 12]``."""
    ids: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part:
            low, high = part.split("-", 1)
            ids.extend(range(int(low), int(high) + 1))
        else:
            ids.append(int(part))
    if not ids:
        raise SystemExit(f"embed: no node ids in --nodes {spec!r}")
    return ids


def _embed_node_level(args: argparse.Namespace) -> None:
    """Per-node embeddings through the graph-level service (ego-nets)."""
    import zipfile

    import numpy as np

    from .data.io import atomic_write
    from .sampling import NodeEmbeddingIndex, load_node_dataset
    from .serve import EmbeddingService, read_checkpoint_header

    try:
        header = read_checkpoint_header(args.checkpoint)
        service = EmbeddingService.from_checkpoint(
            args.checkpoint, max_batch_size=args.batch_size)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as error:
        raise SystemExit(
            f"embed: cannot load checkpoint {args.checkpoint}: "
            f"{error}") from error
    dataset = load_node_dataset(args.dataset, seed=args.seed,
                                scale=args.scale)
    if header["in_dim"] is not None \
            and dataset.num_features != header["in_dim"]:
        raise SystemExit(
            f"checkpoint expects {header['in_dim']} node features; "
            f"{args.dataset} has {dataset.num_features}")
    node_ids = np.asarray(_parse_node_ids(args.nodes), dtype=np.int64)
    if node_ids.min() < 0 or node_ids.max() >= dataset.num_nodes:
        raise SystemExit(
            f"embed: node ids must be in [0, {dataset.num_nodes}); "
            f"got {node_ids.min()}..{node_ids.max()}")
    index = NodeEmbeddingIndex(service, dataset, seed=args.seed)
    embeddings = index.embed_nodes(node_ids)
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        if out.suffix != ".npz":
            out = out.with_suffix(".npz")
        try:
            with atomic_write(out, suffix=".npz") as tmp:
                np.savez_compressed(tmp, embeddings=embeddings,
                                    node_ids=node_ids,
                                    labels=dataset.y[node_ids])
        except OSError as error:
            raise SystemExit(f"embed: cannot write {out}: {error}") from error
        print(f"wrote {embeddings.shape[0]}×{embeddings.shape[1]} node "
              f"embeddings to {out}")
    else:
        print(f"embedded {embeddings.shape[0]} node(s) "
              f"→ {embeddings.shape[1]}-dim")
    if args.stats:
        print(json.dumps(service.stats(), indent=2))


def _cmd_embed(args: argparse.Namespace) -> None:
    import zipfile

    import numpy as np

    from .data import load_dataset
    from .data.io import atomic_write
    from .serve import EmbeddingService, read_checkpoint_header

    if args.node_level:
        _embed_node_level(args)
        return
    try:
        header = read_checkpoint_header(args.checkpoint)
        service = EmbeddingService.from_checkpoint(
            args.checkpoint, max_batch_size=args.batch_size)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as error:
        raise SystemExit(
            f"embed: cannot load checkpoint {args.checkpoint}: "
            f"{error}") from error
    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    if header["in_dim"] is not None \
            and dataset.num_features != header["in_dim"]:
        raise SystemExit(
            f"checkpoint expects {header['in_dim']} node features; "
            f"{args.dataset} has {dataset.num_features}")
    embeddings = service.embed(dataset.graphs)
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        if out.suffix != ".npz":
            out = out.with_suffix(".npz")
        try:
            with atomic_write(out, suffix=".npz") as tmp:
                np.savez_compressed(tmp, embeddings=embeddings,
                                    labels=dataset.labels())
        except OSError as error:
            raise SystemExit(
                f"embed: cannot write {out}: {error}") from error
        print(f"wrote {embeddings.shape[0]}×{embeddings.shape[1]} "
              f"embeddings to {out}")
    else:
        print(f"embedded {embeddings.shape[0]} graphs "
              f"→ {embeddings.shape[1]}-dim")
    if args.stats:
        print(json.dumps(service.stats(), indent=2))


def _cmd_profile(args: argparse.Namespace) -> None:
    from pathlib import Path

    from .data.io import atomic_write
    from .obs.export import write_chrome_trace, write_collapsed_stacks
    from .obs.profile_run import profile_pretrain
    from .obs.profiler import compare_hotpaths

    observer, profiler, payload = profile_pretrain(
        args.dataset, scale=args.scale, epochs=args.epochs,
        batch_size=args.batch_size, seed=args.seed,
        max_graphs=args.max_graphs, trace_events=args.trace_events)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        width = max([len("span")] + [min(len(r["span"]), 60)
                                     for r in payload["rows"][:args.top]])
        print(f"{'span':<{width}}  {'op':<18}{'calls':>7}{'self ms':>9}"
              f"{'cum ms':>9}{'share':>7}")
        for row in payload["rows"][:args.top]:
            span = row["span"]
            if len(span) > width:  # keep the informative tail
                span = "…" + span[-(width - 1):]
            print(f"{span:<{width}}  {row['op']:<18}{row['calls']:>7}"
                  f"{row['self_s'] * 1e3:>9.2f}{row['cum_s'] * 1e3:>9.2f}"
                  f"{row['self_share']:>7.1%}")
        print(f"wall {payload['wall_seconds'] * 1e3:.1f}ms — "
              f"{payload['attributed_fraction']:.1%} attributed to "
              f"op×span rows ({payload['op_fraction']:.1%} in profiled "
              f"ops, the rest in per-span '(other)' glue)")
    if args.out_dir:
        out = Path(args.out_dir)
        with atomic_write(out / "hotpath.json") as tmp:
            tmp.write_text(json.dumps(payload, indent=2, sort_keys=True),
                           encoding="utf-8")
        write_chrome_trace(out / "trace.json", observer.tracer, profiler)
        write_collapsed_stacks(out / "flamegraph.txt", profiler.records())
        print(f"artifacts: {out}/hotpath.json, {out}/trace.json "
              f"(load in Perfetto), {out}/flamegraph.txt "
              f"(collapsed stacks)")
    if args.compare:
        try:
            baseline = json.loads(Path(args.compare).read_text())
        except (OSError, ValueError) as error:
            raise SystemExit(
                f"profile: cannot read baseline {args.compare}: "
                f"{error}") from error
        if baseline.get("config") != payload["config"]:
            raise SystemExit(
                f"profile: baseline {args.compare} was recorded with "
                f"config {baseline.get('config')}, this run used "
                f"{payload['config']} — rerun with matching flags")
        violations = compare_hotpaths(
            payload, baseline, share_tolerance=args.share_tolerance,
            per_call_ratio=args.per_call_ratio)
        if violations:
            print(f"perf gate: {len(violations)} regression(s) vs "
                  f"{args.compare}:")
            for violation in violations:
                print(f"  - {violation}")
            raise SystemExit(1)
        print(f"perf gate: OK vs {args.compare} "
              f"(share tolerance ±{args.share_tolerance}, per-call "
              f"ratio {args.per_call_ratio}x)")


def _cmd_serve(args: argparse.Namespace) -> None:
    import zipfile
    from pathlib import Path

    import numpy as np

    from .data import load_dataset
    from .data.io import atomic_write
    from .fleet import CanaryController, build_fleet
    from .serve import EmbeddingService, read_checkpoint_header

    if args.canary_checkpoint is None and args.canary_slice is not None:
        raise SystemExit("serve: --canary-slice requires --canary-checkpoint")
    try:
        header = read_checkpoint_header(args.checkpoint)
        router = build_fleet(args.checkpoint, args.workers,
                             policy=args.policy, cache_size=args.cache_size,
                             max_batch_size=args.batch_size)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as error:
        raise SystemExit(
            f"serve: cannot load checkpoint {args.checkpoint}: "
            f"{error}") from error
    dataset = load_dataset(args.dataset, seed=args.seed, scale=args.scale)
    if header["in_dim"] is not None \
            and dataset.num_features != header["in_dim"]:
        raise SystemExit(
            f"checkpoint expects {header['in_dim']} node features; "
            f"{args.dataset} has {dataset.num_features}")
    controller = None
    if args.canary_checkpoint:
        from .serve.checkpoint import load_checkpoint

        slice_fraction = args.canary_slice \
            if args.canary_slice is not None else 0.25
        try:
            bundle = load_checkpoint(args.canary_checkpoint)
        except (OSError, ValueError, KeyError, zipfile.BadZipFile) as error:
            raise SystemExit(
                f"serve: cannot load canary checkpoint "
                f"{args.canary_checkpoint}: {error}") from error
        version = bundle.metadata.get("name") \
            or Path(args.canary_checkpoint).stem
        router.deploy_canary(
            lambda: EmbeddingService(bundle.build_encoder(),
                                     cache_size=args.cache_size,
                                     max_batch_size=args.batch_size),
            version, slice_fraction)
        controller = CanaryController(router)
    observer, log_path = _observer_from_args(args)
    with observer.activate(), router:
        embeddings = None
        for _ in range(args.repeat):
            result = router.embed_detailed(dataset.graphs)
            embeddings = result.embeddings
        stats = router.stats()
        versions = sorted(result.served_versions())
        print(f"served {stats['graphs']} graph(s) over {args.repeat} pass(es) "
              f"across {stats['workers']} worker(s) [{stats['policy']}]: "
              f"hit rate {stats['cache']['hit_rate']:.3f}, "
              f"p50 {stats['latency']['p50_ms']:.2f}ms, "
              f"version(s) {', '.join(versions)}")
        if controller is not None:
            decision = controller.step()
            print(f"canary decision: {decision} "
                  f"(stable is now {router.workers[0].version})")
        if args.out:
            out = Path(args.out)
            if out.suffix != ".npz":
                out = out.with_suffix(".npz")
            try:
                with atomic_write(out, suffix=".npz") as tmp:
                    np.savez_compressed(tmp, embeddings=embeddings,
                                        labels=dataset.labels())
            except OSError as error:
                raise SystemExit(
                    f"serve: cannot write {out}: {error}") from error
            print(f"wrote {embeddings.shape[0]}×{embeddings.shape[1]} "
                  f"embeddings to {out}")
        if args.stats:
            print(json.dumps(stats, indent=2))
        if args.metrics_textfile:
            from .obs.export import write_prometheus_text

            write_prometheus_text(args.metrics_textfile, router.telemetry)
            print(f"metrics textfile: {args.metrics_textfile} "
                  f"(Prometheus text format)")
    _finish_observer(observer, log_path, args)


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--log-dir", default=None,
                        help="write a JSONL event log + run manifest here")
    parser.add_argument("--trace", action="store_true",
                        help="print the span tree after the run")


def _add_runtime_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for seed/precompute fan-out "
                             "(default: $REPRO_WORKERS, else serial); "
                             "results are bit-identical for any count")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="SGCL reproduction command line")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    datasets = sub.add_parser("datasets", help="list registered datasets")
    datasets.add_argument("--scale", type=float, default=0.05)
    datasets.add_argument("--json", action="store_true",
                          help="machine-readable statistics on stdout")
    datasets.set_defaults(fn=_cmd_datasets)

    pretrain = sub.add_parser("pretrain", help="unsupervised protocol")
    pretrain.add_argument("--method", default="SGCL")
    pretrain.add_argument("--dataset", default="MUTAG")
    pretrain.add_argument("--epochs", type=int, default=5)
    pretrain.add_argument("--seeds", type=int, default=1)
    pretrain.add_argument("--scale", type=float, default=0.1)
    pretrain.add_argument("--classifier", default="logreg",
                          choices=["logreg", "svm"])
    pretrain.add_argument("--checkpoint-dir", default=None,
                          help="crash-safe single-run mode: refresh a "
                               "checkpoint here every epoch (SGCL only)")
    pretrain.add_argument("--resume", action="store_true",
                          help="continue from the most advanced valid "
                               "checkpoint in --checkpoint-dir")
    pretrain.add_argument("--node-level", action="store_true",
                          help="node-level SGCL over sampled subgraphs of a "
                               "node dataset (e.g. community-1m); reports "
                               "linear-probe accuracy")
    pretrain.add_argument("--sampler", default="walk",
                          choices=["walk", "neighbor", "edge"],
                          help="subgraph sampler for --node-level")
    pretrain.add_argument("--samples-per-epoch", type=int, default=64,
                          help="subgraphs per epoch for --node-level")
    pretrain.add_argument("--subgraph-batch", type=int, default=8,
                          help="subgraphs per minibatch for --node-level")
    _add_observability_flags(pretrain)
    _add_runtime_flags(pretrain)
    pretrain.set_defaults(fn=_cmd_pretrain)

    sample = sub.add_parser(
        "sample", help="draw seeded subgraphs from a node dataset")
    sample.add_argument("--dataset", default="community-1m")
    sample.add_argument("--sampler", default="walk",
                        choices=["walk", "neighbor", "edge"])
    sample.add_argument("--samples", type=int, default=16,
                        help="subgraphs to draw")
    sample.add_argument("--epoch", type=int, default=0,
                        help="epoch whose seed stream to reproduce")
    sample.add_argument("--index", type=int, default=None,
                        help="also print this subgraph's provenance")
    sample.add_argument("--seed", type=int, default=0)
    sample.add_argument("--scale", type=float, default=0.01)
    sample.add_argument("--json", action="store_true",
                        help="machine-readable summary on stdout")
    _add_observability_flags(sample)
    _add_runtime_flags(sample)
    sample.set_defaults(fn=_cmd_sample)

    transfer = sub.add_parser("transfer", help="transfer protocol")
    transfer.add_argument("--method", default="SGCL")
    transfer.add_argument("--downstream", default="BBBP")
    transfer.add_argument("--epochs", type=int, default=3)
    transfer.add_argument("--finetune-epochs", type=int, default=5)
    transfer.add_argument("--seeds", type=int, default=1)
    transfer.add_argument("--scale", type=float, default=0.08)
    _add_observability_flags(transfer)
    _add_runtime_flags(transfer)
    transfer.set_defaults(fn=_cmd_transfer)

    report = sub.add_parser(
        "report", help="render a JSONL run log as tables")
    report.add_argument("log", help="path to a run-<id>.jsonl event log")
    report.set_defaults(fn=_cmd_report)

    doctor = sub.add_parser(
        "doctor", help="dataset invariants + guarded smoke pretrain")
    doctor.add_argument("--dataset", default="MUTAG")
    doctor.add_argument("--seed", type=int, default=0)
    doctor.add_argument("--scale", type=float, default=0.1)
    doctor.add_argument("--epochs", type=int, default=1,
                        help="smoke pre-training epochs")
    doctor.add_argument("--batch-size", type=int, default=16)
    doctor.add_argument("--max-graphs", type=int, default=32,
                        help="graphs used by the smoke pre-train")
    doctor.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    doctor.add_argument("--drift-store", default=None,
                        help="DatasetStore root with a live model: also "
                             "score the dataset's drift against the live "
                             "training statistics (validate/drift_*)")
    doctor.add_argument("--drift-warn", type=float, default=0.5,
                        help="drift score that warns")
    doctor.add_argument("--drift-refresh", type=float, default=2.0,
                        help="drift score that fails the doctor verdict")
    doctor.set_defaults(fn=_cmd_doctor)

    def _add_continuity_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--store", required=True,
                       help="DatasetStore root directory")
        p.add_argument("--registry", default=None,
                       help="ModelRegistry root (enables refresh + K_V drift)")
        p.add_argument("--model-base", default="sgcl",
                       help="refreshed models are named <base>-v<version>")
        p.add_argument("--refresh-epochs", type=int, default=2,
                       help="fine-tune epochs per refresh")
        p.add_argument("--window", type=int, default=None,
                       help="train on the last N batches only")
        p.add_argument("--batch-size", type=int, default=32,
                       help="training batch size for bootstrap refreshes")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--policy", default="drop",
                       choices=["drop", "raise", "warn"],
                       help="what to do with structurally invalid graphs")
        p.add_argument("--warn-threshold", type=float, default=0.5)
        p.add_argument("--refresh-threshold", type=float, default=2.0)
        p.add_argument("--json", action="store_true",
                       help="machine-readable report on stdout")

    ingest = sub.add_parser(
        "ingest", help="commit a graph batch to a versioned dataset store")
    _add_continuity_flags(ingest)
    ingest.add_argument("--from-npz", default=None,
                        help="ingest a batch written by save_dataset")
    ingest.add_argument("--dataset", default="MUTAG",
                        help="synthesise the batch from this dataset "
                             "(ignored with --from-npz)")
    ingest.add_argument("--scale", type=float, default=0.08)
    ingest.add_argument("--skip", type=int, default=0,
                        help="skip this many leading graphs")
    ingest.add_argument("--take", type=int, default=None,
                        help="batch size cap (default: the rest)")
    ingest.add_argument("--shift-features", type=float, default=None,
                        help="add this constant to every feature "
                             "(deterministic drift injection)")
    ingest.add_argument("--tag-ids", default=None, metavar="PREFIX",
                        help="assign graph_id=<PREFIX><index> so re-ingested "
                             "graphs supersede earlier revisions")
    ingest.set_defaults(fn=_cmd_ingest)

    refresh = sub.add_parser(
        "refresh", help="fine-tune + go live on the newest dataset version")
    _add_continuity_flags(refresh)
    refresh.add_argument("--version", type=int, default=None,
                         help="target dataset version (default: newest)")
    refresh.add_argument("--force", action="store_true",
                         help="retrain even if the live model is current")
    refresh.add_argument("--watch", action="store_true",
                         help="poll --spool for batches, refreshing on drift")
    refresh.add_argument("--spool", default=None,
                         help="spool directory of *.npz batches for --watch")
    refresh.add_argument("--interval", type=float, default=5.0,
                         help="seconds between --watch sweeps")
    refresh.add_argument("--max-cycles", type=int, default=None,
                         help="stop --watch after N sweeps (default: forever)")
    refresh.set_defaults(fn=_cmd_refresh)

    inspect = sub.add_parser("inspect", help="semantic-node diagnostics")
    inspect.add_argument("--dataset", default="PROTEINS")
    inspect.add_argument("--epochs", type=int, default=4)
    inspect.add_argument("--scale", type=float, default=0.08)
    inspect.add_argument("--cache-dir", default=None,
                        help="content-addressed precompute cache for the "
                             "Lipschitz constants")
    _add_runtime_flags(inspect)
    inspect.set_defaults(fn=_cmd_inspect)

    save = sub.add_parser("save", help="pretrain → serving checkpoint")
    save.add_argument("--method", default="SGCL")
    save.add_argument("--dataset", default="MUTAG")
    save.add_argument("--epochs", type=int, default=5)
    save.add_argument("--seed", type=int, default=0)
    save.add_argument("--scale", type=float, default=0.1)
    save.add_argument("--out", required=True,
                      help="checkpoint path (.npz appended if missing)")
    save.set_defaults(fn=_cmd_save)

    embed = sub.add_parser("embed",
                           help="checkpoint → embeddings (cached service)")
    embed.add_argument("--checkpoint", required=True)
    embed.add_argument("--dataset", default="MUTAG")
    embed.add_argument("--seed", type=int, default=0)
    embed.add_argument("--scale", type=float, default=0.1)
    embed.add_argument("--batch-size", type=int, default=64,
                       help="micro-batch size of the serving encoder")
    embed.add_argument("--out", default=None,
                       help="write embeddings + labels to this .npz")
    embed.add_argument("--stats", action="store_true",
                       help="print service telemetry after embedding")
    embed.add_argument("--node-level", action="store_true",
                       help="serve per-node embeddings of a node dataset "
                            "(deterministic ego-nets through the same "
                            "cached service)")
    embed.add_argument("--nodes", default="0-15",
                       help="node ids for --node-level: comma list and/or "
                            "ranges, e.g. '0,5,9-12'")
    embed.set_defaults(fn=_cmd_embed)

    serve = sub.add_parser(
        "serve", help="checkpoint → sharded embedding fleet")
    serve.add_argument("--checkpoint", required=True)
    serve.add_argument("--dataset", default="MUTAG")
    serve.add_argument("--workers", type=int, default=2,
                       help="fleet replicas behind the router")
    serve.add_argument("--policy", default="hash",
                       choices=["hash", "random"],
                       help="consistent-hash sharding vs the random-routing "
                            "baseline")
    serve.add_argument("--repeat", type=int, default=2,
                       help="passes over the dataset (later passes exercise "
                            "the shard caches)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--scale", type=float, default=0.1)
    serve.add_argument("--batch-size", type=int, default=64)
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="per-replica embedding cache capacity")
    serve.add_argument("--canary-checkpoint", default=None,
                       help="deploy this checkpoint as a canary before "
                            "serving; promoted or rolled back on telemetry "
                            "after the run")
    serve.add_argument("--canary-slice", type=float, default=None,
                       help="fraction of digest space the canary serves "
                            "(default 0.25)")
    serve.add_argument("--out", default=None,
                       help="write embeddings + labels to this .npz")
    serve.add_argument("--stats", action="store_true",
                       help="print fleet telemetry after serving")
    serve.add_argument("--metrics-textfile", default=None,
                       help="write router telemetry here in Prometheus "
                            "text exposition format (node-exporter "
                            "textfile-collector compatible)")
    _add_observability_flags(serve)
    serve.set_defaults(fn=_cmd_serve)

    profile = sub.add_parser(
        "profile", help="op-level profile of a seeded pretrain slice")
    profile.add_argument("--dataset", default="MUTAG")
    profile.add_argument("--scale", type=float, default=0.1)
    profile.add_argument("--epochs", type=int, default=2)
    profile.add_argument("--batch-size", type=int, default=32)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--max-graphs", type=int, default=64,
                         help="graphs in the profiled slice")
    profile.add_argument("--top", type=int, default=15,
                         help="hot-path rows to print")
    profile.add_argument("--trace-events", action="store_true",
                         help="record per-op Chrome trace events (an op "
                              "timeline track in trace.json; costs one "
                              "dict per op call)")
    profile.add_argument("--out-dir", default=None,
                         help="write hotpath.json, trace.json (Perfetto) "
                              "and flamegraph.txt (collapsed stacks) here")
    profile.add_argument("--json", action="store_true",
                         help="machine-readable hot-path payload on stdout")
    profile.add_argument("--compare", default=None,
                         help="baseline hot-path JSON (BENCH_hotpath.json); "
                              "exit 1 on regression beyond tolerance")
    profile.add_argument("--share-tolerance", type=float, default=0.10,
                         help="max absolute growth of an op's self-time "
                              "share vs baseline")
    profile.add_argument("--per-call-ratio", type=float, default=3.0,
                         help="max growth of an op's normalised per-call "
                              "cost vs baseline")
    profile.set_defaults(fn=_cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> None:
    args = build_parser().parse_args(argv)
    try:
        args.fn(args)
    except KeyboardInterrupt:
        # Commands that can do better (pretrain --checkpoint-dir) trap the
        # signal themselves and never reach this handler.
        print("interrupted", file=sys.stderr)
        raise SystemExit(130) from None


if __name__ == "__main__":  # pragma: no cover
    main()
