"""GraphDataset label/statistics handling for unlabeled (y=None) graphs."""

from __future__ import annotations

import numpy as np

from _helpers import make_path, make_triangle
from repro.data import GraphDataset


def _graph(rng, y):
    graph = make_triangle(rng)
    graph.y = y
    return graph


def test_labels_all_present_stay_int(rng):
    dataset = GraphDataset("toy", [_graph(rng, 0), _graph(rng, 1)],
                           num_classes=2)
    labels = dataset.labels()
    assert labels.dtype.kind in "iu"
    assert np.array_equal(labels, [0, 1])


def test_labels_missing_become_nan_rows(rng):
    dataset = GraphDataset(
        "toy", [_graph(rng, 1), _graph(rng, None), _graph(rng, 0)],
        num_classes=2)
    labels = dataset.labels()
    assert labels.dtype == np.float64
    assert labels[0] == 1.0 and labels[2] == 0.0
    assert np.isnan(labels[1])


def test_labels_all_missing_are_all_nan(rng):
    dataset = GraphDataset("toy", [_graph(rng, None), _graph(rng, None)],
                           num_classes=2)
    labels = dataset.labels()
    assert labels.shape == (2,)
    assert np.isnan(labels).all()


def test_labels_mixed_vector_labels(rng):
    """Multitask datasets: a y=None graph becomes a NaN-filled row."""
    dataset = GraphDataset(
        "toy",
        [_graph(rng, np.array([1.0, 0.0])), _graph(rng, None)],
        num_classes=2, task="multitask")
    labels = dataset.labels()
    assert labels.shape == (2, 2)
    assert np.array_equal(labels[0], [1.0, 0.0])
    assert np.isnan(labels[1]).all()


def test_statistics_report_label_coverage(rng):
    graphs = [_graph(rng, 0), _graph(rng, None), _graph(rng, 1),
              make_path(rng, 4, y=None)]
    dataset = GraphDataset("toy", graphs, num_classes=2)
    stats = dataset.statistics()
    assert stats["num_graphs"] == 4
    assert stats["num_labeled"] == 2
    assert np.isfinite(stats["avg_nodes"])


def test_statistics_tolerate_fully_unlabeled_dataset(rng):
    dataset = GraphDataset("toy", [_graph(rng, None)], num_classes=2)
    stats = dataset.statistics()
    assert stats["num_labeled"] == 0
