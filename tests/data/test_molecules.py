"""Molecular generators: ZincLike corpus and MoleculeNet-style tasks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    FUNCTIONAL_GROUPS,
    MOLECULENET_SPECS,
    NUM_ATOM_TYPES,
    generate_moleculenet_like,
    generate_zinc_like,
    load_dataset,
)


def test_zinc_basic_properties():
    corpus = generate_zinc_like(seed=0, num_graphs=50)
    assert len(corpus) == 50
    for graph in corpus:
        assert graph.num_features == NUM_ATOM_TYPES
        assert graph.y is None
        assert "scaffold" in graph.meta
        assert "semantic_nodes" in graph.meta


def test_zinc_atom_features_are_one_hot():
    corpus = generate_zinc_like(seed=0, num_graphs=10)
    for graph in corpus:
        assert np.allclose(graph.x.sum(axis=1), 1.0)


def test_zinc_determinism():
    a = generate_zinc_like(seed=5, num_graphs=20)
    b = generate_zinc_like(seed=5, num_graphs=20)
    for ga, gb in zip(a, b):
        assert (ga.x == gb.x).all() and (ga.edge_index == gb.edge_index).all()


def test_functional_groups_marked_semantic():
    corpus = generate_zinc_like(seed=1, num_graphs=100)
    with_groups = [g for g in corpus if g.meta["functional_groups"].any()]
    assert with_groups, "some molecules must carry functional groups"
    for graph in with_groups[:20]:
        assert graph.meta["semantic_nodes"].any()


@pytest.mark.parametrize("name", sorted(MOLECULENET_SPECS))
def test_moleculenet_tasks(name):
    dataset = load_dataset(name, seed=0, scale=0.05)
    spec = MOLECULENET_SPECS[name]
    assert dataset.task == "multitask"
    assert dataset.num_classes == min(spec.num_tasks, 16)
    labels = np.stack([g.y for g in dataset])
    assert labels.shape[1] == dataset.num_classes
    valid = labels[~np.isnan(labels)]
    assert set(np.unique(valid)) <= {0.0, 1.0}


def test_missing_rate_roughly_matches_spec():
    dataset = load_dataset("MUV", seed=0, scale=0.01)
    labels = np.stack([g.y for g in dataset])
    missing = np.isnan(labels).mean()
    assert 0.7 < missing < 0.95  # spec: 0.84


def test_no_missing_labels_for_complete_datasets():
    dataset = load_dataset("BBBP", seed=0, scale=0.05)
    labels = np.stack([g.y for g in dataset])
    assert not np.isnan(labels).any()


def test_labels_depend_on_functional_groups():
    """Flip-noise aside, labels must correlate with FG presence patterns."""
    dataset = generate_moleculenet_like(
        MOLECULENET_SPECS["BBBP"], seed=0, scale=0.5, label_noise=0.0)
    presence = np.stack([g.meta["functional_groups"] for g in dataset])
    labels = np.array([g.y[0] for g in dataset])
    # Some functional-group column must predict the task far above chance.
    best = max(abs(np.corrcoef(presence[:, j], labels)[0, 1])
               for j in range(presence.shape[1])
               if presence[:, j].std() > 0)
    assert best > 0.25


def test_scaffolds_are_shared_vocabulary():
    corpus = generate_zinc_like(seed=0, num_graphs=60)
    downstream = load_dataset("BACE", seed=0, scale=0.05)
    corpus_scaffolds = {g.meta["scaffold"] for g in corpus}
    downstream_scaffolds = {g.meta["scaffold"] for g in downstream}
    assert corpus_scaffolds & downstream_scaffolds


def test_functional_group_templates_have_attachment_point():
    for name, (edges, atoms) in FUNCTIONAL_GROUPS.items():
        nodes = {n for e in edges for n in e}
        assert 0 in nodes, f"{name} must attach via local node 0"
        assert len(atoms) == max(nodes) + 1
