"""Atomic file-writing tests: no truncated files, parents auto-created."""

from __future__ import annotations

import json

import numpy as np
import pytest
from _helpers import make_triangle

from repro.data import GraphDataset, load_saved_dataset, save_dataset
from repro.data.io import atomic_write


def test_atomic_write_success_leaves_no_temp_files(tmp_path):
    target = tmp_path / "out.json"
    with atomic_write(target) as tmp:
        tmp.write_text('{"ok": true}')
    assert json.loads(target.read_text()) == {"ok": True}
    assert list(tmp_path.iterdir()) == [target]


def test_atomic_write_creates_parent_directories(tmp_path):
    target = tmp_path / "a" / "b" / "c.json"
    with atomic_write(target) as tmp:
        tmp.write_text("{}")
    assert target.exists()


def test_failed_write_leaves_target_untouched(tmp_path):
    target = tmp_path / "out.json"
    target.write_text("original")
    with pytest.raises(RuntimeError):
        with atomic_write(target) as tmp:
            tmp.write_text("partial garbage")
            raise RuntimeError("simulated crash mid-write")
    assert target.read_text() == "original"
    assert list(tmp_path.iterdir()) == [target]


def test_save_dataset_into_missing_directory(tmp_path, rng):
    dataset = GraphDataset("tiny", [make_triangle(rng, y=0)], 2)
    path = save_dataset(dataset, tmp_path / "deep" / "nested" / "tiny.npz")
    loaded = load_saved_dataset(path)
    assert len(loaded) == 1
    assert np.array_equal(loaded[0].x, dataset[0].x)
    leftovers = [p for p in path.parent.iterdir() if p != path]
    assert leftovers == []


def test_save_results_is_atomic(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    from repro.bench import save_results

    path = save_results("unit_test_bench", {"score": 1.0})
    record = json.loads(path.read_text())
    assert record["results"] == {"score": 1.0}
    assert [p.name for p in path.parent.iterdir()] == ["unit_test_bench.json"]
