"""Atomic file-writing tests: no truncated files, parents auto-created."""

from __future__ import annotations

import json

import numpy as np
import pytest
from _helpers import make_triangle

from repro.data import GraphDataset, load_saved_dataset, save_dataset
from repro.data.io import atomic_write


def test_atomic_write_success_leaves_no_temp_files(tmp_path):
    target = tmp_path / "out.json"
    with atomic_write(target) as tmp:
        tmp.write_text('{"ok": true}')
    assert json.loads(target.read_text()) == {"ok": True}
    assert list(tmp_path.iterdir()) == [target]


def test_atomic_write_creates_parent_directories(tmp_path):
    target = tmp_path / "a" / "b" / "c.json"
    with atomic_write(target) as tmp:
        tmp.write_text("{}")
    assert target.exists()


def test_failed_write_leaves_target_untouched(tmp_path):
    target = tmp_path / "out.json"
    target.write_text("original")
    with pytest.raises(RuntimeError):
        with atomic_write(target) as tmp:
            tmp.write_text("partial garbage")
            raise RuntimeError("simulated crash mid-write")
    assert target.read_text() == "original"
    assert list(tmp_path.iterdir()) == [target]


def test_atomic_write_fsyncs_file_then_dir_around_the_rename(tmp_path,
                                                             monkeypatch):
    """Durability ordering: flush data, rename, flush the directory entry.

    Any other order can surface the target name pointing at unflushed
    bytes after power loss. The fsync indirection (``repro.data.io._FSYNC``)
    records what got flushed; os.replace is wrapped to place the rename
    in the same timeline.
    """
    import os
    import stat as stat_mod

    import repro.data.io as io

    events = []
    real_replace = os.replace

    def recording_fsync(fd):
        mode = os.fstat(fd).st_mode
        events.append("dir" if stat_mod.S_ISDIR(mode) else "file")
        os.fsync(fd)

    def recording_replace(src, dst):
        events.append("rename")
        real_replace(src, dst)

    monkeypatch.setattr(io, "_FSYNC", recording_fsync)
    monkeypatch.setattr(io.os, "replace", recording_replace)
    target = tmp_path / "out.json"
    with atomic_write(target) as tmp:
        tmp.write_text("{}")
    assert events == ["file", "rename", "dir"]
    assert target.read_text() == "{}"


def test_atomic_write_durable_false_skips_flushes(tmp_path, monkeypatch):
    import repro.data.io as io

    flushed = []
    monkeypatch.setattr(io, "_FSYNC", lambda fd: flushed.append(fd))
    target = tmp_path / "out.json"
    with atomic_write(target, durable=False) as tmp:
        tmp.write_text("{}")
    assert flushed == []
    assert target.read_text() == "{}"


def test_save_dataset_into_missing_directory(tmp_path, rng):
    dataset = GraphDataset("tiny", [make_triangle(rng, y=0)], 2)
    path = save_dataset(dataset, tmp_path / "deep" / "nested" / "tiny.npz")
    loaded = load_saved_dataset(path)
    assert len(loaded) == 1
    assert np.array_equal(loaded[0].x, dataset[0].x)
    leftovers = [p for p in path.parent.iterdir() if p != path]
    assert leftovers == []


def test_save_results_is_atomic(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path / "results"))
    from repro.bench import save_results

    path = save_results("unit_test_bench", {"score": 1.0})
    record = json.loads(path.read_text())
    assert record["results"] == {"score": 1.0}
    assert [p.name for p in path.parent.iterdir()] == ["unit_test_bench.json"]
