"""DataLoader ``drop_last`` / ``__len__`` regression suite.

``len(loader)`` must agree with the number of batches iteration actually
yields for every combination of corpus size, batch size and ``drop_last``
mode — including the degenerate corners (corpus smaller than one batch,
corpus an exact multiple of the batch size, empty corpus).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DataLoader

from _helpers import make_triangle


def _graphs(rng, n):
    return [make_triangle(rng, y=i % 2) for i in range(n)]


@pytest.mark.parametrize("num_graphs", [0, 1, 3, 4, 5, 8, 9])
@pytest.mark.parametrize("batch_size", [1, 2, 4, 16])
@pytest.mark.parametrize("drop_last", [False, True])
def test_len_agrees_with_iteration(rng, num_graphs, batch_size, drop_last):
    loader = DataLoader(_graphs(rng, num_graphs), batch_size,
                        drop_last=drop_last)
    batches = list(loader)
    assert len(loader) == len(batches)
    if drop_last:
        assert all(b.num_graphs == batch_size for b in batches)
    else:
        assert sum(b.num_graphs for b in batches) == num_graphs


def test_drop_last_discards_only_the_short_tail(rng):
    loader = DataLoader(_graphs(rng, 10), 4, drop_last=True)
    batches = list(loader)
    assert [b.num_graphs for b in batches] == [4, 4]
    assert sum(b.num_graphs for b in batches) == 8


def test_drop_last_keeps_exact_multiple(rng):
    loader = DataLoader(_graphs(rng, 8), 4, drop_last=True)
    assert len(loader) == 2
    assert [b.num_graphs for b in loader] == [4, 4]


def test_drop_last_with_undersized_corpus_yields_nothing(rng):
    loader = DataLoader(_graphs(rng, 3), 4, drop_last=True)
    assert len(loader) == 0
    assert list(loader) == []


def test_drop_last_covers_all_graphs_when_shuffled(rng):
    """Shuffling + drop_last drops *a* remainder, not specific graphs."""
    graphs = _graphs(rng, 9)
    loader = DataLoader(graphs, 4, shuffle=True,
                        rng=np.random.default_rng(3), drop_last=True)
    for _ in range(3):
        batches = list(loader)
        assert len(batches) == len(loader) == 2
        assert all(b.num_graphs == 4 for b in batches)


def test_len_is_stable_across_epochs(rng):
    loader = DataLoader(_graphs(rng, 10), 3, shuffle=True,
                        rng=np.random.default_rng(0))
    assert [len(list(loader)) for _ in range(3)] == [len(loader)] * 3
