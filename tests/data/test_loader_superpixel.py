"""DataLoader behaviour and the MNIST-Superpixel generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DataLoader, digit_graph, generate_superpixel_dataset
from repro.graph import Batch

from _helpers import make_triangle


def _toy_graphs(rng, n=10):
    return [make_triangle(rng, y=i % 2) for i in range(n)]


def test_loader_batch_sizes(rng):
    loader = DataLoader(_toy_graphs(rng, 10), 4)
    sizes = [b.num_graphs for b in loader]
    assert sizes == [4, 4, 2]
    assert len(loader) == 3


def test_loader_drop_last(rng):
    loader = DataLoader(_toy_graphs(rng, 10), 4, drop_last=True)
    assert [b.num_graphs for b in loader] == [4, 4]
    assert len(loader) == 2


def test_loader_shuffle_requires_rng(rng):
    with pytest.raises(ValueError):
        DataLoader(_toy_graphs(rng), 4, shuffle=True)


def test_loader_shuffle_deterministic(rng):
    graphs = _toy_graphs(rng, 8)
    a = DataLoader(graphs, 8, shuffle=True, rng=np.random.default_rng(0))
    b = DataLoader(graphs, 8, shuffle=True, rng=np.random.default_rng(0))
    batch_a, batch_b = next(iter(a)), next(iter(b))
    assert np.allclose(batch_a.x, batch_b.x)


def test_loader_reshuffles_each_epoch(rng):
    graphs = _toy_graphs(rng, 30)
    loader = DataLoader(graphs, 30, shuffle=True,
                        rng=np.random.default_rng(0))
    first = next(iter(loader)).x.copy()
    second = next(iter(loader)).x
    assert not np.allclose(first, second)


def test_loader_rejects_zero_batch(rng):
    with pytest.raises(ValueError):
        DataLoader(_toy_graphs(rng), 0)


# ----------------------------------------------------------------------
# Superpixel digits
# ----------------------------------------------------------------------
def test_digit_graph_structure(rng):
    graph = digit_graph(3, rng)
    assert graph.num_features == 2
    assert graph.y == 3
    mask = graph.meta["semantic_nodes"]
    assert mask.any() and not mask.all()


def test_stroke_nodes_are_bright(rng):
    graph = digit_graph(8, rng)
    mask = graph.meta["semantic_nodes"]
    assert graph.x[mask, 0].min() > graph.x[~mask, 0].max()


def test_superpixel_dataset_composition():
    dataset = generate_superpixel_dataset(seed=0, per_digit=3,
                                          digits=(1, 2, 6))
    assert len(dataset) == 9
    assert sorted(set(dataset.labels().tolist())) == [1, 2, 6]


def test_superpixel_graphs_batchable():
    dataset = generate_superpixel_dataset(seed=0, per_digit=2, digits=(0, 7))
    batch = Batch(dataset.graphs)
    assert batch.num_graphs == 4
    assert batch.edge_index.max() < batch.num_nodes


def test_all_ten_digits_render(rng):
    for digit in range(10):
        graph = digit_graph(digit, rng)
        assert graph.meta["semantic_nodes"].sum() >= 5
