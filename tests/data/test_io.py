"""Dataset save/load round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import load_dataset, load_saved_dataset, save_dataset


def _roundtrip(dataset, tmp_path):
    path = save_dataset(dataset, tmp_path / "data")
    return load_saved_dataset(path)


def test_roundtrip_classification(tmp_path):
    dataset = load_dataset("MUTAG", seed=0, scale=0.1)
    loaded = _roundtrip(dataset, tmp_path)
    assert loaded.name == dataset.name
    assert loaded.num_classes == dataset.num_classes
    assert loaded.task == dataset.task
    assert len(loaded) == len(dataset)
    for a, b in zip(dataset, loaded):
        assert np.allclose(a.x, b.x)
        assert (a.edge_index == b.edge_index).all()
        assert a.y == b.y
        assert (a.meta["semantic_nodes"] == b.meta["semantic_nodes"]).all()


def test_roundtrip_multitask_with_nan_labels(tmp_path):
    dataset = load_dataset("MUV", seed=0, scale=0.005)
    loaded = _roundtrip(dataset, tmp_path)
    for a, b in zip(dataset, loaded):
        both_nan = np.isnan(a.y) & np.isnan(b.y)
        assert (both_nan | (a.y == b.y)).all()
        assert a.meta["scaffold"] == b.meta["scaffold"]


def test_roundtrip_unlabeled_corpus(tmp_path):
    from repro.data import generate_zinc_like
    dataset = generate_zinc_like(seed=0, num_graphs=10)
    loaded = _roundtrip(dataset, tmp_path)
    assert all(g.y is None for g in loaded)


def test_npz_suffix_appended(tmp_path):
    dataset = load_dataset("MUTAG", seed=0, scale=0.1)
    path = save_dataset(dataset, tmp_path / "plainname")
    assert path.suffix == ".npz"
    assert path.exists()


def test_version_check(tmp_path):
    import json
    dataset = load_dataset("MUTAG", seed=0, scale=0.1)
    path = save_dataset(dataset, tmp_path / "data")
    # Corrupt the header version.
    with np.load(path) as archive:
        arrays = {k: archive[k] for k in archive.files}
    header = json.loads(bytes(arrays["__header__"]).decode())
    header["version"] = 99
    arrays["__header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)
    with pytest.raises(ValueError):
        load_saved_dataset(path)
