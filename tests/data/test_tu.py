"""Synthetic TU dataset generators: statistics, determinism, semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import TU_SPECS, generate_tu_dataset, load_dataset


@pytest.mark.parametrize("name", sorted(TU_SPECS))
def test_loads_with_right_metadata(name):
    dataset = load_dataset(name, seed=0, scale=0.02, node_scale=0.2)
    spec = TU_SPECS[name]
    assert dataset.num_classes == spec.num_classes
    assert len(dataset) >= 24
    assert all(g.num_nodes >= 4 for g in dataset)


def test_statistics_track_spec():
    dataset = load_dataset("MUTAG", seed=0)
    stats = dataset.statistics()
    spec = TU_SPECS["MUTAG"]
    assert stats["num_graphs"] == spec.num_graphs
    assert abs(stats["avg_nodes"] - spec.avg_nodes) / spec.avg_nodes < 0.25
    assert abs(stats["avg_edges"] - spec.avg_edges) / spec.avg_edges < 0.45


def test_social_dataset_density_scales():
    dataset = load_dataset("COLLAB", seed=0, scale=0.01, node_scale=0.5)
    stats = dataset.statistics()
    # COLLAB is very dense: ~33 edges per node at full density.
    assert stats["avg_edges"] / stats["avg_nodes"] > 10


def test_determinism_same_seed():
    a = load_dataset("PROTEINS", seed=3, scale=0.03)
    b = load_dataset("PROTEINS", seed=3, scale=0.03)
    for ga, gb in zip(a, b):
        assert (ga.x == gb.x).all()
        assert (ga.edge_index == gb.edge_index).all()
        assert ga.y == gb.y


def test_different_seeds_differ():
    a = load_dataset("PROTEINS", seed=1, scale=0.03)
    b = load_dataset("PROTEINS", seed=2, scale=0.03)
    assert any((ga.x.shape != gb.x.shape or not (ga.x == gb.x).all())
               for ga, gb in zip(a, b))


def test_semantic_mask_present_and_nontrivial():
    dataset = load_dataset("MUTAG", seed=0, scale=0.2)
    for graph in dataset:
        mask = graph.meta["semantic_nodes"]
        assert mask.dtype == bool
        assert 0 < mask.sum() < graph.num_nodes


def test_semantic_nodes_have_salient_attributes():
    """Molecule-style motif nodes carry the high-magnitude attribute channels."""
    dataset = load_dataset("MUTAG", seed=0, scale=0.2)
    graph = dataset[0]
    mask = graph.meta["semantic_nodes"]
    attribute = graph.x[:, -1]
    assert attribute[mask].mean() > attribute[~mask].mean() + 0.5


def test_labels_cover_all_classes():
    dataset = load_dataset("RDT-M-5K", seed=0, scale=0.02, node_scale=0.1)
    assert set(dataset.labels().tolist()) == set(range(5))


def test_node_scale_shrinks_graphs():
    big = load_dataset("DD", seed=0, scale=0.02, node_scale=0.5)
    small = load_dataset("DD", seed=0, scale=0.02, node_scale=0.1)
    assert small.statistics()["avg_nodes"] < big.statistics()["avg_nodes"]


def test_graphs_are_connected_enough():
    """Backbones are trees + motif, so graphs should be connected."""
    import networkx as nx
    dataset = load_dataset("MUTAG", seed=0, scale=0.1)
    for graph in dataset.graphs[:10]:
        assert nx.is_connected(graph.to_networkx())


def test_label_noise_zero_gives_clean_labels():
    spec = TU_SPECS["MUTAG"]
    dataset = generate_tu_dataset(spec, seed=0, scale=0.2, label_noise=0.0)
    # With 0 noise the motif kind deterministically matches the label; we
    # check labels are within range.
    assert set(dataset.labels().tolist()) <= {0, 1}


def test_unknown_dataset_raises():
    with pytest.raises(KeyError):
        load_dataset("NOT-A-DATASET")
