"""Split utilities: k-fold stratification, scaffold split, label-rate split."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    label_rate_split,
    load_dataset,
    scaffold_split,
    stratified_kfold,
    train_test_split,
)


def test_train_test_split_disjoint_and_complete(rng):
    train, test = train_test_split(100, 0.1, rng)
    assert len(test) == 10
    assert len(np.intersect1d(train, test)) == 0
    assert len(np.union1d(train, test)) == 100


def test_train_test_split_validates_fraction(rng):
    with pytest.raises(ValueError):
        train_test_split(10, 1.5, rng)


def test_kfold_partitions_everything(rng):
    labels = rng.integers(3, size=60)
    folds = stratified_kfold(labels, 5, rng)
    assert len(folds) == 5
    all_test = np.concatenate([test for _, test in folds])
    assert sorted(all_test.tolist()) == list(range(60))
    for train, test in folds:
        assert len(np.intersect1d(train, test)) == 0


def test_kfold_stratification(rng):
    labels = np.array([0] * 50 + [1] * 10)
    folds = stratified_kfold(labels, 5, rng)
    for _, test in folds:
        test_labels = labels[test]
        assert (test_labels == 1).sum() == 2  # 10 positives over 5 folds


def test_kfold_requires_k_at_least_2(rng):
    with pytest.raises(ValueError):
        stratified_kfold(np.zeros(10), 1, rng)


@settings(max_examples=20, deadline=None)
@given(st.integers(20, 100), st.integers(2, 8), st.integers(0, 999))
def test_kfold_property_partition(n, k, seed):
    local = np.random.default_rng(seed)
    labels = local.integers(2, size=n)
    folds = stratified_kfold(labels, k, local)
    tests = np.concatenate([t for _, t in folds])
    assert sorted(tests.tolist()) == list(range(n))


def test_scaffold_split_disjoint_scaffolds():
    dataset = load_dataset("BBBP", seed=0, scale=0.2)
    train, valid, test = scaffold_split(dataset)
    scaffold_of = lambda idx: {dataset[int(i)].meta["scaffold"] for i in idx}
    assert not (scaffold_of(train) & scaffold_of(test))
    assert len(train) + len(valid) + len(test) == len(dataset)


def test_scaffold_split_deterministic():
    dataset = load_dataset("BBBP", seed=0, scale=0.2)
    a = scaffold_split(dataset)
    b = scaffold_split(dataset)
    for x, y in zip(a, b):
        assert (x == y).all()


def test_scaffold_split_train_is_biggest():
    dataset = load_dataset("BACE", seed=0, scale=0.2)
    train, valid, test = scaffold_split(dataset)
    assert len(train) > len(valid)
    assert len(train) > len(test)
    assert len(test) > 0


def test_scaffold_split_requires_metadata(rng):
    from repro.data import GraphDataset
    from _helpers import make_triangle
    dataset = GraphDataset("toy", [make_triangle(rng)], 2)
    with pytest.raises(KeyError):
        scaffold_split(dataset)


def test_scaffold_split_fraction_validation():
    dataset = load_dataset("BBBP", seed=0, scale=0.05)
    with pytest.raises(ValueError):
        scaffold_split(dataset, fractions=(0.5, 0.2, 0.2))


def test_label_rate_split_sizes(rng):
    labels = np.repeat([0, 1], 100)
    picked = label_rate_split(labels, 0.1, rng)
    assert len(picked) == 20
    assert set(labels[picked]) == {0, 1}


def test_label_rate_split_keeps_every_class(rng):
    labels = np.array([0] * 195 + [1] * 5)
    picked = label_rate_split(labels, 0.01, rng)
    assert 1 in labels[picked]


def test_label_rate_split_validates(rng):
    with pytest.raises(ValueError):
        label_rate_split(np.zeros(10), 0.0, rng)
