"""Lipschitz constant generator: exact semantics, approximation, invariants."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core import LipschitzConstantGenerator, topology_distance
from repro.data import load_dataset
from repro.eval import roc_auc
from repro.gnn import GNNEncoder
from repro.graph import Batch
from repro.tensor import Tensor, no_grad

from _helpers import make_path, make_triangle


def test_topology_distance_formula():
    degrees = np.array([0.0, 1.0, 4.0])
    out = topology_distance(degrees)
    assert np.isclose(out[1], np.sqrt(2.0))
    assert np.isclose(out[2], np.sqrt(8.0))
    assert out[0] >= np.sqrt(2.0)  # isolated-node floor


def _sage_encoder(features, rng):
    return GNNEncoder(features, 16, 2, rng=rng, conv="sage")


def test_exact_matches_manual_leave_one_out(rng):
    """Exact mode must equal an explicit per-node masked recomputation."""
    graph = make_path(rng, n=5)
    encoder = _sage_encoder(4, rng)
    generator = LipschitzConstantGenerator(encoder, rng=rng, mode="exact")
    with no_grad():
        constants = generator.node_constants(Batch([graph])).data
        encoder.eval()
        reference = encoder.node_representations(
            Tensor(graph.x), graph.edge_index, 5).data
        topo = topology_distance(graph.degrees())
        for r in range(5):
            mask = np.ones(5)
            mask[r] = 0.0
            masked = encoder.node_representations(
                Tensor(graph.x), graph.edge_index, 5,
                node_weight=Tensor(mask)).data
            expected = np.linalg.norm(reference - masked) / topo[r]
            assert np.isclose(constants[r], expected, atol=1e-8), r
        encoder.train()


def test_constants_positive_and_finite(rng, triangle):
    for mode in ("exact", "approx"):
        generator = LipschitzConstantGenerator(_sage_encoder(4, rng),
                                               rng=rng, mode=mode)
        with no_grad():
            constants = generator.node_constants(Batch([triangle])).data
        assert np.isfinite(constants).all()
        assert (constants >= 0).all()


def test_batched_equals_per_graph(rng):
    graphs = [make_triangle(rng), make_path(rng, n=6)]
    generator = LipschitzConstantGenerator(_sage_encoder(4, rng), rng=rng,
                                           mode="approx")
    with no_grad():
        together = generator.node_constants(Batch(graphs)).data
        separate = np.concatenate([
            generator.node_constants(Batch([g])).data for g in graphs])
    assert np.allclose(together, separate, atol=1e-8)


def test_mode_validation(rng):
    with pytest.raises(ValueError):
        LipschitzConstantGenerator(_sage_encoder(4, rng), rng=rng,
                                   mode="magic")


def test_training_flag_restored(rng, triangle):
    generator = LipschitzConstantGenerator(_sage_encoder(4, rng), rng=rng)
    generator.encoder.train()
    generator.node_constants(Batch([triangle]))
    assert generator.encoder.training
    generator.encoder.eval()
    generator.node_constants(Batch([triangle]))
    assert not generator.encoder.training


def test_gradient_flows_to_generator_parameters(rng, triangle):
    generator = LipschitzConstantGenerator(_sage_encoder(4, rng), rng=rng,
                                           mode="approx")
    generator.node_constants(Batch([triangle])).sum().backward()
    grads = [p.grad for p in generator.encoder.parameters()]
    assert any(g is not None and np.abs(g).sum() > 0 for g in grads)


def test_exact_gradient_flows(rng, triangle):
    generator = LipschitzConstantGenerator(_sage_encoder(4, rng), rng=rng,
                                           mode="exact")
    generator.node_constants(Batch([triangle])).sum().backward()
    grads = [p.grad for p in generator.encoder.parameters()]
    assert any(g is not None and np.abs(g).sum() > 0 for g in grads)


def test_exact_and_approx_rank_correlate_on_planted_data(rng):
    """Both modes should broadly agree on which nodes matter."""
    dataset = load_dataset("MUTAG", seed=0, scale=0.15)
    encoder = _sage_encoder(dataset.num_features, rng)
    exact = LipschitzConstantGenerator(encoder, rng=rng, mode="exact")
    approx = LipschitzConstantGenerator(encoder, rng=rng, mode="approx")
    correlations = []
    with no_grad():
        for graph in dataset.graphs[:10]:
            batch = Batch([graph])
            ke = exact.node_constants(batch).data
            ka = approx.node_constants(batch).data
            correlations.append(stats.spearmanr(ke, ka).statistic)
    assert np.nanmean(correlations) > 0.3


@pytest.mark.parametrize("dataset_name,scale", [("MUTAG", 0.15),
                                                ("IMDB-B", 0.04)])
def test_identifies_planted_semantic_nodes(dataset_name, scale):
    """The headline invariant: K is higher on planted semantic nodes.

    Averaged over two encoder initialisations because single random inits
    vary; the *statistic* (not a trained model) must separate semantic from
    background nodes well above chance.
    """
    dataset = load_dataset(dataset_name, seed=0, scale=scale)
    aucs = []
    for encoder_seed in (7, 21):
        local = np.random.default_rng(encoder_seed)
        encoder = _sage_encoder(dataset.num_features, local)
        generator = LipschitzConstantGenerator(encoder, rng=local,
                                               mode="approx")
        with no_grad():
            for graph in dataset.graphs[:15]:
                constants = generator.node_constants(Batch([graph])).data
                truth = graph.meta["semantic_nodes"].astype(int)
                if 0 < truth.sum() < len(truth):
                    aucs.append(roc_auc(truth, constants))
    assert np.mean(aucs) > 0.65, f"semantic AUC too low: {np.mean(aucs):.3f}"


def test_graph_without_edges_is_handled(rng):
    from repro.graph import Graph
    graph = Graph(rng.normal(size=(3, 4)), np.zeros((2, 0)))
    generator = LipschitzConstantGenerator(_sage_encoder(4, rng), rng=rng,
                                           mode="approx")
    with no_grad():
        constants = generator.node_constants(Batch([graph])).data
    assert np.isfinite(constants).all()


# ----------------------------------------------------------------------
# Batched exact mode (PR 9): mega-batch + chunking must not change K_V
# ----------------------------------------------------------------------
def test_exact_batched_equals_per_graph(rng):
    graphs = [make_triangle(rng), make_path(rng, n=6), make_path(rng, n=3)]
    generator = LipschitzConstantGenerator(_sage_encoder(4, rng), rng=rng,
                                           mode="exact")
    with no_grad():
        together = generator.node_constants(Batch(graphs)).data
        separate = np.concatenate([
            generator.node_constants(Batch([g])).data for g in graphs])
    assert np.allclose(together, separate, atol=1e-8)


def test_exact_chunking_matches_single_megabatch(rng):
    graphs = [make_triangle(rng), make_path(rng, n=5), make_path(rng, n=4)]
    generator = LipschitzConstantGenerator(_sage_encoder(4, rng), rng=rng,
                                           mode="exact")
    with no_grad():
        one_chunk = generator.node_constants(Batch(graphs)).data
        # Budget of 1 replica-node forces one chunk per graph.
        generator._REPLICA_NODE_BUDGET = 1
        per_graph_chunks = generator.node_constants(Batch(graphs)).data
    assert np.allclose(one_chunk, per_graph_chunks, atol=1e-8)


def test_exact_gradient_flows_through_batched_path(rng):
    graphs = [make_triangle(rng), make_path(rng, n=4)]
    generator = LipschitzConstantGenerator(_sage_encoder(4, rng), rng=rng,
                                           mode="exact")
    constants = generator.node_constants(Batch(graphs))
    constants.sum().backward()
    grads = [p.grad for p in generator.encoder.parameters()]
    assert any(g is not None and np.abs(g).sum() > 0 for g in grads)
