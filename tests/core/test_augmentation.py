"""Augmentation operators: Φ semantics, Lipschitz augmentation, GraphCL ops."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GRAPHCL_AUGMENTATIONS,
    attribute_mask,
    augmentation_probability_mask,
    binarize_constants,
    drop_single_node,
    lipschitz_augment,
    phi_node_drop,
    random_edge_perturb,
    random_node_drop,
    random_subgraph,
)

from _helpers import make_path, make_triangle


def test_drop_single_node(rng):
    g = make_path(rng, n=4)
    dropped = drop_single_node(g, 1)
    assert dropped.num_nodes == 3
    assert 1 not in dropped.meta["parent_nodes"]


def test_phi_drop_count_and_meta(rng):
    g = make_path(rng, n=10)
    view = phi_node_drop(g, 3, np.ones(10), rng)
    assert view.num_nodes == 7
    assert len(view.meta["dropped_nodes"]) == 3


def test_phi_never_drops_zero_probability_nodes(rng):
    g = make_path(rng, n=10)
    probability = np.ones(10)
    probability[:5] = 0.0
    for _ in range(10):
        view = phi_node_drop(g, 3, probability, rng)
        assert all(d >= 5 for d in view.meta["dropped_nodes"])


def test_phi_caps_at_droppable_count(rng):
    g = make_path(rng, n=6)
    probability = np.zeros(6)
    probability[0] = 1.0
    view = phi_node_drop(g, 4, probability, rng)
    assert view.num_nodes == 5  # only one node was droppable


def test_phi_always_leaves_a_node(rng):
    g = make_triangle(rng)
    view = phi_node_drop(g, 99, np.ones(3), rng)
    assert view.num_nodes >= 1


def test_phi_zero_drops_is_copy(rng):
    g = make_triangle(rng)
    view = phi_node_drop(g, 0, np.ones(3), rng)
    assert view.num_nodes == 3
    assert len(view.meta["dropped_nodes"]) == 0
    # Regression: identity views must still carry the parent mapping the
    # soft-view-weighting pathway relies on.
    assert (view.meta["parent_nodes"] == np.arange(3)).all()


def test_phi_all_zero_probabilities_keeps_parent_mapping(rng):
    g = make_triangle(rng)
    view = phi_node_drop(g, 2, np.zeros(3), rng)
    assert view.num_nodes == 3
    assert (view.meta["parent_nodes"] == np.arange(3)).all()


def test_phi_validates_probability_shape(rng):
    with pytest.raises(ValueError):
        phi_node_drop(make_triangle(rng), 1, np.ones(5), rng)


def test_binarize_mean_threshold():
    c = binarize_constants(np.array([1.0, 2.0, 3.0, 10.0]))
    assert c.tolist() == [0.0, 0.0, 0.0, 1.0]


def test_binarize_uniform_constants_all_one():
    assert binarize_constants(np.ones(4)).tolist() == [1.0] * 4


def test_probability_mask_eq18():
    binary = np.array([1.0, 0.0])
    head = np.array([0.3, 0.3])
    p = augmentation_probability_mask(binary, head)
    assert p.tolist() == [1.0, 0.3]


def test_lipschitz_augment_protects_semantic_nodes(rng):
    g = make_path(rng, n=10)
    keep = np.ones(10)
    keep[5:] = 0.2  # nodes 0–4 semantic (P=1), 5–9 droppable
    for _ in range(5):
        view, complement = lipschitz_augment(g, keep, 0.7, rng)
        assert all(d >= 5 for d in view.meta["dropped_nodes"])
        # Complement drops with weight P: only P>0 nodes are candidates;
        # semantic nodes (P=1) are the most likely drops.
        assert len(complement.meta["dropped_nodes"]) == 3


def test_lipschitz_augment_drop_count_follows_rho(rng):
    g = make_path(rng, n=20)
    view, _ = lipschitz_augment(g, np.full(20, 0.5), 0.9, rng)
    assert view.num_nodes == 18  # (1-0.9)*20 = 2 dropped


@settings(max_examples=25, deadline=None)
@given(st.integers(5, 30), st.floats(0.5, 1.0), st.integers(0, 999))
def test_lipschitz_augment_size_property(n, rho, seed):
    local = np.random.default_rng(seed)
    g = make_path(local, n=n)
    keep = local.uniform(0.1, 0.9, size=n)
    view, complement = lipschitz_augment(g, keep, rho, local)
    expected = n - int(round((1 - rho) * n))
    assert view.num_nodes == expected
    assert complement.num_nodes == expected


def test_random_node_drop(rng):
    g = make_path(rng, n=10)
    view = random_node_drop(g, 0.2, rng)
    assert view.num_nodes == 8


def test_random_edge_perturb_preserves_edge_count(rng):
    g = make_path(rng, n=12)
    view = random_edge_perturb(g, 0.3, rng)
    # Same number of undirected edges (some removed, same count added).
    assert view.num_edges == g.num_edges
    assert view.num_nodes == g.num_nodes


def test_random_edge_perturb_changes_edges(rng):
    g = make_path(rng, n=20)
    view = random_edge_perturb(g, 0.5, rng)
    original = {frozenset(e) for e in g.edge_index.T.tolist()}
    new = {frozenset(e) for e in view.edge_index.T.tolist()}
    assert original != new


def test_attribute_mask_zeroes_fraction(rng):
    g = make_path(rng, n=10)
    view = attribute_mask(g, 0.3, rng)
    zero_rows = (view.x == 0).all(axis=1).sum()
    assert zero_rows >= 3
    assert view.num_edges == g.num_edges


def test_random_subgraph_size(rng):
    g = make_path(rng, n=10)
    view = random_subgraph(g, 0.3, rng)
    assert view.num_nodes == 7


def test_random_subgraph_is_connected(rng):
    import networkx as nx
    g = make_path(rng, n=15)
    view = random_subgraph(g, 0.4, rng)
    assert nx.is_connected(view.to_networkx())


def test_graphcl_pool_has_four_operations():
    assert set(GRAPHCL_AUGMENTATIONS) == {"node_drop", "edge_perturb",
                                          "attr_mask", "subgraph"}


@pytest.mark.parametrize("name", sorted(GRAPHCL_AUGMENTATIONS))
def test_graphcl_ops_produce_valid_graphs(name, rng):
    g = make_path(rng, n=12)
    view = GRAPHCL_AUGMENTATIONS[name](g, 0.2, rng)
    assert view.num_nodes >= 1
    if view.num_edges:
        assert view.edge_index.max() < view.num_nodes


@pytest.mark.parametrize("ratio", [0.0, 0.1, 0.25, 0.5, 0.9, 1.0])
def test_random_subgraph_follows_drop_ratio_convention(ratio, rng):
    """Regression: ``ratio`` is the fraction *dropped* (GraphCL convention
    shared by all four ops), so a connected graph keeps
    ``max(1, round((1-ratio)·|V|))`` nodes."""
    n = 20
    g = make_path(rng, n=n)
    view = random_subgraph(g, ratio, rng)
    assert view.num_nodes == max(1, round((1.0 - ratio) * n))


def test_binarize_empty_constants_is_empty_without_warning():
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # the old code warned on mean([])
        mask = binarize_constants(np.array([]))
    assert mask.shape == (0,)
    assert not np.isnan(mask).any()


def test_all_equal_constants_make_augmentation_identity(rng):
    """All-equal K ⇒ every node is semantic-related ⇒ the positive view
    drops nothing (nothing is droppable)."""
    g = make_path(rng, n=8)
    keep = augmentation_probability_mask(
        binarize_constants(np.full(8, 2.5)), rng.uniform(size=8))
    assert keep.tolist() == [1.0] * 8
    view, _ = lipschitz_augment(g, keep, 0.5, rng)
    assert view.num_nodes == 8
    assert len(view.meta["dropped_nodes"]) == 0
    assert (view.meta["parent_nodes"] == np.arange(8)).all()


def test_phi_nothing_droppable_when_keep_probability_one(rng):
    g = make_path(rng, n=6)
    view = phi_node_drop(g, 3, 1.0 - np.ones(6), rng)
    assert view.num_nodes == 6
    assert len(view.meta["dropped_nodes"]) == 0
