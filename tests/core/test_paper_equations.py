"""Equation-level fidelity checks against hand computations.

Each test reproduces one numbered equation of the paper with explicit numpy
arithmetic and asserts the library computes the same value — catching silent
drift between the implementation and the paper's definitions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SGCLConfig, SGCLModel, semantic_info_nce
from repro.core.losses import complement_loss
from repro.data import load_dataset
from repro.graph import Batch
from repro.tensor import Tensor


def _unit_rows(matrix: np.ndarray) -> np.ndarray:
    return matrix / np.linalg.norm(matrix, axis=1, keepdims=True)


def test_eq24_semantic_loss_matches_manual(rng):
    """Eq. 24 with cosine similarities, positives excluded from denominator."""
    tau = 0.3
    anchors = rng.normal(size=(5, 7))
    views = rng.normal(size=(5, 7))
    sims = _unit_rows(anchors) @ _unit_rows(views).T / tau
    expected = 0.0
    for i in range(5):
        negatives = np.concatenate([sims[i, :i], sims[i, i + 1:]])
        expected += np.log(np.exp(negatives).sum()) - sims[i, i]
    expected /= 5
    loss = semantic_info_nce(Tensor(anchors), Tensor(views), tau)
    assert np.isclose(loss.item(), expected, atol=1e-8)


def test_eq25_complement_loss_matches_manual(rng):
    """Eq. 25: positive in the denominator plus all complement samples."""
    tau = 0.25
    anchors = rng.normal(size=(4, 6))
    views = rng.normal(size=(4, 6))
    complements = rng.normal(size=(4, 6))
    a, v, c = map(_unit_rows, (anchors, views, complements))
    expected = 0.0
    for i in range(4):
        positive = a[i] @ v[i] / tau
        negatives = a[i] @ c.T / tau
        expected += -np.log(np.exp(positive)
                            / (np.exp(positive) + np.exp(negatives).sum()))
    expected /= 4
    loss = complement_loss(Tensor(anchors), Tensor(views),
                           Tensor(complements), tau)
    assert np.isclose(loss.item(), expected, atol=1e-8)


@pytest.fixture(scope="module")
def model_and_batch():
    dataset = load_dataset("MUTAG", seed=0, scale=0.15)
    model = SGCLModel(dataset.num_features, SGCLConfig(),
                      rng=np.random.default_rng(0))
    return model, Batch(dataset.graphs[:4])


def test_eq16_17_binarisation_uses_per_graph_mean(model_and_batch):
    model, batch = model_and_batch
    scores = model.semantic_scores(batch)
    for graph_id in range(batch.num_graphs):
        nodes = batch.nodes_of(graph_id)
        constants = scores.constants.data[nodes]
        expected = (constants >= constants.mean()).astype(float)
        assert np.allclose(scores.binary[nodes], expected)


def test_eq21_anchor_weighting_matches_manual(model_and_batch):
    """Eq. 21: pooled anchor = Proj(Σ_i f_k(H,A)_i · K̃_i) with per-graph
    mean-normalised constants."""
    model, batch = model_and_batch
    scores = model.semantic_scores(batch)
    z = model.anchor_embeddings(batch, scores).data
    model.f_k.eval()
    nodes = model.f_k(batch).data
    constants = scores.constants.data
    pooled = np.zeros((batch.num_graphs, nodes.shape[1]))
    for graph_id in range(batch.num_graphs):
        idx = batch.nodes_of(graph_id)
        weights = constants[idx] / constants[idx].mean()
        pooled[graph_id] = (nodes[idx] * weights[:, None]).sum(axis=0)
    model.projection.eval()
    expected = model.projection(Tensor(pooled)).data
    model.f_k.train()
    model.projection.train()
    # Recompute z in eval mode for an apples-to-apples comparison.
    model.f_k.eval()
    model.projection.eval()
    z_eval = model.anchor_embeddings(batch, scores).data
    model.f_k.train()
    model.projection.train()
    assert np.allclose(z_eval, expected, atol=1e-8)


def test_eq11_constants_are_ratio_of_distances(model_and_batch):
    """Eq. 11 in approx mode still divides by the Eq. 5 topology distance."""
    from repro.core.lipschitz import topology_distance
    model, batch = model_and_batch
    constants = model.semantic_scores(batch).constants.data
    degrees = np.bincount(batch.edge_index[0], minlength=batch.num_nodes)
    topo = topology_distance(degrees.astype(float))
    # Reconstruct D_R = K · D_T; it must be positive and finite everywhere.
    representation_distance = constants * topo
    assert (representation_distance > 0).all()
    assert np.isfinite(representation_distance).all()
