"""Contrastive losses: Eq. 24–26 semantics and the generator likelihood."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import complement_loss, semantic_info_nce, weight_regularizer
from repro.core.losses import graph_likelihood_loss, sample_negative_pairs
from repro.nn import Linear, Parameter
from repro.tensor import Tensor

from _helpers import make_triangle


def _orthogonal_embeddings(n, dim=8):
    return Tensor(np.eye(n, dim))


def test_info_nce_prefers_aligned_pairs(rng):
    anchors = _orthogonal_embeddings(4)
    aligned = semantic_info_nce(anchors, anchors, tau=0.2)
    shuffled = Tensor(anchors.data[[1, 2, 3, 0]])
    misaligned = semantic_info_nce(anchors, shuffled, tau=0.2)
    assert aligned.item() < misaligned.item()


def test_info_nce_excludes_positive_from_denominator():
    """With orthogonal anchors/views, denominator sums only the n−1
    off-diagonal terms: loss = log((n−1)·e^0) − 1/τ."""
    n, tau = 4, 0.5
    anchors = _orthogonal_embeddings(n)
    loss = semantic_info_nce(anchors, anchors, tau)
    expected = np.log(n - 1) - 1.0 / tau
    assert np.isclose(loss.item(), expected, atol=1e-6)


def test_info_nce_requires_two_graphs(rng):
    single = Tensor(rng.normal(size=(1, 4)))
    with pytest.raises(ValueError):
        semantic_info_nce(single, single, 0.2)


def test_info_nce_gradient_pulls_positives_together(rng):
    anchors = Tensor(rng.normal(size=(4, 6)), requires_grad=True)
    views = Tensor(rng.normal(size=(4, 6)))
    loss = semantic_info_nce(anchors, views, 0.2)
    loss.backward()
    assert anchors.grad is not None
    assert np.isfinite(anchors.grad).all()


def test_info_nce_temperature_scales_hardness(rng):
    anchors = Tensor(rng.normal(size=(6, 8)))
    views = Tensor(anchors.data + rng.normal(0, 0.01, size=(6, 8)))
    sharp = semantic_info_nce(anchors, views, 0.1)
    smooth = semantic_info_nce(anchors, views, 1.0)
    # With near-perfect alignment, a smaller τ yields a lower loss.
    assert sharp.item() < smooth.item()


def test_complement_loss_penalises_close_complements(rng):
    anchors = _orthogonal_embeddings(3)
    views = anchors
    far = Tensor(-np.eye(3, 8))
    near = Tensor(anchors.data + 0.01)
    loss_far = complement_loss(anchors, views, far, 0.2)
    loss_near = complement_loss(anchors, views, near, 0.2)
    assert loss_far.item() < loss_near.item()


def test_complement_loss_nonnegative(rng):
    anchors = Tensor(rng.normal(size=(4, 8)))
    views = Tensor(rng.normal(size=(4, 8)))
    complements = Tensor(rng.normal(size=(4, 8)))
    assert complement_loss(anchors, views, complements, 0.2).item() > 0


def test_weight_regularizer_is_parameter_l2(rng):
    layer = Linear(3, 2, rng=rng)
    expected = np.sqrt(sum((p.data ** 2).sum() for p in layer.parameters()))
    assert np.isclose(weight_regularizer(layer).item(), expected, atol=1e-6)


def test_weight_regularizer_gradient(rng):
    layer = Linear(3, 2, rng=rng)
    weight_regularizer(layer).backward()
    assert layer.weight.grad is not None


def test_graph_likelihood_loss_decreases_with_training(rng, triangle):
    reps = Tensor(rng.normal(size=(3, 8)))
    w = Parameter(rng.normal(0, 0.1, size=8))
    from repro.nn import Adam
    optimizer = Adam([w], lr=0.05)
    degrees = triangle.degrees()
    first = None
    for step in range(50):
        loss = graph_likelihood_loss(reps, triangle.edge_index, degrees, w,
                                     np.random.default_rng(step))
        if first is None:
            first = loss.item()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    assert loss.item() < first


def test_graph_likelihood_edge_cases(rng):
    w = Tensor(rng.normal(size=4))
    empty = graph_likelihood_loss(Tensor(rng.normal(size=(3, 4))),
                                  np.zeros((2, 0), dtype=np.int64),
                                  np.zeros(3), w, rng)
    assert empty.item() == 0.0


def _path_edge_index(n):
    pairs = np.array([(i, i + 1) for i in range(n - 1)])
    return np.concatenate([pairs, pairs[:, ::-1]], axis=0).T


def test_sample_negative_pairs_rejects_self_loops_and_edges():
    """Regression: naive uniform sampling labelled real edges (and
    self-pairs) as negatives; the sampler must return true non-edges."""
    n = 10
    edge_index = _path_edge_index(n)
    observed = set(map(tuple, edge_index.T.tolist()))
    for seed in range(20):
        src, dst = sample_negative_pairs(
            n, edge_index.shape[1], edge_index,
            np.random.default_rng(seed))
        assert len(src) == edge_index.shape[1]  # sparse graph: no shortage
        assert (src != dst).all()
        assert not any((int(u), int(v)) in observed
                       for u, v in zip(src, dst))


def test_sample_negative_pairs_is_deterministic():
    edge_index = _path_edge_index(8)
    draws = [sample_negative_pairs(8, 14, edge_index,
                                   np.random.default_rng(99))
             for _ in range(2)]
    assert (draws[0][0] == draws[1][0]).all()
    assert (draws[0][1] == draws[1][1]).all()


def test_sample_negative_pairs_complete_graph_yields_nothing(rng, triangle):
    src, dst = sample_negative_pairs(3, 6, triangle.edge_index, rng)
    assert len(src) == 0 and len(dst) == 0


def test_graph_likelihood_loss_finite_on_complete_graph(rng, triangle):
    """Complete graphs have no non-edges; the loss falls back to fitting
    the positives alone instead of mislabelling edges as negatives."""
    loss = graph_likelihood_loss(Tensor(rng.normal(size=(3, 8))),
                                 triangle.edge_index, triangle.degrees(),
                                 Parameter(rng.normal(size=8)), rng)
    assert np.isfinite(loss.item())


def test_complement_loss_with_no_complement_samples(rng):
    """Satellite: 0-row Ĝ^c batch must give L_c = 0 (denominator is just
    the positive term) with a usable gradient, not a crash."""
    anchors = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
    views = Tensor(rng.normal(size=(4, 8)))
    loss = complement_loss(anchors, views, Tensor(np.zeros((0, 8))), 0.2)
    assert loss.item() == pytest.approx(0.0, abs=1e-9)
    loss.backward()
    assert anchors.grad is not None
    assert np.isfinite(anchors.grad).all()
