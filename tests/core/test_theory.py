"""Empirical verification of Theorem 1 and its supporting lemmas."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import theory
from repro.data import load_dataset
from repro.gnn import GNNEncoder


@pytest.fixture(scope="module")
def setup():
    dataset = load_dataset("MUTAG", seed=0, scale=0.1)
    rng = np.random.default_rng(0)
    encoder = GNNEncoder(dataset.num_features, 16, 2, rng=rng, conv="sage")
    graphs = dataset.graphs[:8]
    kept = []
    drop_rng = np.random.default_rng(1)
    for graph in graphs:
        n = graph.num_nodes
        keep = np.sort(drop_rng.choice(n, size=n - max(1, n // 10),
                                       replace=False))
        kept.append(keep)
    return encoder, graphs, kept


def test_k_rho_is_bounded_by_one():
    """Lemma 2: ρ(x) = log(e^x+1) has derivative in (0, 1)."""
    x = np.linspace(-20, 20, 1001)
    derivative = np.exp(x) / (np.exp(x) + 1.0)
    assert derivative.max() < 1.0
    assert theory.K_RHO == 1.0


def test_topology_distance_counts_removed_edges(setup):
    _, graphs, kept = setup
    graph, keep = graphs[0], kept[0]
    mask = np.zeros(graph.num_nodes, dtype=bool)
    mask[keep] = True
    src, dst = graph.edge_index
    removed = int((~(mask[src] & mask[dst])).sum())
    assert theory.topology_distance_of_view(graph, keep) == \
        pytest.approx(np.sqrt(removed))


def test_representation_distance_zero_for_identity_view(setup):
    encoder, graphs, _ = setup
    graph = graphs[0]
    full = np.arange(graph.num_nodes)
    assert theory.representation_distance(encoder, graph, full) == \
        pytest.approx(0.0, abs=1e-9)


def test_lipschitz_constant_of_set_is_supremum(setup):
    encoder, graphs, kept = setup
    k_g, eps_a = theory.lipschitz_constant_of_set(encoder, graphs, kept)
    assert k_g > 0 and eps_a > 0
    for graph, keep in zip(graphs, kept):
        d_t = theory.topology_distance_of_view(graph, keep)
        if d_t == 0:
            continue
        d_r = theory.representation_distance(encoder, graph, keep)
        assert d_r / d_t <= k_g + 1e-9
        assert d_t <= eps_a + 1e-9


def test_graph_log_probability_is_nonpositive(setup, rng):
    encoder, graphs, _ = setup
    graph = graphs[0]
    reps = rng.normal(size=(graph.num_nodes, 4))
    w = rng.normal(size=4)
    # log δ(q) ≤ 0 always, so the sum over edges is ≤ 0.
    assert theory.graph_log_probability(reps, graph.edge_index, w) <= 0


def test_graph_log_probability_empty_graph(rng):
    assert theory.graph_log_probability(
        rng.normal(size=(3, 4)), np.zeros((2, 0), dtype=np.int64),
        rng.normal(size=4)) == 0.0


def test_theorem1_bound_holds(setup, rng):
    """Theorem 1: |ΔCE| ≤ K_G · N · (1+K_ρ) · ε‖A‖_∞ · ‖W‖.

    The inequality is checked empirically across several random edge
    weights — the exact setting of the paper's proof (Eq. 2–3 CE).
    """
    encoder, graphs, kept = setup
    for trial in range(3):
        w = np.random.default_rng(trial).normal(0, 0.2, size=encoder.out_dim)
        report = theory.theorem1_bound(encoder, graphs, kept, w)
        assert report["ce_gap"] <= report["bound"] * (1.0 + 1e-9), report


def test_theorem1_bound_reports_components(setup, rng):
    encoder, graphs, kept = setup
    w = rng.normal(0, 0.2, size=encoder.out_dim)
    report = theory.theorem1_bound(encoder, graphs, kept, w)
    assert set(report) == {"ce_gap", "bound", "K_G", "eps_A_inf", "W_norm",
                           "N", "K_rho"}
    assert report["N"] == len(graphs)
    assert np.isclose(report["W_norm"], np.linalg.norm(w))
