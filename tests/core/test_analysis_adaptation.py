"""Analysis diagnostics and generator domain adaptation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SGCLConfig, SGCLModel, adapt_generator
from repro.core.analysis import (
    alignment,
    alignment_uniformity,
    semantic_identification_auc,
    uniformity,
    view_label_consistency,
)
from repro.data import load_dataset
from repro.gnn import GNNEncoder
from repro.graph import Batch


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("MUTAG", seed=0, scale=0.15)


def test_semantic_identification_auc_perfect_scores(dataset):
    auc = semantic_identification_auc(
        lambda g: g.meta["semantic_nodes"].astype(float), dataset.graphs,
        max_graphs=10)
    assert auc == 1.0


def test_semantic_identification_auc_inverted_scores(dataset):
    auc = semantic_identification_auc(
        lambda g: -g.meta["semantic_nodes"].astype(float), dataset.graphs,
        max_graphs=10)
    assert auc == 0.0


def test_semantic_identification_validates_shape(dataset):
    with pytest.raises(ValueError):
        semantic_identification_auc(lambda g: np.zeros(2), dataset.graphs,
                                    max_graphs=1)


def test_alignment_zero_for_identical(rng):
    z = rng.normal(size=(8, 4))
    assert alignment(z, z) == pytest.approx(0.0)


def test_alignment_positive_for_perturbed(rng):
    z = rng.normal(size=(8, 4))
    assert alignment(z, z + rng.normal(0, 0.5, size=(8, 4))) > 0


def test_alignment_shape_mismatch(rng):
    with pytest.raises(ValueError):
        alignment(rng.normal(size=(4, 4)), rng.normal(size=(5, 4)))


def test_uniformity_prefers_spread(rng):
    collapsed = np.ones((16, 4)) + rng.normal(0, 0.01, size=(16, 4))
    spread = rng.normal(size=(16, 4))
    assert uniformity(spread) < uniformity(collapsed)


def test_uniformity_needs_two_points(rng):
    with pytest.raises(ValueError):
        uniformity(rng.normal(size=(1, 4)))


def test_alignment_uniformity_keys(rng):
    z = rng.normal(size=(6, 4))
    report = alignment_uniformity(z, z)
    assert set(report) == {"alignment", "uniformity"}


def test_view_label_consistency_identity_views(dataset, rng):
    encoder = GNNEncoder(dataset.num_features, 16, 2, rng=rng)
    graphs = dataset.graphs[:20]
    labels = np.array([g.y for g in graphs])
    score = view_label_consistency(encoder, graphs, graphs, labels)
    assert score > 0.6  # probe fits anchors, views are the same graphs


def test_view_label_consistency_validates_lengths(dataset, rng):
    encoder = GNNEncoder(dataset.num_features, 16, 2, rng=rng)
    with pytest.raises(ValueError):
        view_label_consistency(encoder, dataset.graphs[:3],
                               dataset.graphs[:2], np.zeros(3))


# ----------------------------------------------------------------------
# Generator adaptation (paper's future-work direction)
# ----------------------------------------------------------------------
def test_adapt_generator_only_touches_fq(dataset, rng):
    model = SGCLModel(dataset.num_features, SGCLConfig(), rng=rng)
    fk_before = model.f_k.state_dict()
    fq_before = model.generator.encoder.state_dict()
    history = adapt_generator(model, dataset.graphs, epochs=2, seed=0)
    assert len(history) == 2
    fk_after = model.f_k.state_dict()
    assert all(np.allclose(fk_before[k], fk_after[k]) for k in fk_before)
    fq_after = model.generator.encoder.state_dict()
    assert any(not np.allclose(fq_before[k], fq_after[k])
               for k in fq_before)


def test_adapt_generator_reduces_likelihood_loss(dataset, rng):
    model = SGCLModel(dataset.num_features, SGCLConfig(), rng=rng)
    history = adapt_generator(model, dataset.graphs, epochs=5, seed=0)
    assert history[-1] < history[0]
