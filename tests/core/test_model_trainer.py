"""SGCL model + trainer: configuration, training dynamics, ablations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SGCLConfig, SGCLModel, SGCLTrainer
from repro.data import load_dataset
from repro.graph import Batch


@pytest.fixture(scope="module")
def mutag():
    return load_dataset("MUTAG", seed=0, scale=0.2)


def _batch(dataset, n=8):
    return Batch(dataset.graphs[:n])


def test_config_validation():
    with pytest.raises(ValueError):
        SGCLConfig(rho=0.0)
    with pytest.raises(ValueError):
        SGCLConfig(tau=2.0)
    with pytest.raises(ValueError):
        SGCLConfig(lipschitz_mode="fast")
    with pytest.raises(ValueError):
        SGCLConfig(augmentation="none")


def test_config_with_overrides():
    config = SGCLConfig().with_overrides(rho=0.7, tau=0.3)
    assert config.rho == 0.7 and config.tau == 0.3
    assert SGCLConfig().rho == 0.9  # original untouched


def test_semantic_scores_structure(mutag, rng):
    model = SGCLModel(mutag.num_features, SGCLConfig(), rng=rng)
    batch = _batch(mutag)
    scores = model.semantic_scores(batch)
    n = batch.num_nodes
    assert scores.constants.shape == (n,)
    assert scores.head_scores.shape == (n,)
    assert set(np.unique(scores.binary)) <= {0.0, 1.0}
    # Eq. 18: P=1 exactly where C=1; elsewhere P equals the head score.
    semantic = scores.binary == 1.0
    assert np.allclose(scores.keep_probability[semantic], 1.0)
    assert np.allclose(scores.keep_probability[~semantic],
                       scores.head_scores.data[~semantic])


def test_binarisation_is_per_graph(mutag, rng):
    """Each graph must contain both semantic and non-semantic nodes."""
    model = SGCLModel(mutag.num_features, SGCLConfig(), rng=rng)
    batch = _batch(mutag)
    scores = model.semantic_scores(batch)
    for graph_id in range(batch.num_graphs):
        binary = scores.binary[batch.nodes_of(graph_id)]
        assert binary.max() == 1.0
        assert binary.min() == 0.0


def test_generate_views_counts(mutag, rng):
    config = SGCLConfig(rho=0.8)
    model = SGCLModel(mutag.num_features, config, rng=rng)
    batch = _batch(mutag)
    scores = model.semantic_scores(batch)
    views, complements = model.generate_views(batch, scores,
                                              np.random.default_rng(0))
    assert len(views) == len(complements) == batch.num_graphs
    for graph, view in zip(batch.graphs, views):
        assert view.num_nodes == graph.num_nodes - int(
            round(0.2 * graph.num_nodes))


def test_views_never_drop_semantic_nodes(mutag, rng):
    model = SGCLModel(mutag.num_features, SGCLConfig(rho=0.6), rng=rng)
    batch = _batch(mutag)
    scores = model.semantic_scores(batch)
    views, _ = model.generate_views(batch, scores, np.random.default_rng(0))
    for graph_id, view in enumerate(views):
        binary = scores.binary[batch.nodes_of(graph_id)]
        dropped = view.meta["dropped_nodes"]
        assert all(binary[d] == 0.0 for d in dropped)


def test_loss_components_and_finiteness(mutag, rng):
    model = SGCLModel(mutag.num_features, SGCLConfig(), rng=rng)
    loss, stats = model.loss(_batch(mutag), np.random.default_rng(0))
    assert np.isfinite(loss.item())
    assert {"loss", "loss_s", "loss_g", "loss_c", "theta_w"} <= set(stats)


def test_ablation_flags_remove_components(mutag, rng):
    config = SGCLConfig(use_complement_loss=False, use_weight_reg=False,
                        lambda_g=0.0)
    model = SGCLModel(mutag.num_features, config, rng=rng)
    _, stats = model.loss(_batch(mutag), np.random.default_rng(0))
    assert "loss_c" not in stats
    assert "theta_w" not in stats
    assert "loss_g" not in stats


def test_detach_semantics_blocks_contrastive_gradient_to_fq(mutag, rng):
    # Θ_W (Eq. 26) spans all parameters including f_q's, so disable it to
    # isolate the contrastive pathway.
    config = SGCLConfig(lambda_g=0.0, detach_semantics=True,
                        use_weight_reg=False)
    model = SGCLModel(mutag.num_features, config, rng=rng)
    loss, _ = model.loss(_batch(mutag), np.random.default_rng(0))
    loss.backward()
    fq_grads = [p.grad for p in model.generator.encoder.parameters()]
    assert all(g is None or np.abs(g).sum() == 0 for g in fq_grads)
    # The probability head still learns through the soft-view pathway.
    assert model.prob_weight.grad is not None


def test_without_detach_gradient_reaches_fq(mutag, rng):
    config = SGCLConfig(lambda_g=0.0, detach_semantics=False,
                        use_weight_reg=False)
    model = SGCLModel(mutag.num_features, config, rng=rng)
    loss, _ = model.loss(_batch(mutag), np.random.default_rng(0))
    loss.backward()
    fq_grads = [p.grad for p in model.generator.encoder.parameters()]
    assert any(g is not None and np.abs(g).sum() > 0 for g in fq_grads)


def test_fq_and_fk_do_not_share_parameters(mutag, rng):
    model = SGCLModel(mutag.num_features, SGCLConfig(conv="sage",
                                                     generator_conv="sage"),
                      rng=rng)
    fq_ids = {id(p) for p in model.generator.encoder.parameters()}
    fk_ids = {id(p) for p in model.f_k.parameters()}
    assert not fq_ids & fk_ids


def test_trainer_loss_decreases(mutag):
    trainer = SGCLTrainer(mutag.num_features,
                          SGCLConfig(epochs=4, batch_size=16, seed=0))
    history = trainer.pretrain(mutag.graphs)
    assert len(history) == 4
    assert history[-1]["loss_s"] < history[0]["loss_s"]


def test_trainer_deterministic_given_seed(mutag):
    def run():
        trainer = SGCLTrainer(mutag.num_features,
                              SGCLConfig(epochs=1, batch_size=16, seed=5))
        trainer.pretrain(mutag.graphs)
        return trainer.encoder.state_dict()

    a, b = run(), run()
    assert all(np.allclose(a[k], b[k]) for k in a)


def test_trainer_encoder_is_fk(mutag):
    trainer = SGCLTrainer(mutag.num_features, SGCLConfig(seed=0))
    assert trainer.encoder is trainer.model.f_k


@pytest.mark.parametrize("augmentation", ["random", "learnable"])
def test_ablation_augmentations_train(mutag, augmentation):
    trainer = SGCLTrainer(
        mutag.num_features,
        SGCLConfig(epochs=1, batch_size=16, seed=0,
                   augmentation=augmentation))
    history = trainer.pretrain(mutag.graphs)
    assert np.isfinite(history[0]["loss"])


def test_exact_mode_trains(mutag):
    trainer = SGCLTrainer(
        mutag.num_features,
        SGCLConfig(epochs=1, batch_size=8, seed=0, lipschitz_mode="exact"))
    history = trainer.pretrain(mutag.graphs[:16])
    assert np.isfinite(history[0]["loss"])


def test_precompute_lipschitz_uses_default_cache(mutag, tmp_path):
    """precompute_lipschitz serves K_V through PrecomputeCache by default
    (config.precompute_cache_dir), without changing numbers (PR 9)."""
    from repro.runtime import PrecomputeCache

    cache_dir = tmp_path / "kv-cache"
    config = SGCLConfig(epochs=1, batch_size=16, seed=0,
                        precompute_cache_dir=str(cache_dir))
    trainer = SGCLTrainer(mutag.num_features, config)
    graphs = mutag.graphs[:6]
    first = trainer.precompute_lipschitz(graphs)
    assert cache_dir.exists()  # default cache was created and populated
    second = trainer.precompute_lipschitz(graphs)
    for a, b in zip(first, second):
        assert np.array_equal(a, b)
    stats = PrecomputeCache(cache_dir).stats()
    assert stats["entries"] == len(graphs)
    # Explicit opt-out computes without touching any cache directory.
    off_config = SGCLConfig(epochs=1, batch_size=16, seed=0,
                            precompute_cache_dir=None)
    off_trainer = SGCLTrainer(mutag.num_features, off_config)
    uncached = off_trainer.precompute_lipschitz(graphs, cache=False)
    assert len(uncached) == len(graphs)


def test_precompute_cache_false_disables_default(mutag, tmp_path):
    cache_dir = tmp_path / "never-created"
    config = SGCLConfig(epochs=1, batch_size=16, seed=0,
                        precompute_cache_dir=str(cache_dir))
    trainer = SGCLTrainer(mutag.num_features, config)
    trainer.precompute_lipschitz(mutag.graphs[:3], cache=False)
    assert not cache_dir.exists()
