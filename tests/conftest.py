"""Shared test fixtures; puts tests/ on sys.path so `_helpers` imports work."""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

sys.path.insert(0, os.path.dirname(__file__))

from _helpers import make_path, make_triangle  # noqa: E402

from repro.graph import Graph  # noqa: E402


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def triangle(rng) -> Graph:
    return make_triangle(rng)


@pytest.fixture
def path4(rng) -> Graph:
    return make_path(rng)
