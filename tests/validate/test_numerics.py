"""NumericsGuard behaviour: unit checks, trainer wiring, fault injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GAE
from repro.core import SGCLConfig, SGCLTrainer
from repro.obs import JSONLSink, Observer, load_events, render_report
from repro.validate import NumericsError, NumericsGuard, global_grad_norm
from repro.validate.faults import inject_nan_loss

from _helpers import make_path, make_triangle


def _corpus(rng, n=8):
    return [make_triangle(rng) if i % 2 else make_path(rng, n=4 + i % 3)
            for i in range(n)]


class _FakeParam:
    def __init__(self, grad):
        self.grad = np.asarray(grad, dtype=np.float64)


# ----------------------------------------------------------------------
# Guard unit behaviour
# ----------------------------------------------------------------------
def test_finite_stats_pass_without_side_effects():
    observer = Observer()
    guard = NumericsGuard(policy="raise", observer=observer)
    assert guard.check_loss({"loss": 1.0, "loss_s": 0.3})
    assert guard.flagged_batches == 0
    assert observer.metrics.count("numerics/nonfinite_batches") == 0


@pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
def test_policy_raise_aborts_on_nonfinite_loss(bad):
    guard = NumericsGuard(policy="raise")
    with pytest.raises(NumericsError, match="non-finite loss"):
        guard.check_loss({"loss": bad})


def test_policy_skip_counts_and_blocks():
    observer = Observer()
    guard = NumericsGuard(policy="skip", observer=observer)
    assert guard.check_loss({"loss": float("nan"), "loss_s": 1.0}) is False
    assert guard.skipped_batches == 1
    assert observer.metrics.count("numerics/skipped_batches") == 1
    assert observer.metrics.count("numerics/nonfinite_batches") == 1


def test_policy_warn_proceeds_with_warning():
    guard = NumericsGuard(policy="warn")
    with pytest.warns(RuntimeWarning, match="non-finite loss"):
        proceed = guard.check_loss({"loss": float("nan")})
    assert proceed is True
    assert guard.skipped_batches == 0


def test_unknown_policy_and_bad_clip_rejected():
    with pytest.raises(ValueError, match="unknown numerics policy"):
        NumericsGuard(policy="panic")
    with pytest.raises(ValueError, match="grad_clip must be positive"):
        NumericsGuard(grad_clip=0.0)


def test_nonfinite_grad_norm_is_flagged():
    guard = NumericsGuard(policy="skip")
    assert guard.guard_gradients([], float("nan")) is False
    assert guard.skipped_batches == 1


def test_grad_clip_rescales_to_the_cap():
    params = [_FakeParam([3.0, 0.0]), _FakeParam([0.0, 4.0])]
    norm = global_grad_norm(params)
    assert norm == pytest.approx(5.0)
    guard = NumericsGuard(grad_clip=1.0)
    assert guard.guard_gradients(params, norm)
    assert guard.clipped_batches == 1
    assert global_grad_norm(params) == pytest.approx(1.0)
    # Below the cap nothing moves.
    assert guard.guard_gradients(params, global_grad_norm(params))
    assert guard.clipped_batches == 1


def test_global_grad_norm_without_grads_is_zero():
    empty = _FakeParam([])
    empty.grad = None
    assert global_grad_norm([empty]) == 0.0
    assert global_grad_norm([]) == 0.0


# ----------------------------------------------------------------------
# SGCLTrainer wiring (fault-injection acceptance criterion)
# ----------------------------------------------------------------------
def _config(**overrides):
    defaults = dict(epochs=1, batch_size=4, hidden_dim=8, num_layers=2,
                    seed=7)
    defaults.update(overrides)
    return SGCLConfig(**defaults)


def test_injected_nan_loss_is_skipped_not_fatal(rng):
    graphs = _corpus(rng)
    observer = Observer()
    trainer = SGCLTrainer(4, _config(numerics_policy="skip"))
    with inject_nan_loss(trainer.model, batches={0}):
        history = trainer.pretrain(graphs, observer=observer)
    row = history[-1]
    assert row["skipped_batches"] == 1
    assert row["num_batches"] == 1
    assert np.isfinite(row["loss"])
    assert observer.metrics.count("numerics/skipped_batches") == 1


def test_injected_nan_loss_raises_under_strict_policy(rng):
    trainer = SGCLTrainer(4, _config(numerics_policy="raise"))
    with inject_nan_loss(trainer.model, batches={0}):
        with pytest.raises(NumericsError):
            trainer.pretrain(_corpus(rng))


def test_injection_restores_the_real_loss_method(rng):
    trainer = SGCLTrainer(4, _config())
    bound = trainer.model.loss
    with inject_nan_loss(trainer.model, batches={0}):
        assert trainer.model.loss is not bound
    assert "loss" not in vars(trainer.model)


def test_guard_is_neutral_without_faults(rng):
    """Same seed, any policy, grad-norm telemetry on/off → identical runs."""
    graphs = _corpus(rng)
    histories = []
    for policy in ("raise", "skip", "warn"):
        trainer = SGCLTrainer(4, _config(numerics_policy=policy, epochs=2))
        histories.append(trainer.pretrain(graphs))
    reference = [{k: v for k, v in row.items() if k != "epoch_seconds"}
                 for row in histories[0]]
    for history in histories[1:]:
        stripped = [{k: v for k, v in row.items() if k != "epoch_seconds"}
                    for row in history]
        assert stripped == reference
    assert all(row["skipped_batches"] == 0 for row in reference)


def test_grad_clip_fires_in_training(rng):
    observer = Observer()
    trainer = SGCLTrainer(4, _config(grad_clip=1e-6))
    trainer.pretrain(_corpus(rng), observer=observer)
    assert observer.metrics.count("numerics/clipped_batches") > 0


# ----------------------------------------------------------------------
# Baseline loop wiring
# ----------------------------------------------------------------------
def test_baseline_guard_skips_injected_nan(rng):
    graphs = _corpus(rng)
    observer = Observer()
    model = GAE(4, hidden_dim=8, num_layers=2, batch_size=4, seed=3,
                numerics_policy="skip")
    with inject_nan_loss(model, batches={0}, attr="step"):
        history = model.pretrain(graphs, epochs=1, observer=observer)
    assert np.isfinite(history[-1])
    assert observer.metrics.count("numerics/skipped_batches") == 1


def test_baseline_raise_policy(rng):
    model = GAE(4, hidden_dim=8, num_layers=2, batch_size=4, seed=3,
                numerics_policy="raise")
    with inject_nan_loss(model, batches={0}, attr="step"):
        with pytest.raises(NumericsError):
            model.pretrain(_corpus(rng), epochs=1)


# ----------------------------------------------------------------------
# Empty epochs stay well-formed (satellite 4)
# ----------------------------------------------------------------------
def test_empty_epoch_yields_well_formed_row(rng):
    trainer = SGCLTrainer(4, _config(batch_size=1))
    with pytest.warns(RuntimeWarning, match="no batch was trained"):
        history = trainer.pretrain(_corpus(rng, n=3))
    row = history[0]
    assert np.isnan(row["loss"])
    assert row["num_batches"] == 0
    assert row["skipped_batches"] == 0
    assert row["epoch"] == 1
    assert "epoch_seconds" in row


def test_empty_epoch_never_wins_best_checkpoint(rng, tmp_path):
    trainer = SGCLTrainer(4, _config(batch_size=1))
    with pytest.warns(RuntimeWarning):
        trainer.pretrain(_corpus(rng, n=3), checkpoint_dir=tmp_path)
    assert not (tmp_path / "best.npz").exists()


def test_empty_epoch_report_renders(rng, tmp_path):
    sink = JSONLSink(tmp_path / "events.jsonl")
    observer = Observer([sink])
    trainer = SGCLTrainer(4, _config(batch_size=1))
    with observer.activate(), pytest.warns(RuntimeWarning):
        trainer.pretrain(_corpus(rng, n=3))
    sink.close()
    events = load_events(tmp_path / "events.jsonl")
    text = render_report(events)
    assert "nan" in text.lower()


def test_baseline_empty_epoch_is_nan_not_zero(rng):
    model = GAE(4, hidden_dim=8, num_layers=2, batch_size=1, seed=3)
    model.needs_pairs = True  # force the <2-graph skip path
    with pytest.warns(RuntimeWarning, match="no batch was trained"):
        history = model.pretrain(_corpus(rng, n=3), epochs=1)
    assert np.isnan(history[0])


def test_history_with_nan_row_round_trips_checkpoints(rng, tmp_path):
    trainer = SGCLTrainer(4, _config(batch_size=1))
    with pytest.warns(RuntimeWarning):
        trainer.pretrain(_corpus(rng, n=3))
    path = trainer.save_checkpoint(tmp_path / "trainer.npz")
    restored = SGCLTrainer.from_checkpoint(path)
    assert restored._best_loss == float("inf")
    assert np.isnan(restored.history[0]["loss"])
