"""Structural invariant checks under each policy, driven by fault injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import GraphDataset, load_dataset
from repro.graph import Graph
from repro.obs import Observer
from repro.validate import (
    DatasetValidator,
    GraphValidator,
    ValidationError,
)
from repro.validate.faults import (
    break_edge_symmetry,
    corrupt_features,
    corrupt_label,
    point_edge_out_of_bounds,
)

from _helpers import make_path, make_triangle


@pytest.fixture
def graphs(rng):
    return [make_triangle(rng), make_path(rng, n=5), make_path(rng, n=7)]


# ----------------------------------------------------------------------
# GraphValidator: one invariant at a time
# ----------------------------------------------------------------------
def test_valid_graph_has_no_issues(rng):
    validator = GraphValidator(num_classes=2)
    assert validator.issues(make_triangle(rng)) == []
    assert validator.issues(make_path(rng, n=6)) == []


def test_nan_feature_is_caught(rng):
    bad = corrupt_features(make_triangle(rng), node=1, value=float("nan"))
    issues = GraphValidator().issues(bad)
    assert [issue.check for issue in issues] == ["finite_features"]


def test_inf_feature_is_caught(rng):
    bad = corrupt_features(make_triangle(rng), value=float("inf"))
    assert [i.check for i in GraphValidator().issues(bad)] \
        == ["finite_features"]


def test_broken_symmetry_is_caught(rng):
    bad = break_edge_symmetry(make_path(rng, n=5), edge=2)
    issues = GraphValidator().issues(bad)
    assert [issue.check for issue in issues] == ["edge_symmetry"]
    # ... but a directed validator accepts it
    assert GraphValidator(undirected=False).issues(bad) == []


def test_out_of_bounds_edge_is_caught(rng):
    bad = point_edge_out_of_bounds(make_triangle(rng))
    issues = GraphValidator().issues(bad)
    assert [issue.check for issue in issues] == ["edge_bounds"]


def test_empty_graph_is_caught():
    empty = Graph(np.zeros((0, 3)), np.zeros((2, 0), dtype=np.int64))
    issues = GraphValidator().issues(empty)
    assert [issue.check for issue in issues] == ["non_empty"]


def test_label_domain_classification(rng):
    validator = GraphValidator(num_classes=2)
    for bad_label in (-1, 2, 0.5, None):
        bad = corrupt_label(make_triangle(rng), bad_label)
        assert [i.check for i in validator.issues(bad)] == ["label_domain"]
    assert validator.issues(corrupt_label(make_triangle(rng), 1)) == []


def test_label_domain_multitask(rng):
    validator = GraphValidator(num_classes=3, task="multitask")
    good = corrupt_label(make_triangle(rng),
                         np.array([1.0, float("nan"), 0.0]))
    assert validator.issues(good) == []
    wrong_shape = corrupt_label(make_triangle(rng), np.array([1.0, 0.0]))
    assert [i.check for i in validator.issues(wrong_shape)] \
        == ["label_domain"]
    wrong_values = corrupt_label(make_triangle(rng),
                                 np.array([1.0, 0.3, 0.0]))
    assert [i.check for i in validator.issues(wrong_values)] \
        == ["label_domain"]


def test_validate_raises_on_invalid_graph(rng):
    with pytest.raises(ValidationError, match="finite_features"):
        GraphValidator().validate(corrupt_features(make_triangle(rng)))


# ----------------------------------------------------------------------
# DatasetValidator: the three policies over a deterministically
# corrupted corpus (the ISSUE's fault-injection acceptance criterion)
# ----------------------------------------------------------------------
def _corrupted_dataset(rng):
    graphs = [make_triangle(rng), make_path(rng, n=5),
              corrupt_features(make_path(rng, n=6), node=2),
              make_path(rng, n=4)]
    return GraphDataset("corrupted", graphs, num_classes=2)


def test_policy_raise_aborts(rng):
    with pytest.raises(ValidationError, match="graph 2"):
        DatasetValidator(policy="raise").apply(_corrupted_dataset(rng))


def test_policy_drop_filters_and_counts(rng):
    observer = Observer()
    cleaned = DatasetValidator(policy="drop", observer=observer) \
        .apply(_corrupted_dataset(rng))
    assert len(cleaned) == 3
    assert all(np.isfinite(g.x).all() for g in cleaned)
    assert observer.metrics.count("validate/graphs_checked") == 4
    assert observer.metrics.count("validate/invalid_graphs") == 1
    assert observer.metrics.count("validate/dropped_graphs") == 1
    assert observer.metrics.count("validate/finite_features") == 1


def test_policy_warn_keeps_everything(rng):
    dataset = _corrupted_dataset(rng)
    with pytest.warns(RuntimeWarning, match="1 invalid"):
        result = DatasetValidator(policy="warn").apply(dataset)
    assert result is dataset


def test_policy_drop_refuses_to_empty_the_dataset(rng):
    graphs = [corrupt_features(make_triangle(rng))]
    with pytest.raises(ValidationError):
        DatasetValidator(policy="drop") \
            .apply(GraphDataset("all-bad", graphs, num_classes=2))


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown validation policy"):
        DatasetValidator(policy="ignore")


def test_report_summary_counts(rng):
    report = DatasetValidator().validate(
        [make_triangle(rng), corrupt_features(make_path(rng, n=5)),
         break_edge_symmetry(make_path(rng, n=6))])
    assert report.num_graphs == 3
    assert report.num_invalid == 2
    assert report.invalid_indices == [1, 2]
    assert report.counts_by_check() == {"finite_features": 1,
                                        "edge_symmetry": 1}
    assert "2 invalid" in report.summary()


def test_clean_corpus_reports_ok(graphs):
    report = DatasetValidator().validate(graphs)
    assert report.ok
    assert "all invariants hold" in report.summary()


# ----------------------------------------------------------------------
# load_dataset integration
# ----------------------------------------------------------------------
def test_load_dataset_validate_passes_on_bundled_data():
    dataset = load_dataset("MUTAG", seed=0, scale=0.1, validate="raise")
    assert len(dataset) > 0


def test_load_dataset_validate_counts_through_ambient_observer():
    observer = Observer()
    with observer.activate():
        load_dataset("MUTAG", seed=0, scale=0.1, validate="warn")
    assert observer.metrics.count("validate/graphs_checked") > 0
    assert observer.metrics.count("validate/invalid_graphs") == 0
