"""`repro doctor`: the full invariant suite + smoke pretrain, end to end."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.data import GraphDataset, register_dataset
from repro.validate import render_doctor_report, run_doctor
from repro.validate.faults import corrupt_features

from _helpers import make_path, make_triangle


@pytest.fixture(scope="module")
def corrupted_dataset_name():
    """Register a tiny dataset whose third graph carries a NaN feature."""
    name = "doctor-test-corrupted"

    @register_dataset(name)
    def _make(seed=0, scale=1.0, **kwargs):
        rng = np.random.default_rng(seed)
        graphs = [make_triangle(rng), make_path(rng, n=5),
                  corrupt_features(make_path(rng, n=6), node=1),
                  make_path(rng, n=4), make_triangle(rng), make_path(rng)]
        return GraphDataset(name, graphs, num_classes=2)

    return name


def test_run_doctor_on_clean_dataset():
    report = run_doctor("MUTAG", seed=0, scale=0.1, epochs=1, max_graphs=12)
    assert report["ok"]
    assert report["validation"]["ok"]
    assert report["validation"]["num_invalid"] == 0
    assert report["smoke"]["ok"]
    assert report["smoke"]["num_batches"] > 0
    assert report["smoke"]["skipped_batches"] == 0
    assert np.isfinite(report["smoke"]["final_loss"])
    text = render_doctor_report(report)
    assert "doctor: all checks passed" in text


@pytest.mark.filterwarnings("ignore:invalid value encountered")
def test_run_doctor_flags_corruption(corrupted_dataset_name):
    report = run_doctor(corrupted_dataset_name, seed=0)
    assert not report["ok"]
    assert not report["validation"]["ok"]
    assert report["validation"]["counts_by_check"] == {"finite_features": 1}
    # The NaN feature also poisons the smoke pretrain; the guard counts the
    # skipped batches instead of crashing.
    assert report["smoke"]["skipped_batches"] > 0 or not report["smoke"]["ok"]
    assert "doctor: FAILED" in render_doctor_report(report)


def test_doctor_cli_passes_on_clean_dataset(capsys):
    main(["doctor", "--dataset", "MUTAG", "--scale", "0.1",
          "--epochs", "1", "--max-graphs", "12"])
    out = capsys.readouterr().out
    assert "doctor: all checks passed" in out


def test_doctor_cli_json_output(capsys):
    main(["doctor", "--dataset", "MUTAG", "--scale", "0.1",
          "--epochs", "1", "--max-graphs", "12", "--json"])
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True
    assert set(report) == {"dataset", "validation", "smoke", "ok"}


@pytest.mark.filterwarnings("ignore:invalid value encountered")
def test_doctor_cli_exits_nonzero_on_corruption(corrupted_dataset_name,
                                                capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["doctor", "--dataset", corrupted_dataset_name])
    assert excinfo.value.code == 1
    assert "doctor: FAILED" in capsys.readouterr().out
