"""`repro doctor`: the full invariant suite + smoke pretrain, end to end."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.data import GraphDataset, register_dataset
from repro.validate import render_doctor_report, run_doctor
from repro.validate.faults import corrupt_features

from _helpers import make_path, make_triangle


@pytest.fixture(scope="module")
def corrupted_dataset_name():
    """Register a tiny dataset whose third graph carries a NaN feature."""
    name = "doctor-test-corrupted"

    @register_dataset(name)
    def _make(seed=0, scale=1.0, **kwargs):
        rng = np.random.default_rng(seed)
        graphs = [make_triangle(rng), make_path(rng, n=5),
                  corrupt_features(make_path(rng, n=6), node=1),
                  make_path(rng, n=4), make_triangle(rng), make_path(rng)]
        return GraphDataset(name, graphs, num_classes=2)

    return name


def test_run_doctor_on_clean_dataset():
    report = run_doctor("MUTAG", seed=0, scale=0.1, epochs=1, max_graphs=12)
    assert report["ok"]
    assert report["validation"]["ok"]
    assert report["validation"]["num_invalid"] == 0
    assert report["smoke"]["ok"]
    assert report["smoke"]["num_batches"] > 0
    assert report["smoke"]["skipped_batches"] == 0
    assert np.isfinite(report["smoke"]["final_loss"])
    text = render_doctor_report(report)
    assert "doctor: all checks passed" in text


@pytest.mark.filterwarnings("ignore:invalid value encountered")
def test_run_doctor_flags_corruption(corrupted_dataset_name):
    report = run_doctor(corrupted_dataset_name, seed=0)
    assert not report["ok"]
    assert not report["validation"]["ok"]
    assert report["validation"]["counts_by_check"] == {"finite_features": 1}
    # The NaN feature also poisons the smoke pretrain; the guard counts the
    # skipped batches instead of crashing.
    assert report["smoke"]["skipped_batches"] > 0 or not report["smoke"]["ok"]
    assert "doctor: FAILED" in render_doctor_report(report)


# ----------------------------------------------------------------------
# Drifted-dataset detection (--drift-store)
# ----------------------------------------------------------------------
def _live_store(tmp_path, *, shift: float) -> str:
    """A store root whose live statistics come from a shifted MUTAG copy."""
    from repro.data import load_dataset
    from repro.ingest import corpus_statistics, write_live

    graphs = [g.copy() for g in load_dataset("MUTAG", seed=0,
                                             scale=0.1).graphs]
    for graph in graphs:
        graph.x = graph.x + shift
    root = tmp_path / "store"
    root.mkdir()
    write_live(root, {"model": "sgcl-v000001", "dataset_version": 1,
                      "fingerprint": "f" * 16, "epochs": 2,
                      "statistics": corpus_statistics(graphs)})
    return str(root)


def test_run_doctor_surfaces_drift_and_fails_at_refresh(tmp_path):
    store = _live_store(tmp_path, shift=4.0)
    report = run_doctor("MUTAG", seed=0, scale=0.1, epochs=1, max_graphs=12,
                        drift_store=store)
    assert not report["ok"]  # validation+smoke pass, drift alone fails it
    assert report["validation"]["ok"] and report["smoke"]["ok"]
    assert report["drift"]["status"] == "refresh"
    assert report["drift"]["scores"]["feature"] >= 2.0
    assert report["drift"]["live_model"] == "sgcl-v000001"
    text = render_doctor_report(report)
    assert "drift [FAIL]" in text and "doctor: FAILED" in text


def test_run_doctor_drift_ok_and_no_reference(tmp_path):
    matched = _live_store(tmp_path, shift=0.0)
    report = run_doctor("MUTAG", seed=0, scale=0.1, epochs=1, max_graphs=12,
                        drift_store=matched)
    assert report["ok"] and report["drift"]["status"] == "ok"

    empty = tmp_path / "empty"
    empty.mkdir()
    report = run_doctor("MUTAG", seed=0, scale=0.1, epochs=1, max_graphs=12,
                        drift_store=str(empty))
    assert report["ok"] and report["drift"]["status"] == "no-reference"


def test_run_doctor_drift_incomparable_fails(tmp_path):
    from repro.ingest import write_live

    from _helpers import make_triangle

    rng = np.random.default_rng(0)
    narrow = [make_triangle(rng, features=3)]
    from repro.ingest import corpus_statistics

    root = tmp_path / "store"
    root.mkdir()
    write_live(root, {"model": "m", "dataset_version": 1,
                      "fingerprint": "f" * 16, "epochs": 1,
                      "statistics": corpus_statistics(narrow)})
    report = run_doctor("MUTAG", seed=0, scale=0.1, epochs=1, max_graphs=12,
                        drift_store=str(root))
    assert not report["ok"]
    assert report["drift"]["status"] == "incomparable"
    assert "error" in report["drift"]


def test_doctor_cli_exits_nonzero_on_drift(tmp_path, capsys):
    store = _live_store(tmp_path, shift=4.0)
    with pytest.raises(SystemExit) as excinfo:
        main(["doctor", "--dataset", "MUTAG", "--scale", "0.1",
              "--epochs", "1", "--max-graphs", "12",
              "--drift-store", store])
    assert excinfo.value.code == 1
    out = capsys.readouterr().out
    assert "drift [FAIL]" in out
    # raising the refresh threshold turns the same drift into a warning
    main(["doctor", "--dataset", "MUTAG", "--scale", "0.1",
          "--epochs", "1", "--max-graphs", "12", "--drift-store", store,
          "--drift-refresh", "1e9"])
    assert "status=warn" in capsys.readouterr().out


def test_doctor_cli_passes_on_clean_dataset(capsys):
    main(["doctor", "--dataset", "MUTAG", "--scale", "0.1",
          "--epochs", "1", "--max-graphs", "12"])
    out = capsys.readouterr().out
    assert "doctor: all checks passed" in out


def test_doctor_cli_json_output(capsys):
    main(["doctor", "--dataset", "MUTAG", "--scale", "0.1",
          "--epochs", "1", "--max-graphs", "12", "--json"])
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] is True
    assert set(report) == {"dataset", "validation", "smoke", "ok"}


@pytest.mark.filterwarnings("ignore:invalid value encountered")
def test_doctor_cli_exits_nonzero_on_corruption(corrupted_dataset_name,
                                                capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["doctor", "--dataset", corrupted_dataset_name])
    assert excinfo.value.code == 1
    assert "doctor: FAILED" in capsys.readouterr().out
