"""Disjoint-union batching invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import Batch

from _helpers import make_path, make_triangle


def test_batch_counts(rng):
    batch = Batch([make_triangle(rng), make_path(rng, n=4)])
    assert batch.num_graphs == 2
    assert batch.num_nodes == 7
    assert batch.num_edges == 6 + 6
    assert len(batch) == 2


def test_edge_offsets(rng):
    tri = make_triangle(rng)
    batch = Batch([tri, tri])
    second_half = batch.edge_index[:, 6:]
    assert second_half.min() >= 3
    assert (second_half - 3 == tri.edge_index).all()


def test_node_graph_vector(rng):
    batch = Batch([make_triangle(rng), make_path(rng, n=4)])
    assert batch.node_graph.tolist() == [0, 0, 0, 1, 1, 1, 1]


def test_nodes_of_and_unbatch_roundtrip(rng):
    graphs = [make_triangle(rng), make_path(rng, n=5), make_triangle(rng)]
    batch = Batch(graphs)
    values = np.arange(batch.num_nodes)
    chunks = batch.unbatch_node_values(values)
    assert [len(c) for c in chunks] == [3, 5, 3]
    assert (np.concatenate(chunks) == values).all()
    assert (batch.nodes_of(1) == np.arange(3, 8)).all()


def test_labels_stacking(rng):
    batch = Batch([make_triangle(rng, y=0), make_path(rng, y=1)])
    assert batch.labels().tolist() == [0, 1]


def test_empty_batch_rejected():
    with pytest.raises(ValueError):
        Batch([])


def test_features_concatenated_in_order(rng):
    a, b = make_triangle(rng), make_path(rng, n=4)
    batch = Batch([a, b])
    assert np.allclose(batch.x[:3], a.x)
    assert np.allclose(batch.x[3:], b.x)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(2, 8), min_size=1, max_size=6),
       st.integers(0, 999))
def test_batch_preserves_totals(sizes, seed):
    """Property: batching preserves total node and edge counts."""
    local = np.random.default_rng(seed)
    graphs = [make_path(local, n=n) for n in sizes]
    batch = Batch(graphs)
    assert batch.num_nodes == sum(g.num_nodes for g in graphs)
    assert batch.num_edges == sum(g.num_edges for g in graphs)
    assert batch.edge_index.max(initial=-1) < batch.num_nodes
