"""Feature/structure transforms."""

from __future__ import annotations

import numpy as np

from repro.graph import (
    add_self_loops,
    constant_features,
    degree_features,
    normalized_adjacency_weights,
    one_hot,
)

from _helpers import make_path, make_triangle


def test_add_self_loops_appends_diagonal(rng):
    g = make_triangle(rng)
    looped = add_self_loops(g.edge_index, 3)
    assert looped.shape[1] == 6 + 3
    assert (looped[:, -3:] == np.tile(np.arange(3), (2, 1))).all()


def test_one_hot():
    out = one_hot(np.array([0, 2, 1]), 3)
    assert out.tolist() == [[1, 0, 0], [0, 0, 1], [0, 1, 0]]


def test_degree_features_encodes_degree(rng):
    g = make_path(rng, n=4)
    transformed = degree_features(g, max_degree=8)
    assert transformed.x.shape == (4, 8)
    # Path ends have degree 1, middles degree 2.
    assert transformed.x[0, 1] == 1.0
    assert transformed.x[1, 2] == 1.0


def test_degree_features_clips(rng):
    g = make_triangle(rng)
    transformed = degree_features(g, max_degree=2)
    assert transformed.x[:, 1].sum() == 3  # all degree-2 clipped to last bin


def test_constant_features(rng):
    g = make_triangle(rng)
    assert (constant_features(g, dim=5).x == 1.0).all()


def test_normalized_adjacency_weights_gcn_formula(rng):
    g = make_path(rng, n=3)
    looped = add_self_loops(g.edge_index, 3)
    weights = normalized_adjacency_weights(looped, 3)
    degrees = np.bincount(looped[0], minlength=3)
    expected = 1.0 / np.sqrt(degrees[looped[0]] * degrees[looped[1]])
    assert np.allclose(weights, expected)
