"""Graph container semantics: validation, distances, subgraphs, conversion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import Graph

from _helpers import make_path, make_triangle


def test_validation_rejects_bad_shapes(rng):
    with pytest.raises(ValueError):
        Graph(rng.normal(size=4), np.zeros((2, 0)))
    with pytest.raises(ValueError):
        Graph(rng.normal(size=(3, 2)), np.zeros((3, 1)))


def test_validation_rejects_out_of_range_edges(rng):
    with pytest.raises(ValueError):
        Graph(rng.normal(size=(2, 2)), np.array([[0, 2], [1, 0]]))


def test_empty_edge_index_normalised(rng):
    g = Graph(rng.normal(size=(2, 2)), np.zeros((2, 0)))
    assert g.edge_index.shape == (2, 0)
    assert g.num_edges == 0


def test_degrees_and_adjacency(rng):
    g = make_triangle(rng)
    assert g.degrees().tolist() == [2.0, 2.0, 2.0]
    adjacency = g.adjacency()
    assert np.allclose(adjacency, adjacency.T)
    assert adjacency.sum() == 6


def test_subgraph_keeps_internal_edges(rng):
    g = make_path(rng, n=4)
    sub = g.subgraph(np.array([0, 1]))
    assert sub.num_nodes == 2
    assert sub.num_edges == 2  # the 0–1 edge, both orientations
    assert np.allclose(sub.x, g.x[[0, 1]])


def test_subgraph_relabels_to_contiguous(rng):
    g = make_path(rng, n=4)
    sub = g.subgraph(np.array([1, 3]))
    assert sub.num_nodes == 2
    assert sub.num_edges == 0  # nodes 1 and 3 are not adjacent
    assert (sub.meta["parent_nodes"] == [1, 3]).all()


def test_drop_nodes_complements_subgraph(rng):
    g = make_path(rng, n=5)
    dropped = g.drop_nodes(np.array([0, 4]))
    assert dropped.num_nodes == 3
    assert (dropped.meta["parent_nodes"] == [1, 2, 3]).all()


def test_subgraph_rejects_bad_indices(rng):
    g = make_triangle(rng)
    with pytest.raises(ValueError):
        g.subgraph(np.array([0, 5]))


def test_copy_is_independent(rng):
    g = make_triangle(rng)
    clone = g.copy()
    clone.x[0, 0] = 123.0
    assert g.x[0, 0] != 123.0


def test_networkx_roundtrip(rng):
    g = make_path(rng, n=4)
    nx_graph = g.to_networkx()
    assert nx_graph.number_of_nodes() == 4
    assert nx_graph.number_of_edges() == 3
    back = Graph.from_networkx(nx_graph, x=g.x)
    assert back.num_edges == g.num_edges
    assert sorted(map(tuple, back.edge_index.T.tolist())) == \
        sorted(map(tuple, g.edge_index.T.tolist()))


def test_from_networkx_default_features():
    import networkx as nx
    g = Graph.from_networkx(nx.cycle_graph(5))
    assert g.x.shape == (5, 1)
    assert g.num_edges == 10


def test_repr_contains_counts(rng):
    assert "num_nodes=3" in repr(make_triangle(rng))
