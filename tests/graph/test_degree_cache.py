"""Lazy degree caches on Graph and Batch (satellite of the sampling PR)."""

from __future__ import annotations

import numpy as np
import pytest

from _helpers import make_path, make_triangle
from repro.graph import Batch, Graph


def test_graph_degrees_match_bincount(rng):
    graph = make_path(rng, 5)
    expected = np.bincount(graph.edge_index[0], minlength=5)
    assert np.array_equal(graph.degrees(), expected)


def test_graph_degrees_cached_and_read_only(rng):
    graph = make_triangle(rng)
    degrees = graph.degrees()
    assert graph.degrees() is degrees  # computed once
    with pytest.raises(ValueError):
        degrees[0] = 99.0  # cache cannot be poisoned in place


def test_isolated_nodes_have_zero_degree():
    graph = Graph(np.ones((4, 2)), np.array([[0], [1]]))
    assert np.array_equal(graph.degrees(), [1.0, 0.0, 0.0, 0.0])


def test_batch_degrees_match_batched_bincount(rng):
    batch = Batch([make_triangle(rng), make_path(rng, 4),
                   make_triangle(rng)])
    expected = np.bincount(batch.edge_index[0],
                           minlength=batch.num_nodes).astype(np.float64)
    assert np.array_equal(batch.degrees(), expected)
    assert batch.degrees() is batch.degrees()  # batch-level cache too


def test_batch_degrees_reuse_member_caches(rng):
    graphs = [make_triangle(rng), make_path(rng, 3)]
    member = [g.degrees() for g in graphs]  # warm the per-graph caches
    batch = Batch(graphs)
    assert np.array_equal(batch.degrees(), np.concatenate(member))
    for graph, cached in zip(graphs, member):
        assert graph.degrees() is cached  # batching did not recompute
