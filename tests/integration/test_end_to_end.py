"""End-to-end miniature runs of every evaluation protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_method
from repro.bench import (
    average_ranks,
    run_kernel_unsupervised,
    run_semisupervised,
    run_transfer,
    run_unsupervised,
)
from repro.core import SGCLConfig, SGCLTrainer
from repro.data import load_dataset, scaffold_split
from repro.eval import (
    cross_validated_accuracy,
    embed_dataset,
    finetune_multitask,
)


def test_unsupervised_pipeline_beats_chance():
    """Pretrained SGCL embeddings must classify well above the majority rate
    on a planted-motif dataset."""
    dataset = load_dataset("MUTAG", seed=0, scale=0.3)
    trainer = SGCLTrainer(dataset.num_features,
                          SGCLConfig(epochs=4, batch_size=32, seed=0))
    trainer.pretrain(dataset.graphs)
    embeddings = embed_dataset(trainer.encoder, dataset)
    accuracy, _ = cross_validated_accuracy(embeddings, dataset.labels(),
                                           k=5, classifier="logreg")
    labels = dataset.labels()
    majority = max(np.mean(labels == c) for c in np.unique(labels))
    assert accuracy > majority + 0.05


def test_transfer_pipeline_produces_valid_auc():
    corpus = load_dataset("ZINC", seed=0, scale=0.04)
    model = make_method("SGCL", corpus.num_features, seed=0, epochs=2)
    model.pretrain(corpus.graphs, epochs=2)
    downstream = load_dataset("BBBP", seed=0, scale=0.04)
    splits = scaffold_split(downstream)
    auc = finetune_multitask(model.encoder, downstream, splits, epochs=3,
                             rng=np.random.default_rng(0))
    assert 0.0 <= auc <= 1.0


def test_harness_unsupervised_runner():
    mean, std = run_unsupervised("GraphCL", "MUTAG", seeds=[0], scale=0.15,
                                 epochs=1)
    assert 0.0 <= mean <= 100.0
    assert std == 0.0  # single seed


def test_harness_kernel_runner():
    mean, _ = run_kernel_unsupervised("WL", "MUTAG", seeds=[0], scale=0.15)
    assert mean > 50.0  # WL on planted motifs beats coin flip


def test_harness_transfer_runner():
    mean, _ = run_transfer("GAE", "BACE", seeds=[0], pretrain_scale=0.04,
                           downstream_scale=0.04, pretrain_epochs=1,
                           finetune_epochs=2)
    assert 0.0 <= mean <= 100.0


def test_harness_semisupervised_runner():
    mean, _ = run_semisupervised("No Pre-Train", "MUTAG", 0.1, seeds=[0],
                                 scale=0.2, pretrain_epochs=0,
                                 finetune_epochs=2)
    assert 0.0 <= mean <= 100.0


def test_average_ranks():
    table = {
        "a": {"d1": 90.0, "d2": 80.0},
        "b": {"d1": 85.0, "d2": 85.0},
        "c": {"d1": None, "d2": 70.0},
    }
    ranks = average_ranks(table, ["d1", "d2"])
    assert ranks["a"] == 1.5
    assert ranks["b"] == 1.5
    assert ranks["c"] == 3.0


def test_sgcl_beats_random_augmentation_on_planted_data():
    """The paper's core claim in miniature: semantic-aware augmentation
    yields better representations than uniform random node dropping
    (averaged over seeds on a motif dataset)."""
    scores = {}
    for augmentation in ("lipschitz", "random"):
        accs = []
        for seed in range(2):
            dataset = load_dataset("PROTEINS", seed=seed, scale=0.08)
            trainer = SGCLTrainer(
                dataset.num_features,
                SGCLConfig(epochs=6, batch_size=32, seed=seed,
                           augmentation=augmentation))
            trainer.pretrain(dataset.graphs)
            embeddings = embed_dataset(trainer.encoder, dataset)
            acc, _ = cross_validated_accuracy(
                embeddings, dataset.labels(), k=5, classifier="logreg")
            accs.append(acc)
        scores[augmentation] = np.mean(accs)
    assert scores["lipschitz"] >= scores["random"] - 0.02, scores
