"""Command-line interface smoke tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    import repro

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_datasets_command(capsys):
    main(["datasets", "--scale", "0.02"])
    out = capsys.readouterr().out
    assert "mutag" in out
    assert "zinc" in out


def test_pretrain_command(capsys):
    main(["pretrain", "--method", "GraphCL", "--dataset", "MUTAG",
          "--epochs", "1", "--scale", "0.13"])
    out = capsys.readouterr().out
    assert "GraphCL on MUTAG" in out
    assert "%" in out


def test_inspect_command(capsys):
    main(["inspect", "--dataset", "MUTAG", "--epochs", "1",
          "--scale", "0.13"])
    out = capsys.readouterr().out
    assert "semantic-node identification" in out


def test_inspect_command_with_workers_and_cache(capsys, tmp_path):
    args = ["inspect", "--dataset", "MUTAG", "--epochs", "1",
            "--scale", "0.13", "--workers", "2",
            "--cache-dir", str(tmp_path / "pc")]
    main(args)
    first = capsys.readouterr().out
    main(args)  # second run must be served from the cache
    second = capsys.readouterr().out

    def auc(out):
        return out.splitlines()[0]

    assert auc(first) == auc(second)
    assert "0 hit(s)" in first       # cold cache: everything misses
    assert "0 miss(es)" in second    # warm cache: everything hits


def test_pretrain_command_with_workers_matches_serial(capsys):
    base = ["pretrain", "--method", "GraphCL", "--dataset", "MUTAG",
            "--epochs", "1", "--scale", "0.13", "--seeds", "2"]
    main(base + ["--workers", "1"])
    serial = capsys.readouterr().out
    main(base + ["--workers", "2"])
    parallel = capsys.readouterr().out
    assert serial == parallel
    assert "GraphCL on MUTAG" in serial


def test_transfer_command(capsys):
    main(["transfer", "--method", "GAE", "--downstream", "BACE",
          "--epochs", "1", "--finetune-epochs", "2", "--scale", "0.05"])
    out = capsys.readouterr().out
    assert "ROC-AUC" in out


def test_datasets_json_flag(capsys):
    main(["datasets", "--json", "--scale", "0.02"])
    payload = json.loads(capsys.readouterr().out)
    assert "mutag" in payload
    assert payload["mutag"]["num_graphs"] > 0
    assert payload["mutag"]["task"] == "classification"
    assert payload["bbbp"]["task"] == "multitask"


def test_save_then_embed_round_trip(capsys, tmp_path):
    checkpoint = tmp_path / "ck" / "graphcl.npz"
    main(["save", "--method", "GraphCL", "--dataset", "MUTAG",
          "--epochs", "1", "--scale", "0.1", "--out", str(checkpoint)])
    assert checkpoint.exists()
    assert "saved GraphCL" in capsys.readouterr().out

    out_file = tmp_path / "embeddings.npz"
    main(["embed", "--checkpoint", str(checkpoint), "--dataset", "MUTAG",
          "--scale", "0.1", "--out", str(out_file), "--stats"])
    out = capsys.readouterr().out
    assert "embeddings" in out
    assert '"hit_rate"' in out
    with np.load(out_file) as archive:
        embeddings = archive["embeddings"]
        labels = archive["labels"]
    assert embeddings.shape[0] == labels.shape[0] > 0


def test_serve_command_runs_a_fleet(capsys, tmp_path):
    checkpoint = tmp_path / "ck" / "graphcl.npz"
    main(["save", "--method", "GraphCL", "--dataset", "MUTAG",
          "--epochs", "1", "--scale", "0.1", "--out", str(checkpoint)])
    capsys.readouterr()

    out_file = tmp_path / "embeddings.npz"
    main(["serve", "--checkpoint", str(checkpoint), "--dataset", "MUTAG",
          "--scale", "0.1", "--workers", "3", "--repeat", "2",
          "--out", str(out_file), "--stats"])
    out = capsys.readouterr().out
    assert "across 3 worker(s) [hash]" in out
    assert '"policy": "hash"' in out
    with np.load(out_file) as archive:
        served = archive["embeddings"]

    # The fleet must be bit-identical to single-service embedding.
    main(["embed", "--checkpoint", str(checkpoint), "--dataset", "MUTAG",
          "--scale", "0.1", "--out", str(tmp_path / "single.npz")])
    capsys.readouterr()
    with np.load(tmp_path / "single.npz") as archive:
        single = archive["embeddings"]
    assert np.array_equal(served, single)


def test_serve_canary_slice_requires_checkpoint(tmp_path):
    with pytest.raises(SystemExit, match="canary-checkpoint"):
        main(["serve", "--checkpoint", str(tmp_path / "x.npz"),
              "--canary-slice", "0.5"])


def test_embed_rejects_mismatched_features(tmp_path):
    checkpoint = tmp_path / "gcl.npz"
    main(["save", "--method", "GraphCL", "--dataset", "MUTAG",
          "--epochs", "1", "--scale", "0.1", "--out", str(checkpoint)])
    with pytest.raises(SystemExit, match="node features"):
        main(["embed", "--checkpoint", str(checkpoint),
              "--dataset", "PROTEINS", "--scale", "0.1"])


def test_pretrain_checkpoint_dir_then_resume(capsys, tmp_path):
    """Crash-safe mode writes per-epoch checkpoints and resumes from them."""
    directory = tmp_path / "run"
    base = ["pretrain", "--method", "SGCL", "--dataset", "MUTAG",
            "--scale", "0.1", "--checkpoint-dir", str(directory)]
    main(base + ["--epochs", "2"])
    out = capsys.readouterr().out
    assert "2 epoch(s)" in out
    assert (directory / "latest.npz").exists()

    # Asking for more epochs picks up where the first run stopped.
    main(base + ["--epochs", "3", "--resume"])
    out = capsys.readouterr().out
    assert "resuming at epoch 3" in out
    assert "3 epoch(s)" in out

    # Already satisfied: resume is a no-op, not a retrain.
    main(base + ["--epochs", "3", "--resume"])
    out = capsys.readouterr().out
    assert "3 epoch(s)" in out


def test_pretrain_resume_requires_checkpoint_dir():
    with pytest.raises(SystemExit, match="--checkpoint-dir"):
        main(["pretrain", "--resume"])


def test_pretrain_checkpoint_dir_rejects_baselines(tmp_path):
    with pytest.raises(SystemExit, match="SGCL only"):
        main(["pretrain", "--method", "GraphCL",
              "--checkpoint-dir", str(tmp_path)])


def test_embed_reports_failing_checkpoint_path(tmp_path):
    missing = tmp_path / "nope.npz"
    with pytest.raises(SystemExit, match="nope.npz"):
        main(["embed", "--checkpoint", str(missing), "--dataset", "MUTAG",
              "--scale", "0.1"])


def test_embed_reports_corrupt_checkpoint_path(tmp_path):
    bad = tmp_path / "bad.npz"
    bad.write_bytes(b"not an archive at all")
    with pytest.raises(SystemExit, match="bad.npz"):
        main(["embed", "--checkpoint", str(bad), "--dataset", "MUTAG",
              "--scale", "0.1"])


def test_main_translates_keyboard_interrupt_to_130(monkeypatch, capsys):
    import repro.cli as cli

    def interrupt(args):
        raise KeyboardInterrupt

    monkeypatch.setattr(
        cli, "build_parser",
        lambda: _parser_with(interrupt))
    with pytest.raises(SystemExit) as excinfo:
        cli.main(["datasets"])
    assert excinfo.value.code == 130
    assert "interrupted" in capsys.readouterr().err


def _parser_with(fn):
    import argparse

    parser = argparse.ArgumentParser()
    sub = parser.add_subparsers(dest="command", required=True)
    stub = sub.add_parser("datasets")
    stub.set_defaults(fn=fn)
    return parser


def test_pretrain_with_log_dir_writes_log_manifest_and_reports(
        tmp_path, capsys):
    log_dir = tmp_path / "runs"
    main(["pretrain", "--method", "SGCL", "--dataset", "MUTAG",
          "--epochs", "2", "--scale", "0.1", "--log-dir", str(log_dir),
          "--trace"])
    out = capsys.readouterr().out
    assert "SGCL on MUTAG" in out
    assert "pretrain/epoch" in out  # --trace prints the span tree

    logs = sorted(log_dir.glob("run-*.jsonl"))
    manifests = sorted(log_dir.glob("run-*.manifest.json"))
    assert len(logs) == 1 and len(manifests) == 1

    from repro.obs import RunManifest, load_events

    events = load_events(logs[0])
    kinds = [e["event"] for e in events]
    assert kinds[0] == "run_start"
    assert kinds.count("epoch") == 2
    assert "eval" in kinds
    assert "run_end" in kinds
    assert kinds[-1] == "trace"
    epoch = next(e for e in events if e["event"] == "epoch")
    for key in ("loss_s", "theta_w", "k_v_mean", "k_v_std", "k_v_min",
                "k_v_max", "drop_fraction", "grad_norm"):
        assert key in epoch

    manifest = RunManifest.read(manifests[0])
    assert manifest["dataset"]["name"] == "MUTAG"
    assert len(manifest["dataset"]["fingerprint"]) == 16
    assert manifest["config"]["epochs"] == 2

    main(["report", str(logs[0])])
    report_out = capsys.readouterr().out
    assert "== training: SGCL" in report_out
    assert "== spans ==" in report_out
    assert "lipschitz/generator" in report_out


def test_profile_command_writes_artifacts_and_gates_against_itself(
        capsys, tmp_path):
    out_dir = tmp_path / "prof"
    base = ["profile", "--epochs", "1", "--max-graphs", "16"]
    main(base + ["--trace-events", "--out-dir", str(out_dir), "--json"])
    out = capsys.readouterr().out
    payload = json.loads(out[:out.index("artifacts:")])
    assert payload["attributed_fraction"] >= 0.90
    assert payload["rows"] and payload["by_op"]

    hotpath = json.loads((out_dir / "hotpath.json").read_text())
    assert hotpath["by_op"] == payload["by_op"]
    trace = json.loads((out_dir / "trace.json").read_text())
    names = {e["name"] for e in trace["traceEvents"]}
    assert "pretrain/batch" in names  # span track
    assert "matmul" in names  # op track (--trace-events)
    flame = (out_dir / "flamegraph.txt").read_text()
    assert flame and all(line.rsplit(" ", 1)[1].isdigit()
                         for line in flame.splitlines())

    # The same seeded workload gates cleanly against its own baseline.
    # Call counts are checked exactly (seeded run => deterministic); the
    # share/per-call tolerances are widened because this deliberately tiny
    # workload (~40ms) is scheduler-noise-dominated — tolerance
    # calibration itself is unit-tested in tests/obs/test_profiler.py.
    main(base + ["--compare", str(out_dir / "hotpath.json"),
                 "--share-tolerance", "0.3", "--per-call-ratio", "10"])
    out = capsys.readouterr().out
    assert "perf gate: OK" in out


def test_profile_compare_refuses_mismatched_workloads(capsys, tmp_path):
    out_dir = tmp_path / "prof"
    main(["profile", "--epochs", "1", "--max-graphs", "16",
          "--out-dir", str(out_dir)])
    capsys.readouterr()
    with pytest.raises(SystemExit, match="matching flags"):
        main(["profile", "--epochs", "2", "--max-graphs", "16",
              "--compare", str(out_dir / "hotpath.json")])


def test_profile_table_output_shows_hot_rows(capsys):
    main(["profile", "--epochs", "1", "--max-graphs", "16", "--top", "5"])
    out = capsys.readouterr().out
    assert "span" in out and "self ms" in out
    assert "attributed to" in out


# ----------------------------------------------------------------------
# Continuous learning: ingest + refresh
# ----------------------------------------------------------------------
def _ingest_args(tmp_path, extra=()):
    return ["ingest", "--store", str(tmp_path / "store"),
            "--registry", str(tmp_path / "registry"),
            "--dataset", "MUTAG", "--scale", "0.08", "--batch-size", "8",
            *extra]


def test_ingest_then_refresh_then_drifted_ingest(capsys, tmp_path):
    main(_ingest_args(tmp_path, ["--take", "8", "--json"]))
    first = json.loads(capsys.readouterr().out)
    assert first["version"] == 1 and first["created"]
    assert first["drift"] is None  # nothing live yet

    main(["refresh", "--store", str(tmp_path / "store"),
          "--registry", str(tmp_path / "registry"),
          "--batch-size", "8", "--refresh-epochs", "1", "--json"])
    refreshed = json.loads(capsys.readouterr().out)
    assert refreshed["model"] == "sgcl-v000001"
    assert refreshed["epochs_trained"] == 1 and not refreshed["skipped"]

    # replaying the same batch is a no-op commit
    main(_ingest_args(tmp_path, ["--take", "8", "--json"]))
    replay = json.loads(capsys.readouterr().out)
    assert not replay["created"] and replay["action"] == "duplicate"

    main(_ingest_args(tmp_path, ["--skip", "8", "--take", "8",
                                 "--shift-features", "4.0", "--json"]))
    drifted = json.loads(capsys.readouterr().out)
    assert drifted["version"] == 2
    assert drifted["action"] == "refresh"
    assert drifted["drift"]["scores"]["feature"] >= 2.0
    assert "kv" in drifted["drift"]["scores"]  # live generator was used

    main(["refresh", "--store", str(tmp_path / "store"),
          "--registry", str(tmp_path / "registry"),
          "--batch-size", "8", "--refresh-epochs", "1", "--json"])
    second = json.loads(capsys.readouterr().out)
    assert second["model"] == "sgcl-v000002"


def test_ingest_human_output_suggests_refresh(capsys, tmp_path):
    main(_ingest_args(tmp_path, ["--take", "6"]))
    out = capsys.readouterr().out
    assert "version 1" in out

    main(["refresh", "--store", str(tmp_path / "store"),
          "--registry", str(tmp_path / "registry"),
          "--batch-size", "8", "--refresh-epochs", "1"])
    capsys.readouterr()

    main(_ingest_args(tmp_path, ["--skip", "6", "--take", "6",
                                 "--shift-features", "4.0"]))
    out = capsys.readouterr().out
    assert "drift crossed the refresh threshold" in out


def test_refresh_requires_registry(tmp_path):
    with pytest.raises(SystemExit, match="registry"):
        main(["refresh", "--store", str(tmp_path / "store")])


def test_refresh_watch_ingests_spool_and_goes_live(capsys, tmp_path):
    from repro.data import GraphDataset, load_dataset
    from repro.data.io import save_dataset

    main(_ingest_args(tmp_path, ["--take", "8"]))
    main(["refresh", "--store", str(tmp_path / "store"),
          "--registry", str(tmp_path / "registry"),
          "--batch-size", "8", "--refresh-epochs", "1"])
    capsys.readouterr()

    spool = tmp_path / "spool"
    spool.mkdir()
    dataset = load_dataset("MUTAG", seed=0, scale=0.08)
    drifted = [g.copy() for g in dataset.graphs[8:14]]
    for graph in drifted:
        graph.x = graph.x + 4.0
    save_dataset(GraphDataset("stream", drifted, dataset.num_classes),
                 spool / "batch-001.npz")

    main(["refresh", "--store", str(tmp_path / "store"),
          "--registry", str(tmp_path / "registry"),
          "--batch-size", "8", "--refresh-epochs", "1",
          "--watch", "--spool", str(spool),
          "--interval", "0", "--max-cycles", "2", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert payload["batches"] == 1
    assert payload["refreshes"] == 1
    assert payload["live"]["model"] == "sgcl-v000002"
    assert (spool / "ingested" / "batch-001.npz").exists()


def test_refresh_watch_requires_spool(tmp_path):
    with pytest.raises(SystemExit, match="spool"):
        main(["refresh", "--store", str(tmp_path / "store"),
              "--registry", str(tmp_path / "registry"), "--watch"])
