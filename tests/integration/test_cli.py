"""Command-line interface smoke tests."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_datasets_command(capsys):
    main(["datasets", "--scale", "0.02"])
    out = capsys.readouterr().out
    assert "mutag" in out
    assert "zinc" in out


def test_pretrain_command(capsys):
    main(["pretrain", "--method", "GraphCL", "--dataset", "MUTAG",
          "--epochs", "1", "--scale", "0.13"])
    out = capsys.readouterr().out
    assert "GraphCL on MUTAG" in out
    assert "%" in out


def test_inspect_command(capsys):
    main(["inspect", "--dataset", "MUTAG", "--epochs", "1",
          "--scale", "0.13"])
    out = capsys.readouterr().out
    assert "semantic-node identification" in out


def test_transfer_command(capsys):
    main(["transfer", "--method", "GAE", "--downstream", "BACE",
          "--epochs", "1", "--finetune-epochs", "2", "--scale", "0.05"])
    out = capsys.readouterr().out
    assert "ROC-AUC" in out
