"""Command-line interface smoke tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


def test_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_version_flag(capsys):
    import repro

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_datasets_command(capsys):
    main(["datasets", "--scale", "0.02"])
    out = capsys.readouterr().out
    assert "mutag" in out
    assert "zinc" in out


def test_pretrain_command(capsys):
    main(["pretrain", "--method", "GraphCL", "--dataset", "MUTAG",
          "--epochs", "1", "--scale", "0.13"])
    out = capsys.readouterr().out
    assert "GraphCL on MUTAG" in out
    assert "%" in out


def test_inspect_command(capsys):
    main(["inspect", "--dataset", "MUTAG", "--epochs", "1",
          "--scale", "0.13"])
    out = capsys.readouterr().out
    assert "semantic-node identification" in out


def test_transfer_command(capsys):
    main(["transfer", "--method", "GAE", "--downstream", "BACE",
          "--epochs", "1", "--finetune-epochs", "2", "--scale", "0.05"])
    out = capsys.readouterr().out
    assert "ROC-AUC" in out


def test_datasets_json_flag(capsys):
    main(["datasets", "--json", "--scale", "0.02"])
    payload = json.loads(capsys.readouterr().out)
    assert "mutag" in payload
    assert payload["mutag"]["num_graphs"] > 0
    assert payload["mutag"]["task"] == "classification"
    assert payload["bbbp"]["task"] == "multitask"


def test_save_then_embed_round_trip(capsys, tmp_path):
    checkpoint = tmp_path / "ck" / "graphcl.npz"
    main(["save", "--method", "GraphCL", "--dataset", "MUTAG",
          "--epochs", "1", "--scale", "0.1", "--out", str(checkpoint)])
    assert checkpoint.exists()
    assert "saved GraphCL" in capsys.readouterr().out

    out_file = tmp_path / "embeddings.npz"
    main(["embed", "--checkpoint", str(checkpoint), "--dataset", "MUTAG",
          "--scale", "0.1", "--out", str(out_file), "--stats"])
    out = capsys.readouterr().out
    assert "embeddings" in out
    assert '"hit_rate"' in out
    with np.load(out_file) as archive:
        embeddings = archive["embeddings"]
        labels = archive["labels"]
    assert embeddings.shape[0] == labels.shape[0] > 0


def test_embed_rejects_mismatched_features(tmp_path):
    checkpoint = tmp_path / "gcl.npz"
    main(["save", "--method", "GraphCL", "--dataset", "MUTAG",
          "--epochs", "1", "--scale", "0.1", "--out", str(checkpoint)])
    with pytest.raises(SystemExit, match="node features"):
        main(["embed", "--checkpoint", str(checkpoint),
              "--dataset", "PROTEINS", "--scale", "0.1"])
