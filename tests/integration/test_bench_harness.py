"""Benchmark harness internals: specs, ranking, reporting."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import (
    average_ranks,
    print_comparison_table,
    save_results,
)
from repro.bench.specs import (
    SENSITIVITY_GRIDS,
    SENSITIVITY_OPTIMA,
    TABLE3_DATASETS,
    TABLE3_METHODS,
    TABLE3_PAPER,
    TABLE4_DATASETS,
    TABLE4_METHODS,
    TABLE4_PAPER,
    TABLE5_METHODS,
    TABLE5_PAPER,
    TABLE6_PAPER,
    bench_scale,
)


def test_table3_spec_complete():
    assert set(TABLE3_PAPER) == set(TABLE3_METHODS)
    for method, row in TABLE3_PAPER.items():
        assert set(row) == set(TABLE3_DATASETS), method


def test_table3_paper_sgcl_has_best_rank():
    """Transcription sanity: the paper's own numbers rank SGCL first."""
    ranks = average_ranks(TABLE3_PAPER, TABLE3_DATASETS)
    assert min(ranks, key=ranks.get) == "SGCL"


def test_table4_spec_complete():
    assert set(TABLE4_PAPER) == set(TABLE4_METHODS)
    for method, row in TABLE4_PAPER.items():
        assert set(row) == set(TABLE4_DATASETS), method


def test_table4_paper_sgcl_best_rank():
    ranks = average_ranks(TABLE4_PAPER, TABLE4_DATASETS)
    assert min(ranks, key=ranks.get) == "SGCL"


def test_table5_full_model_best():
    assert max(TABLE5_PAPER, key=TABLE5_PAPER.get) == "SGCL"
    assert set(TABLE5_PAPER) == set(TABLE5_METHODS)


def test_table6_sgcl_wins_one_percent_settings():
    sgcl = TABLE6_PAPER["SGCL"]
    for column in ("NCI1(1%)", "COLLAB(1%)"):
        others = [row[column] for name, row in TABLE6_PAPER.items()
                  if name != "SGCL"]
        assert sgcl[column] > max(others), column


def test_sensitivity_grids_contain_optima():
    for param, grid in SENSITIVITY_GRIDS.items():
        assert SENSITIVITY_OPTIMA[param] in grid


def test_bench_scale_env(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "2.5")
    assert bench_scale() == 2.5
    monkeypatch.delenv("REPRO_SCALE")
    assert bench_scale() == 1.0


def test_average_ranks_skips_missing_cells():
    table = {"a": {"d": 1.0, "e": None}, "b": {"d": 2.0, "e": 3.0}}
    ranks = average_ranks(table, ["d", "e"])
    assert ranks["a"] == 2.0  # only ranked on d, where b's 2.0 beats its 1.0
    assert ranks["b"] == 1.0  # 1st on d, 1st (alone) on e


def test_average_ranks_handles_none_rows_without_crashing():
    """Missing runs (None cells, absent keys) must degrade, not raise."""
    table = {
        "complete": {"d": 80.0, "e": 70.0},
        "partial": {"d": None, "e": 60.0},
        "absent_key": {},
        "all_none": {"d": None, "e": None},
    }
    ranks = average_ranks(table, ["d", "e"])
    assert ranks["complete"] == 1.0
    assert ranks["partial"] == 2.0          # ranked only on e
    assert np.isnan(ranks["absent_key"])    # never ranked
    assert np.isnan(ranks["all_none"])


def test_average_ranks_treats_nan_as_missing():
    """A NaN score (degenerate run) must not poison the ranking."""
    table = {"a": {"d": float("nan"), "e": 90.0},
             "b": {"d": 50.0, "e": 80.0}}
    ranks = average_ranks(table, ["d", "e"])
    assert ranks["a"] == 1.0  # ranked on e only, where it wins
    assert ranks["b"] == 1.5  # 1st on d (alone), 2nd on e


def test_average_ranks_orders_correctly():
    table = {"low": {"d": 10.0}, "high": {"d": 90.0}}
    ranks = average_ranks(table, ["d"])
    assert ranks["high"] == 1.0
    assert ranks["low"] == 2.0


def test_print_comparison_table_smoke(capsys):
    measured = {"m1": {"d1": (80.0, 1.0)}, "m2": {"d1": (70.0, 2.0)}}
    paper = {"m1": {"d1": 85.0}, "m2": {"d1": 75.0}}
    print_comparison_table("Smoke", ["d1"], measured, paper)
    out = capsys.readouterr().out
    assert "Smoke" in out and "80.0" in out and "[ 85.0]" in out


def test_print_comparison_table_without_paper(capsys):
    measured = {"m1": {"d1": (80.0, 1.0)}}
    print_comparison_table("Smoke", ["d1"], measured, None)
    assert "m1" in capsys.readouterr().out


def test_save_results_writes_json(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    path = save_results("unit_test", {"m": {"d": (1.0, 0.0)}})
    record = json.loads(path.read_text())
    assert record["bench"] == "unit_test"
    assert record["results"]["m"]["d"] == [1.0, 0.0]


def test_save_results_handles_numpy_types(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    path = save_results("unit_test2", {"value": np.float64(3.5),
                                       "array": np.arange(3)})
    record = json.loads(path.read_text())
    assert record["results"]["value"] == 3.5
    assert record["results"]["array"] == [0, 1, 2]
