"""EXPERIMENTS.md report generation."""

from __future__ import annotations

import json

import pytest

from repro.bench import save_results
from repro.bench.report import render_experiments_md, write_experiments_md


@pytest.fixture
def results_sandbox(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
    return tmp_path


def test_render_without_results_mentions_missing(results_sandbox):
    text = render_experiments_md()
    assert "Table III" in text
    assert "not found" in text


def test_render_with_table3_results(results_sandbox):
    from repro.bench.specs import TABLE3_DATASETS, TABLE3_METHODS
    fake = {m: {d: (80.0 - i, 1.0) for d in TABLE3_DATASETS}
            for i, m in enumerate(TABLE3_METHODS)}
    save_results("table3_unsupervised", fake)
    text = render_experiments_md()
    assert "best measured average rank" in text
    assert "GL" in text


def test_render_with_fig7_results(results_sandbox):
    save_results("fig7_visualization",
                 {"records": [], "sgcl_mean": 0.9, "rgcl_mean": 0.6})
    text = render_experiments_md()
    assert "0.900" in text and "0.600" in text


def test_write_experiments_md(results_sandbox, tmp_path):
    path = write_experiments_md(tmp_path / "EXPERIMENTS.md")
    assert path.exists()
    assert path.read_text().startswith("# EXPERIMENTS")


def test_render_with_sensitivity_curves(results_sandbox):
    save_results("fig4_sensitivity_unsupervised",
                 {"rho": {"0.5": 70.0, "0.9": 75.0},
                  "tau": {"0.1": 70.0, "0.2": 74.0},
                  "lambda_c": {"0.01": 73.0},
                  "lambda_w": {"0.01": 73.0}})
    text = render_experiments_md()
    assert "measured peak" in text
    assert "0.9" in text
