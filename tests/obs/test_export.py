"""Tests for the exporters: Chrome trace, collapsed stacks, Prometheus."""

from __future__ import annotations

import itertools
import json

import numpy as np

from repro.obs import (
    MetricsRegistry,
    Observer,
    OpProfiler,
    Tracer,
    chrome_trace,
    collapsed_stacks,
    prometheus_text,
    write_chrome_trace,
    write_collapsed_stacks,
    write_prometheus_text,
)
from repro.obs.profiler import OpRecord
from repro.tensor import Tensor


class FakeClock:
    """Deterministic monotonic clock advancing 1s per reading."""

    def __init__(self):
        self._ticks = itertools.count()

    def __call__(self) -> float:
        return float(next(self._ticks))


def _record(span_path, op, self_s, cum_s=None):
    record = OpRecord(tuple(span_path), op)
    record.calls = 1
    record.self_s = self_s
    record.cum_s = cum_s if cum_s is not None else self_s
    return record


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------
def test_chrome_trace_renders_spans_as_complete_events():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    trace = chrome_trace(tracer)
    events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    by_name = {e["name"]: e for e in events}
    assert by_name["outer"]["ts"] == 0.0
    assert by_name["outer"]["dur"] == 3e6  # 3 fake-clock seconds in µs
    assert by_name["inner"]["ts"] == 1e6
    assert by_name["inner"]["dur"] == 1e6
    # Thread-name metadata makes Perfetto label the tracks.
    names = [e for e in trace["traceEvents"] if e["ph"] == "M"]
    assert {m["args"]["name"] for m in names} == {"spans", "ops"}


def test_chrome_trace_includes_profiler_op_events_on_second_track():
    observer = Observer()
    profiler = OpProfiler(observer, trace_events=True)
    a = Tensor(np.ones((4, 4)))
    with observer.activate(), profiler:
        with observer.span("work"):
            _ = a @ a
    trace = chrome_trace(observer.tracer, profiler)
    ops = [e for e in trace["traceEvents"]
           if e["ph"] == "X" and e.get("cat") == "op"]
    assert any(e["name"] == "matmul" and e["tid"] == 2 for e in ops)
    matmul = next(e for e in ops if e["name"] == "matmul")
    assert matmul["args"]["span"] == "work"


def test_chrome_trace_error_span_carries_error_arg():
    tracer = Tracer(clock=FakeClock())
    try:
        with tracer.span("doomed"):
            raise ValueError("x")
    except ValueError:
        pass
    trace = chrome_trace(tracer)
    doomed = next(e for e in trace["traceEvents"] if e["name"] == "doomed")
    assert doomed["args"]["error"] == "ValueError"


def test_write_chrome_trace_is_valid_json(tmp_path):
    tracer = Tracer(clock=FakeClock())
    with tracer.span("s"):
        pass
    path = write_chrome_trace(tmp_path / "trace.json", tracer)
    parsed = json.loads(path.read_text())
    assert parsed["traceEvents"]


# ----------------------------------------------------------------------
# Collapsed stacks
# ----------------------------------------------------------------------
def test_collapsed_stacks_format_and_merging():
    records = [
        _record(("run", "batch"), "matmul", 0.001),
        _record(("run", "batch"), "matmul", 0.002),
        _record(("run",), "(other)", 0.0005),
        _record((), "backward", 0.004),
    ]
    text = collapsed_stacks(records)
    lines = dict(line.rsplit(" ", 1) for line in text.strip().splitlines())
    # Same stack merges; values are integer self-time microseconds.
    assert lines["run;batch;matmul"] == "3000"
    assert lines["run;(other)"] == "500"
    assert lines["backward"] == "4000"


def test_collapsed_stacks_drops_zero_weight_lines(tmp_path):
    records = [_record(("a",), "noop", 0.0),
               _record(("a",), "real", 0.001)]
    path = write_collapsed_stacks(tmp_path / "flame.txt", records)
    assert path.read_text() == "a;real 1000\n"


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def test_prometheus_text_exposes_all_three_metric_kinds():
    registry = MetricsRegistry()
    registry.increment("fleet/failover", 3)
    registry.set_gauge("prof/wall_seconds", 1.5)
    for value in (0.1, 0.2, 0.3, 0.4):
        registry.observe("embed_seconds", value)
    text = prometheus_text(registry)
    assert "# TYPE repro_fleet_failover_total counter" in text
    assert "repro_fleet_failover_total 3" in text
    assert "repro_prof_wall_seconds 1.5" in text
    assert 'repro_embed_seconds{quantile="0.5"}' in text
    assert "repro_embed_seconds_count 4" in text
    assert "repro_embed_seconds_max 0.4" in text


def test_prometheus_metric_names_are_sanitised():
    registry = MetricsRegistry()
    registry.increment("routed/w0", 1)
    registry.increment("1weird.name", 1)
    text = prometheus_text(registry, prefix="")
    assert "routed_w0_total 1" in text
    assert "_1weird_name_total 1" in text  # leading digit escaped
    # Every exposed name is legal for Prometheus.
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        name = line.split("{")[0].split(" ")[0]
        assert all(c.isalnum() or c in "_:" for c in name), name


def test_prometheus_text_skips_nan_gauges_and_empty_is_empty(tmp_path):
    registry = MetricsRegistry()
    assert prometheus_text(registry) == ""
    registry.set_gauge("bad", float("nan"))
    assert prometheus_text(registry) == ""
    registry.increment("ok")
    path = write_prometheus_text(tmp_path / "metrics.prom", registry)
    assert "repro_ok_total 1" in path.read_text()


def test_prometheus_text_accepts_snapshot_dicts():
    registry = MetricsRegistry()
    registry.increment("requests", 2)
    registry.observe("lat", 0.5)
    assert prometheus_text(registry.snapshot()) == prometheus_text(registry)
