"""Tests for the op-level profiler: patching hygiene, accounting,
attribution, zero overhead when off, and the perf-regression gate."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import SGCLConfig, SGCLTrainer
from repro.nn import functional as F
from repro.obs import Observer, OpProfiler, compare_hotpaths, hotpath_table
from repro.obs.profiler import INSTRUMENTED_MODULES
from repro.tensor import Tensor
from repro.tensor import segment as segment_mod
from repro.tensor import tensor as tensor_mod
from tests._helpers import make_path, make_triangle


def _train_history(graphs, epochs=2):
    trainer = SGCLTrainer(
        graphs[0].x.shape[1],
        SGCLConfig(epochs=epochs, batch_size=4, seed=0))
    trainer.pretrain(graphs)
    # epoch_seconds is wall clock and grad_norm is only recorded when an
    # observer is enabled; every other column is a deterministic function
    # of the seeds and must be bit-identical run to run.
    return [{key: value for key, value in row.items()
             if key not in ("epoch_seconds", "grad_norm")}
            for row in trainer.history]


@pytest.fixture
def graphs(rng):
    return [make_triangle(rng), make_path(rng, 4), make_triangle(rng),
            make_path(rng, 5), make_path(rng, 3), make_triangle(rng)]


# ----------------------------------------------------------------------
# Patching hygiene
# ----------------------------------------------------------------------
def test_activate_deactivate_restores_originals():
    originals = {
        "matmul": tensor_mod.Tensor.__dict__["__matmul__"],
        "segment_sum": segment_mod.segment_sum,
        "cross_entropy": F.cross_entropy,
    }
    profiler = OpProfiler()
    with profiler:
        assert tensor_mod.Tensor.__dict__["__matmul__"] \
            is not originals["matmul"]
        assert segment_mod.segment_sum is not originals["segment_sum"]
    assert tensor_mod.Tensor.__dict__["__matmul__"] is originals["matmul"]
    assert segment_mod.segment_sum is originals["segment_sum"]
    assert F.cross_entropy is originals["cross_entropy"]


def test_patches_restored_even_when_profiled_code_raises():
    original = segment_mod.segment_sum
    with pytest.raises(RuntimeError):
        with OpProfiler():
            raise RuntimeError("boom")
    assert segment_mod.segment_sum is original


def test_consumer_modules_are_patched_too():
    # repro.core.lipschitz imported segment_sum by value; the profiler
    # must patch that reference as well or nested calls escape timing.
    import repro.core.lipschitz as lipschitz_mod

    original = segment_mod.segment_sum
    with OpProfiler():
        assert lipschitz_mod.segment_sum is not original
        assert lipschitz_mod.segment_sum is segment_mod.segment_sum
    assert lipschitz_mod.segment_sum is original


def test_instrumented_modules_declare_op_tables():
    import importlib

    for name in INSTRUMENTED_MODULES:
        module = importlib.import_module(name)
        assert module.PROFILED_OPS, name
        for target, label, flops_fn in module.PROFILED_OPS:
            assert isinstance(target, str) and isinstance(label, str)
            assert flops_fn is None or callable(flops_fn)


# ----------------------------------------------------------------------
# Accounting: calls, self vs cumulative, bytes, flops
# ----------------------------------------------------------------------
def test_matmul_record_counts_bytes_and_flops():
    profiler = OpProfiler()
    a = Tensor(np.ones((8, 16)))
    b = Tensor(np.ones((16, 4)))
    with profiler:
        out = a @ b
    records = {r.op: r for r in profiler.records()}
    rec = records["matmul"]
    assert rec.calls == 1
    assert rec.bytes_out == out.data.nbytes
    assert rec.flops == 2.0 * 16 * out.data.size
    assert rec.self_s > 0.0
    assert rec.cum_s == pytest.approx(rec.self_s)


def test_nested_ops_split_self_and_cumulative_time():
    # segment_mean calls segment_sum (and Tensor arithmetic) internally:
    # its cumulative time covers the children, its self time excludes
    # them, and summing self over all records never double-counts. Call
    # through the module: only `repro.*` references are patched, so a
    # from-import held by a test module would bypass the wrapper.
    profiler = OpProfiler()
    values = Tensor(np.random.default_rng(0).normal(size=(64, 8)))
    index = np.repeat(np.arange(8), 8)
    with profiler:
        segment_mod.segment_mean(values, index, 8)
    records = {r.op: r for r in profiler.records()}
    mean_rec = records["segment_mean"]
    assert records["segment_sum"].calls == 1
    assert mean_rec.cum_s > mean_rec.self_s
    child_self = sum(r.self_s for r in profiler.records()
                     if r.op != "segment_mean")
    assert mean_rec.cum_s == pytest.approx(mean_rec.self_s + child_self,
                                           rel=0.05)


def test_radd_and_add_share_one_label():
    profiler = OpProfiler()
    t = Tensor(np.ones(4))
    with profiler:
        _ = t + 1.0
        _ = 1.0 + t  # dispatches through __radd__
    records = {r.op: r for r in profiler.records()}
    assert records["add"].calls == 2


def test_flop_estimator_errors_never_break_the_op():
    profiler = OpProfiler()
    profiler.activate()
    try:
        # where() takes an ndarray condition; exercise it plus a zero-dim
        # edge the elementwise estimator must survive.
        out = tensor_mod.where(np.array([True, False]),
                               Tensor(np.ones(2)), Tensor(np.zeros(2)))
        assert out.data.tolist() == [1.0, 0.0]
    finally:
        profiler.deactivate()


# ----------------------------------------------------------------------
# Span attribution
# ----------------------------------------------------------------------
def test_ops_attribute_to_the_innermost_open_span():
    observer = Observer()
    profiler = OpProfiler(observer)
    a = Tensor(np.ones((4, 4)))
    with observer.activate(), profiler:
        with observer.span("outer"):
            with observer.span("inner"):
                _ = a @ a
        _ = a @ a  # outside any span
    keys = {(r.span_path, r.op) for r in profiler.records()
            if r.op == "matmul"}
    assert (("outer", "inner"), "matmul") in keys
    assert ((), "matmul") in keys


def test_other_rows_cover_unprofiled_span_time():
    observer = Observer()
    profiler = OpProfiler(observer)
    with observer.activate(), profiler:
        with observer.span("glue"):
            time.sleep(0.01)  # pure Python time, no profiled op
    others = [r for r in profiler.records() if r.op == "(other)"]
    assert others and others[0].span_path == ("glue",)
    assert others[0].self_s >= 0.009
    table = hotpath_table(profiler.records(),
                          wall_seconds=profiler.wall_seconds)
    assert table["attributed_fraction"] >= 0.9
    assert table["op_fraction"] == 0.0


def test_training_profile_attributes_most_wall_time(graphs):
    from repro.obs.profile_run import profile_pretrain

    # The default `repro profile` workload — the one the acceptance bar
    # and the committed baseline are defined on. Smaller slices sit right
    # at the 90% boundary because fixed per-span glue doesn't shrink with
    # the op work.
    observer, profiler, payload = profile_pretrain("MUTAG")
    assert payload["attributed_fraction"] >= 0.90
    assert payload["rows"]
    spans = {row["span"] for row in payload["rows"]}
    assert any("pretrain/batch" in span for span in spans)
    assert observer.metrics.gauge("prof/wall_seconds") > 0
    assert observer.metrics.count("prof/op/matmul/calls") > 0


# ----------------------------------------------------------------------
# Zero overhead when off
# ----------------------------------------------------------------------
def test_histories_bit_identical_with_profiler_inactive(graphs):
    baseline = _train_history(graphs)
    # Constructing a profiler (imported but never activated) must not
    # perturb anything...
    OpProfiler(Observer())
    inactive = _train_history(graphs)
    assert inactive == baseline
    # ...and neither may a completed activate/deactivate cycle.
    with OpProfiler():
        pass
    after_cycle = _train_history(graphs)
    assert after_cycle == baseline


def test_profiled_run_matches_unprofiled_numerics(graphs):
    baseline = _train_history(graphs)
    observer = Observer()
    with observer.activate(), OpProfiler(observer):
        profiled = _train_history(graphs)
    assert profiled == baseline


def test_active_per_op_overhead_is_bounded():
    # Micro-benchmark: the wrapper adds clock reads + dict bookkeeping
    # per call. Bound it generously (CI machines are noisy) — the point
    # is to catch an accidental O(records) or O(stack) cost per call.
    a = Tensor(np.ones(4))
    n = 300

    def burn():
        start = time.perf_counter()
        for _ in range(n):
            _ = a + 1.0
        return time.perf_counter() - start

    burn()  # warm up
    plain = min(burn() for _ in range(3))
    profiler = OpProfiler()
    with profiler:
        burn()  # warm the patched path
        active = min(burn() for _ in range(3))
    per_op_overhead = (active - plain) / n
    assert per_op_overhead < 200e-6, \
        f"per-op overhead {per_op_overhead * 1e6:.1f}µs"


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------
def _payload(by_op, total=None):
    total = total if total is not None \
        else sum(v["self_s"] for v in by_op.values())
    return {"by_op": by_op, "total_self_s": total}


def test_compare_identical_payloads_passes():
    payload = _payload({"matmul": {"calls": 10, "self_s": 0.5},
                        "add": {"calls": 100, "self_s": 0.5}})
    assert compare_hotpaths(payload, payload) == []


def test_compare_flags_call_count_drift():
    base = _payload({"matmul": {"calls": 10, "self_s": 0.5}})
    cur = _payload({"matmul": {"calls": 13, "self_s": 0.5}})
    violations = compare_hotpaths(cur, base)
    assert any("call count" in v for v in violations)


def test_compare_flags_share_growth_beyond_tolerance():
    base = _payload({"matmul": {"calls": 10, "self_s": 0.2},
                     "add": {"calls": 10, "self_s": 0.8}})
    cur = _payload({"matmul": {"calls": 10, "self_s": 0.8},
                    "add": {"calls": 10, "self_s": 0.2}})
    violations = compare_hotpaths(cur, base)
    assert any("share grew" in v for v in violations)


def test_compare_tolerates_uniform_machine_slowdown():
    base = _payload({"matmul": {"calls": 10, "self_s": 0.2},
                     "add": {"calls": 10, "self_s": 0.8}})
    slow = _payload({"matmul": {"calls": 10, "self_s": 1.0},
                     "add": {"calls": 10, "self_s": 4.0}})
    assert compare_hotpaths(slow, base) == []


def test_compare_flags_vanished_op():
    base = _payload({"matmul": {"calls": 10, "self_s": 0.5}})
    cur = _payload({"add": {"calls": 10, "self_s": 0.5}})
    violations = compare_hotpaths(cur, base)
    assert any("vanished" in v for v in violations)


def test_compare_skips_noise_dominated_ops():
    base = _payload({"tiny": {"calls": 2, "self_s": 1e-6},
                     "big": {"calls": 10, "self_s": 1.0}})
    cur = _payload({"tiny": {"calls": 2, "self_s": 5e-5},
                    "big": {"calls": 10, "self_s": 1.0}})
    assert compare_hotpaths(cur, base) == []
