"""Tests for the Observer and the ambient current() lookup."""

from __future__ import annotations

from repro.obs import (
    NULL_OBSERVER,
    MemorySink,
    MetricsRegistry,
    Observer,
    current,
)


def test_default_current_is_the_shared_noop():
    assert current() is NULL_OBSERVER
    assert not current().enabled


def test_activate_installs_and_restores():
    observer = Observer()
    assert current() is NULL_OBSERVER
    with observer.activate():
        assert current() is observer
    assert current() is NULL_OBSERVER


def test_activation_nests_like_a_stack():
    outer, inner = Observer(), Observer()
    with outer.activate():
        with inner.activate():
            assert current() is inner
        assert current() is outer


def test_activation_restores_after_exceptions():
    observer = Observer()
    try:
        with observer.activate():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert current() is NULL_OBSERVER


def test_event_envelope_keys():
    sink = MemorySink()
    observer = Observer(sinks=[sink], run_id="abc", clock=lambda: 12.5)
    payload = observer.event("epoch", loss=1.0)
    assert payload == {"event": "epoch", "ts": 12.5, "run": "abc",
                       "loss": 1.0}
    assert sink.events[0] == payload


def test_metrics_and_spans_delegate():
    observer = Observer()
    observer.increment("steps", 3)
    observer.set_gauge("lr", 0.001)
    observer.observe("latency", 0.5)
    with observer.span("region"):
        pass
    assert observer.metrics.count("steps") == 3
    assert observer.metrics.gauge("lr") == 0.001
    assert observer.tracer.aggregate()["region"]["calls"] == 1


def test_emit_trace_carries_tree_and_aggregate():
    sink = MemorySink()
    observer = Observer(sinks=[sink])
    with observer.span("a"):
        with observer.span("b"):
            pass
    event = observer.emit_trace()
    assert event["event"] == "trace"
    assert event["spans"][0]["name"] == "a"
    assert set(event["aggregate"]) == {"a", "b"}


def test_shared_metrics_registry_can_be_injected():
    registry = MetricsRegistry()
    observer = Observer(metrics=registry)
    observer.increment("hits")
    assert registry.count("hits") == 1


def test_null_observer_is_inert():
    NULL_OBSERVER.increment("x")
    NULL_OBSERVER.observe("x", 1.0)
    NULL_OBSERVER.set_gauge("x", 1.0)
    with NULL_OBSERVER.span("x"):
        pass
    with NULL_OBSERVER.timer("x"):
        pass
    assert NULL_OBSERVER.event("anything", a=1) == {}
    assert NULL_OBSERVER.emit_trace() == {}
    assert NULL_OBSERVER.tracer.span_tree() == []
    NULL_OBSERVER.close()
