"""Instrumented training: epoch events, spans, K_V consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import make_method
from repro.core import SGCLConfig, SGCLTrainer
from repro.data import DataLoader, load_dataset
from repro.obs import MemorySink, Observer

REQUIRED_EPOCH_KEYS = {
    "event", "ts", "run", "method", "epoch", "loss", "loss_s",
    "k_v_mean", "k_v_std", "k_v_min", "k_v_max", "drop_fraction",
    "grad_norm", "epoch_seconds", "num_batches",
}


@pytest.fixture(scope="module")
def mutag():
    return load_dataset("MUTAG", seed=0, scale=0.1)


def test_traced_pretrain_emits_schema_stable_epoch_events(mutag):
    sink = MemorySink()
    observer = Observer(sinks=[sink])
    trainer = SGCLTrainer(mutag.num_features,
                          SGCLConfig(epochs=2, batch_size=32, seed=0))
    with observer.activate():
        history = trainer.pretrain(mutag.graphs)
    epochs = sink.of_kind("epoch")
    assert len(epochs) == 2
    for i, event in enumerate(epochs):
        assert REQUIRED_EPOCH_KEYS <= set(event)
        assert event["method"] == "SGCL"
        assert event["epoch"] == i + 1
        assert event["k_v_min"] <= event["k_v_mean"] <= event["k_v_max"]
        assert 0.0 <= event["drop_fraction"] <= 1.0
        assert event["grad_norm"] > 0.0
        assert event["epoch_seconds"] > 0.0
    # History rows carry the same telemetry (minus the event envelope).
    assert history[0]["k_v_mean"] == epochs[0]["k_v_mean"]
    assert history[0]["loss"] == epochs[0]["loss"]


def test_epoch_kv_stats_match_lipschitz_generator_output(mutag):
    """The k_v_* fields must be the stats of ``generator.node_constants``.

    Two trainers share a seed, so their RNG streams and initial parameters
    are identical. One computes the expected constants directly from
    ``lipschitz.py`` on the exact batches the first epoch will see; the
    other trains one epoch under an observer. With one batch per epoch the
    epoch aggregation is the identity, so the event's stats must equal the
    direct computation bit-for-bit.
    """
    config = SGCLConfig(epochs=1, batch_size=len(mutag.graphs), seed=3)

    reference = SGCLTrainer(mutag.num_features, config)
    loader = DataLoader(mutag.graphs, config.batch_size, shuffle=True,
                        rng=reference._shuffle_rng)
    batches = list(loader)
    assert len(batches) == 1
    constants = reference.model.generator.node_constants(batches[0]).data

    sink = MemorySink()
    trainer = SGCLTrainer(mutag.num_features, config)
    trainer.pretrain(mutag.graphs, observer=Observer(sinks=[sink]))
    event = sink.of_kind("epoch")[0]
    assert event["k_v_mean"] == pytest.approx(float(constants.mean()),
                                              abs=1e-12)
    assert event["k_v_std"] == pytest.approx(float(constants.std()),
                                             abs=1e-12)
    assert event["k_v_min"] == pytest.approx(float(constants.min()),
                                             abs=1e-12)
    assert event["k_v_max"] == pytest.approx(float(constants.max()),
                                             abs=1e-12)


def test_traced_pretrain_records_span_tree(mutag):
    observer = Observer()
    trainer = SGCLTrainer(mutag.num_features,
                          SGCLConfig(epochs=1, batch_size=64, seed=0))
    with observer.activate():
        trainer.pretrain(mutag.graphs)
    aggregate = observer.tracer.aggregate()
    assert aggregate["pretrain/epoch"]["calls"] == 1
    assert aggregate["pretrain/batch"]["calls"] >= 1
    assert aggregate["lipschitz/generator"]["calls"] >= 1
    assert aggregate["augment/sample"]["calls"] >= 1
    # Nesting: batches inside the epoch; each batch splits into the
    # loss/backward/step phases; the generator runs inside the loss.
    epoch_span = next(s for s in observer.tracer.roots
                      if s.name == "pretrain/epoch")
    batch_names = {c.name for c in epoch_span.children}
    assert batch_names == {"pretrain/batch"}
    phases = {c.name for c in epoch_span.children[0].children}
    assert phases == {"pretrain/loss", "pretrain/backward", "pretrain/step"}
    loss_span = next(c for c in epoch_span.children[0].children
                     if c.name == "pretrain/loss")
    inner = {c.name for c in loss_span.children}
    assert "lipschitz/generator" in inner
    assert "augment/sample" in inner


def test_untraced_pretrain_keeps_history_telemetry(mutag):
    """History keeps the K_V/drop columns even with observability off."""
    trainer = SGCLTrainer(mutag.num_features,
                          SGCLConfig(epochs=1, batch_size=64, seed=0))
    history = trainer.pretrain(mutag.graphs)
    row = history[0]
    assert {"epoch", "loss", "k_v_mean", "drop_fraction",
            "epoch_seconds", "num_batches"} <= set(row)
    assert row["epoch"] == 1


def test_observer_does_not_change_training_trajectory(mutag):
    config = SGCLConfig(epochs=2, batch_size=32, seed=0)
    plain = SGCLTrainer(mutag.num_features, config)
    plain_history = plain.pretrain(mutag.graphs)
    traced = SGCLTrainer(mutag.num_features, config)
    with Observer(sinks=[MemorySink()]).activate():
        traced_history = traced.pretrain(mutag.graphs)
    for a, b in zip(plain_history, traced_history):
        assert a["loss"] == b["loss"]
        assert a["k_v_mean"] == b["k_v_mean"]


def test_baseline_pretrain_emits_epoch_events(mutag):
    sink = MemorySink()
    model = make_method("GraphCL", mutag.num_features, seed=0)
    with Observer(sinks=[sink]).activate():
        model.pretrain(mutag.graphs, epochs=2)
    epochs = sink.of_kind("epoch")
    assert len(epochs) == 2
    assert epochs[0]["method"] == "GraphCL"
    assert epochs[1]["epoch"] == 2
    assert np.isfinite(epochs[0]["loss"])


def test_checkpointed_history_round_trips_new_columns(mutag, tmp_path):
    trainer = SGCLTrainer(mutag.num_features,
                          SGCLConfig(epochs=1, batch_size=64, seed=0))
    trainer.pretrain(mutag.graphs)
    path = trainer.save_checkpoint(tmp_path / "ck.npz")
    resumed = SGCLTrainer.from_checkpoint(path)
    assert resumed.history == trainer.history
