"""Golden-output tests for run-log aggregation and the report CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import render_report, render_run_report

EVENTS = [
    {"event": "run_start", "ts": 0.0, "run": "r1", "command": "pretrain",
     "method": "SGCL", "dataset": "MUTAG"},
    {"event": "epoch", "ts": 1.0, "run": "r1", "method": "SGCL",
     "epoch": 1, "loss": 3.5, "loss_s": 2.5, "loss_c": 2.9,
     "theta_w": 22.0, "grad_norm": 5.5, "k_v_mean": 0.75, "k_v_std": 0.31,
     "k_v_min": 0.2, "k_v_max": 1.4, "drop_fraction": 0.101,
     "num_batches": 7, "epoch_seconds": 0.07},
    {"event": "epoch", "ts": 2.0, "run": "r1", "method": "SGCL",
     "epoch": 2, "loss": 3.25, "loss_s": 2.25, "loss_c": 2.7,
     "theta_w": 21.9, "grad_norm": 4.7, "k_v_mean": 0.74, "k_v_std": 0.30,
     "k_v_min": 0.2, "k_v_max": 1.4, "drop_fraction": 0.101,
     "num_batches": 7, "epoch_seconds": 0.09},
    {"event": "eval", "ts": 3.0, "run": "r1", "protocol": "unsupervised",
     "method": "SGCL", "dataset": "MUTAG", "seed": 0, "accuracy": 0.8125},
    {"event": "trace", "ts": 4.0, "run": "r1", "spans": [],
     "aggregate": {"pretrain/epoch": {"calls": 2, "total_s": 0.16},
                   "pretrain/batch": {"calls": 14, "total_s": 0.15}}},
    {"event": "run_end", "ts": 5.0, "run": "r1", "wall_seconds": 5.0},
]

GOLDEN_FRAGMENTS = [
    "run r1: command=pretrain, method=SGCL, dataset=MUTAG",
    "== training: SGCL (run r1, 2 epochs) ==",
    "L_s",
    "K_V mean",
    "drop%",
    "3.5000",   # epoch-1 loss cell
    "10.1%",    # drop fraction cell
    "mean epoch time 0.08s, final loss 3.2500",
    "== evaluation ==",
    "protocol=unsupervised, method=SGCL, dataset=MUTAG, seed=0, "
    "accuracy=0.8125",
    "== spans ==",
    "pretrain/epoch",
    "pretrain/batch                        14      0.150s",
    "run r1 finished: wall_seconds=5.0",
]


def test_render_report_golden_fragments():
    rendered = render_report(EVENTS)
    for fragment in GOLDEN_FRAGMENTS:
        assert fragment in rendered, f"missing: {fragment!r}"
    # Section order is stable: start → training → eval → spans → end.
    positions = [rendered.index(f) for f in (
        "run r1:", "== training", "== evaluation", "== spans",
        "run r1 finished")]
    assert positions == sorted(positions)


def test_report_cli_renders_a_log_file(tmp_path, capsys):
    log = tmp_path / "run-r1.jsonl"
    log.write_text("\n".join(json.dumps(e) for e in EVENTS) + "\n")
    main(["report", str(log)])
    out = capsys.readouterr().out
    for fragment in GOLDEN_FRAGMENTS:
        assert fragment in out


def test_render_run_report_rejects_missing_event_key(tmp_path):
    log = tmp_path / "bad.jsonl"
    log.write_text('{"not_an_event": 1}\n')
    with pytest.raises(ValueError, match="'event' key"):
        render_run_report(log)


def test_report_of_empty_log_is_graceful(tmp_path):
    log = tmp_path / "empty.jsonl"
    log.write_text("")
    assert render_run_report(log) == "(no renderable events)"


def test_epoch_table_skips_absent_columns():
    events = [{"event": "epoch", "run": "b", "method": "GraphCL",
               "epoch": 1, "loss": 0.9, "num_batches": 3,
               "epoch_seconds": 0.01}]
    rendered = render_report(events)
    assert "loss" in rendered
    assert "K_V" not in rendered  # baselines have no Lipschitz stats
    assert "drop%" not in rendered
