"""Tests for nested span tracing: structure, timing, aggregation."""

from __future__ import annotations

import itertools

from repro.obs import NULL_TRACER, Tracer, render_span_tree


class FakeClock:
    """Deterministic monotonic clock advancing 1s per reading."""

    def __init__(self):
        self._ticks = itertools.count()

    def __call__(self) -> float:
        return float(next(self._ticks))


def test_spans_nest_under_the_open_span():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner"):
            pass
    assert [s.name for s in tracer.roots] == ["outer"]
    outer = tracer.roots[0]
    assert [c.name for c in outer.children] == ["inner", "inner"]
    assert all(not c.children for c in outer.children)


def test_timing_is_monotone_and_children_fit_inside_parent():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    outer = tracer.roots[0]
    inner = outer.children[0]
    assert outer.end > outer.start
    assert inner.end > inner.start
    assert outer.start <= inner.start <= inner.end <= outer.end
    assert inner.duration <= outer.duration


def test_sequential_roots_do_not_nest():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    assert [s.name for s in tracer.roots] == ["a", "b"]


def test_aggregate_counts_calls_and_sums_time():
    tracer = Tracer(clock=FakeClock())
    for _ in range(3):
        with tracer.span("epoch"):
            with tracer.span("batch"):
                pass
    aggregate = tracer.aggregate()
    assert aggregate["epoch"]["calls"] == 3
    assert aggregate["batch"]["calls"] == 3
    # Fake clock: batch spans last 1s each, epoch spans 3s each.
    assert aggregate["batch"]["total_s"] == 3.0
    assert aggregate["epoch"]["total_s"] == 9.0


def test_span_tree_is_json_shaped():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    tree = tracer.span_tree()
    assert tree[0]["name"] == "outer"
    assert tree[0]["children"][0]["name"] == "inner"
    assert tree[0]["duration_s"] >= tree[0]["children"][0]["duration_s"]


def test_reset_clears_state():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("x"):
        pass
    tracer.reset()
    assert tracer.roots == []
    assert tracer.aggregate() == {}


def test_render_span_tree_merges_same_named_siblings():
    tracer = Tracer(clock=FakeClock())
    for _ in range(2):
        with tracer.span("epoch"):
            with tracer.span("batch"):
                pass
    rendered = render_span_tree(tracer)
    assert rendered.count("epoch") == 1
    assert "2×" in rendered
    assert "batch" in rendered


def test_null_tracer_records_nothing():
    with NULL_TRACER.span("anything"):
        pass
    assert NULL_TRACER.span_tree() == []
    assert NULL_TRACER.aggregate() == {}
    # span() hands back a shared object — no per-call allocation.
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


# ----------------------------------------------------------------------
# Exception safety: raising span bodies must still close their spans
# ----------------------------------------------------------------------
def test_raising_span_closes_and_records_the_error():
    tracer = Tracer(clock=FakeClock())
    try:
        with tracer.span("outer"):
            with tracer.span("doomed"):
                raise ValueError("boom")
    except ValueError:
        pass
    assert tracer.open_spans == 0
    outer = tracer.roots[0]
    doomed = outer.children[0]
    assert doomed.end is not None and doomed.error == "ValueError"
    # The exception propagated through `outer` too, so it is tagged as
    # well; the error column surfaces in the aggregate for tables.
    assert outer.error == "ValueError"
    assert tracer.aggregate()["doomed"]["errors"] == 1
    assert "error" in doomed.to_dict()


def test_error_does_not_leak_into_subsequent_spans():
    tracer = Tracer(clock=FakeClock())
    try:
        with tracer.span("bad"):
            raise RuntimeError
    except RuntimeError:
        pass
    with tracer.span("good"):
        pass
    good = tracer.roots[1]
    assert good.error is None
    assert [s.name for s in tracer.roots] == ["bad", "good"]
    assert tracer.open_spans == 0


def test_no_dangling_spans_after_a_raising_pretrain_batch(rng):
    # Integration: a crash deep inside the instrumented training loop
    # (under pretrain/epoch > pretrain/batch > pretrain/loss) must unwind
    # every open span, or every later trace in the process nests under a
    # ghost of the failed run.
    from repro.core import SGCLConfig, SGCLTrainer
    from repro.obs import Observer
    from tests._helpers import make_path, make_triangle

    graphs = [make_triangle(rng), make_path(rng, 4), make_triangle(rng)]
    trainer = SGCLTrainer(graphs[0].x.shape[1],
                          SGCLConfig(epochs=1, batch_size=4, seed=0))

    def exploding_loss(*args, **kwargs):
        raise RuntimeError("injected mid-batch failure")

    trainer.model.loss = exploding_loss
    observer = Observer()
    with observer.activate():
        try:
            trainer.pretrain(graphs, observer=observer)
        except RuntimeError:
            pass
    assert observer.tracer.open_spans == 0
    names = {name for name in observer.tracer.aggregate()}
    assert "pretrain/loss" in names
    assert observer.tracer.aggregate()["pretrain/loss"]["errors"] == 1
