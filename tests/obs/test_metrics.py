"""Tests for the shared metrics registry (and the serving Telemetry shim)."""

from __future__ import annotations

import math

from repro.obs import MetricsRegistry
from repro.serve import Telemetry


def test_counters_and_gauges_are_independent_namespaces():
    registry = MetricsRegistry()
    registry.increment("n", 2)
    registry.set_gauge("n", 7.0)
    assert registry.count("n") == 2
    assert registry.gauge("n") == 7.0


def test_gauge_last_value_wins_and_defaults_to_nan():
    registry = MetricsRegistry()
    assert math.isnan(registry.gauge("unset"))
    registry.set_gauge("level", 1.0)
    registry.set_gauge("level", 3.0)
    assert registry.gauge("level") == 3.0


def test_histogram_percentiles_and_reservoir_bound():
    registry = MetricsRegistry(max_samples=50)
    for value in range(100):
        registry.observe("x", value)
    summary = registry.summary("x")
    assert summary["count"] == 50
    assert summary["max"] == 99  # most recent survive
    assert registry.percentile("x", 0) == 50  # oldest fell off the front


def test_snapshot_includes_gauges():
    registry = MetricsRegistry()
    registry.increment("hits")
    registry.set_gauge("depth", 4)
    registry.observe("sizes", 1.0)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"hits": 1}
    assert snapshot["gauges"] == {"depth": 4.0}
    assert snapshot["series"]["sizes"]["count"] == 1
    registry.reset()
    assert registry.snapshot() == {"counters": {}, "gauges": {},
                                   "series": {}}


def test_timer_observes_elapsed_seconds():
    registry = MetricsRegistry()
    with registry.timer("block"):
        sum(range(1000))
    assert registry.summary("block")["count"] == 1


def test_serving_telemetry_is_a_registry_shim():
    telemetry = Telemetry(max_samples=16)
    assert isinstance(telemetry, MetricsRegistry)
    telemetry.increment("hits")
    telemetry.observe("latency", 0.5)
    # The serving snapshot keeps its original two-key schema (no gauges).
    snapshot = telemetry.snapshot()
    assert set(snapshot) == {"counters", "series"}
    assert snapshot["counters"] == {"hits": 1}
