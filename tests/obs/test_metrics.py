"""Tests for the shared metrics registry (and the serving Telemetry shim)."""

from __future__ import annotations

import math

from repro.obs import MetricsRegistry
from repro.serve import Telemetry


def test_counters_and_gauges_are_independent_namespaces():
    registry = MetricsRegistry()
    registry.increment("n", 2)
    registry.set_gauge("n", 7.0)
    assert registry.count("n") == 2
    assert registry.gauge("n") == 7.0


def test_gauge_last_value_wins_and_defaults_to_nan():
    registry = MetricsRegistry()
    assert math.isnan(registry.gauge("unset"))
    registry.set_gauge("level", 1.0)
    registry.set_gauge("level", 3.0)
    assert registry.gauge("level") == 3.0


def test_histogram_percentiles_and_reservoir_bound():
    registry = MetricsRegistry(max_samples=50)
    for value in range(100):
        registry.observe("x", value)
    summary = registry.summary("x")
    assert summary["count"] == 50
    assert summary["max"] == 99  # most recent survive
    assert registry.percentile("x", 0) == 50  # oldest fell off the front


def test_snapshot_includes_gauges():
    registry = MetricsRegistry()
    registry.increment("hits")
    registry.set_gauge("depth", 4)
    registry.observe("sizes", 1.0)
    snapshot = registry.snapshot()
    assert snapshot["counters"] == {"hits": 1}
    assert snapshot["gauges"] == {"depth": 4.0}
    assert snapshot["series"]["sizes"]["count"] == 1
    registry.reset()
    assert registry.snapshot() == {"counters": {}, "gauges": {},
                                   "series": {}}


def test_timer_observes_elapsed_seconds():
    registry = MetricsRegistry()
    with registry.timer("block"):
        sum(range(1000))
    assert registry.summary("block")["count"] == 1


def test_merge_percentiles_equal_single_registry_recording():
    # The fleet-wide latency invariant: merging per-worker registries must
    # give the same percentiles as recording every observation into one
    # registry — no averaging-of-averages.
    combined = MetricsRegistry()
    workers = [MetricsRegistry() for _ in range(3)]
    for w, registry in enumerate(workers):
        for i in range(40):
            value = (w * 40 + i) / 10.0
            registry.observe("embed_seconds", value)
            combined.observe("embed_seconds", value)
    merged = MetricsRegistry()
    for registry in workers:
        merged.merge(registry)
    for q in (50, 95, 99):
        assert merged.percentile("embed_seconds", q) == \
            combined.percentile("embed_seconds", q)
    assert merged.summary("embed_seconds") == combined.summary("embed_seconds")


def test_merge_accepts_samples_snapshot_dicts():
    # ProcessReplica workers ship snapshot(samples=True) over a pipe; the
    # router merges the plain dict. Percentiles must survive the trip.
    worker = MetricsRegistry()
    worker.increment("requests", 5)
    worker.set_gauge("depth", 2.0)
    for value in (0.1, 0.2, 0.9):
        worker.observe("embed_seconds", value)
    merged = MetricsRegistry().merge(worker.snapshot(samples=True))
    assert merged.count("requests") == 5
    assert merged.gauge("depth") == 2.0
    assert merged.percentile("embed_seconds", 50) == \
        worker.percentile("embed_seconds", 50)
    # A samples-free snapshot merges counters/gauges only — no fabricated
    # observations from summary statistics.
    no_samples = MetricsRegistry().merge(worker.snapshot())
    assert no_samples.count("requests") == 5
    assert no_samples.summary("embed_seconds")["count"] == 0


def test_merge_adds_counters_and_overwrites_gauges():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.increment("hits", 2)
    b.increment("hits", 3)
    a.set_gauge("level", 1.0)
    b.set_gauge("level", 9.0)
    a.merge(b)
    assert a.count("hits") == 5
    assert a.gauge("level") == 9.0  # merged-in value wins


def test_serving_telemetry_is_a_registry_shim():
    telemetry = Telemetry(max_samples=16)
    assert isinstance(telemetry, MetricsRegistry)
    telemetry.increment("hits")
    telemetry.observe("latency", 0.5)
    # The serving snapshot keeps its original two-key schema (no gauges).
    snapshot = telemetry.snapshot()
    assert set(snapshot) == {"counters", "series"}
    assert snapshot["counters"] == {"hits": 1}
