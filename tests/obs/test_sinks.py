"""Tests for event sinks: ring buffer, JSONL round-trip, no-op, console."""

from __future__ import annotations

import io
import json

import numpy as np

from repro.obs import (
    ConsoleSink,
    JSONLSink,
    MemorySink,
    NullSink,
    Observer,
    load_events,
)


def test_memory_sink_is_a_bounded_ring_buffer():
    sink = MemorySink(capacity=3)
    for i in range(10):
        sink.emit({"event": "tick", "i": i})
    assert [e["i"] for e in sink.events] == [7, 8, 9]
    assert sink.of_kind("tick")[0]["i"] == 7
    assert sink.of_kind("other") == []


def test_memory_sink_copies_events():
    sink = MemorySink()
    payload = {"event": "x", "value": 1}
    sink.emit(payload)
    payload["value"] = 2
    assert sink.events[0]["value"] == 1


def test_jsonl_round_trip_every_event_parses(tmp_path):
    path = tmp_path / "run.jsonl"
    sink = JSONLSink(path)
    sink.emit({"event": "epoch", "epoch": 1, "loss": 0.5})
    sink.emit({"event": "epoch", "epoch": 2, "loss": np.float64(0.25),
               "k_v": np.array([1.0, 2.0])})
    sink.close()
    events = load_events(path)
    assert len(events) == 2
    assert events[0] == {"event": "epoch", "epoch": 1, "loss": 0.5}
    # numpy payloads are JSON-encoded transparently
    assert events[1]["loss"] == 0.25
    assert events[1]["k_v"] == [1.0, 2.0]


def test_jsonl_sink_appends_and_keys_are_sorted(tmp_path):
    path = tmp_path / "run.jsonl"
    first = JSONLSink(path)
    first.emit({"event": "a", "z": 1, "a": 2})
    first.close()
    second = JSONLSink(path)
    second.emit({"event": "b"})
    second.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 2  # append-only: first run's event survives
    parsed = json.loads(lines[0])
    assert list(json.loads(lines[0])) == sorted(parsed)  # schema-stable


def test_load_events_rejects_corrupt_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"event": "ok"}\n{"event": truncated\n')
    try:
        load_events(path)
    except ValueError as error:
        assert "bad.jsonl:2" in str(error)
    else:
        raise AssertionError("corrupt line should raise")


def test_null_sink_has_no_side_effects(tmp_path):
    sink = NullSink()
    sink.emit({"event": "anything", "huge": list(range(100))})
    sink.close()
    assert list(tmp_path.iterdir()) == []  # nothing written anywhere
    assert not vars(sink)  # and nothing retained


def test_console_sink_formats_epoch_events():
    stream = io.StringIO()
    sink = ConsoleSink(stream=stream)
    sink.emit({"event": "epoch", "epoch": 3, "loss": 1.2345,
               "loss_s": 1.0, "k_v_mean": 0.8, "k_v_std": 0.2,
               "drop_fraction": 0.1, "epoch_seconds": 0.5})
    out = stream.getvalue()
    assert "[epoch 3]" in out
    assert "loss=1.2345" in out
    assert "K_V=0.800±0.200" in out
    assert "drop=10.0%" in out


def test_console_sink_falls_back_to_key_value_lines():
    stream = io.StringIO()
    ConsoleSink(stream=stream).emit(
        {"event": "custom", "ts": 1.0, "run": "r", "answer": 42})
    assert stream.getvalue() == "[custom] answer=42\n"


def test_jsonl_sink_context_manager_closes_even_when_body_raises(tmp_path):
    path = tmp_path / "run.jsonl"
    try:
        with JSONLSink(path) as sink:
            sink.emit({"event": "before_crash", "i": 1})
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert sink.closed
    assert load_events(path) == [{"event": "before_crash", "i": 1}]


def test_jsonl_close_is_idempotent_and_flush_safe_after_close(tmp_path):
    sink = JSONLSink(tmp_path / "run.jsonl")
    sink.emit({"event": "x"})
    sink.close()
    sink.close()  # second close must not raise
    sink.flush()  # nor must flushing a closed sink
    assert sink.closed


def test_killed_mid_run_log_is_a_valid_prefix(tmp_path):
    # Simulate a process killed between emits: every emit writes + flushes
    # one whole line, so a log abandoned without close() still parses and
    # holds exactly the events emitted so far.
    path = tmp_path / "killed.jsonl"
    sink = JSONLSink(path)
    for i in range(5):
        sink.emit({"event": "tick", "i": i})
    # No close() — read the file as another process (or a post-mortem
    # `repro report`) would while this one is still holding it open.
    events = load_events(path)
    assert [e["i"] for e in events] == [0, 1, 2, 3, 4]
    sink.close()


def test_observer_fans_out_to_all_sinks(tmp_path):
    memory = MemorySink()
    jsonl = JSONLSink(tmp_path / "run.jsonl")
    observer = Observer(sinks=[memory, jsonl], run_id="fan", clock=lambda: 5.0)
    observer.event("ping", value=1)
    observer.close()
    assert memory.events[0] == {"event": "ping", "ts": 5.0, "run": "fan",
                                "value": 1}
    assert load_events(tmp_path / "run.jsonl") == list(memory.events)
