"""Tests for run manifests and dataset fingerprints."""

from __future__ import annotations

import numpy as np

from repro.core import SGCLConfig
from repro.data import load_dataset
from repro.graph import Graph
from repro.obs import RunManifest, dataset_fingerprint, git_sha


def _graph(seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    return Graph(rng.normal(size=(4, 3)),
                 np.array([[0, 1, 2], [1, 2, 3]]))


def test_fingerprint_is_deterministic():
    assert dataset_fingerprint([_graph(0), _graph(1)]) \
        == dataset_fingerprint([_graph(0), _graph(1)])


def test_fingerprint_sensitive_to_content_and_order():
    base = dataset_fingerprint([_graph(0), _graph(1)])
    assert dataset_fingerprint([_graph(1), _graph(0)]) != base
    assert dataset_fingerprint([_graph(0), _graph(2)]) != base
    mutated = _graph(1)
    mutated.x[0, 0] += 1.0
    assert dataset_fingerprint([_graph(0), mutated]) != base


def test_fingerprint_matches_generated_dataset_identity():
    a = load_dataset("MUTAG", seed=0, scale=0.05)
    b = load_dataset("MUTAG", seed=0, scale=0.05)
    c = load_dataset("MUTAG", seed=1, scale=0.05)
    assert dataset_fingerprint(a.graphs) == dataset_fingerprint(b.graphs)
    assert dataset_fingerprint(a.graphs) != dataset_fingerprint(c.graphs)


def test_manifest_round_trip(tmp_path):
    manifest = RunManifest(
        "run1", config=SGCLConfig(epochs=3), seed=7,
        dataset={"name": "mutag", "fingerprint": "ab" * 8},
        extra={"command": "pretrain"})
    path = manifest.write(tmp_path / "run1.manifest.json")
    loaded = RunManifest.read(path)
    assert loaded["run_id"] == "run1"
    assert loaded["seed"] == 7
    assert loaded["config"]["epochs"] == 3  # dataclass became a dict
    assert loaded["config"]["rho"] == 0.9
    assert loaded["dataset"]["name"] == "mutag"
    assert loaded["extra"] == {"command": "pretrain"}
    assert loaded["environment"]["numpy"] == np.__version__
    assert "python" in loaded["environment"]


def test_git_sha_in_this_repo_is_a_hash_or_none():
    sha = git_sha()
    assert sha is None or (len(sha) == 40
                           and all(c in "0123456789abcdef" for c in sha))
