"""Pooling readouts: correctness and permutation invariance."""

from __future__ import annotations

import numpy as np

from repro.gnn import (
    global_max_pool,
    global_mean_pool,
    global_sum_pool,
    weighted_sum_pool,
)
from repro.graph import Batch
from repro.tensor import Tensor

from _helpers import make_path, make_triangle


def test_sum_mean_max_match_numpy(rng):
    batch = Batch([make_triangle(rng), make_path(rng, n=4)])
    values = rng.normal(size=(batch.num_nodes, 5))
    x = Tensor(values)
    sums = global_sum_pool(x, batch.node_graph, 2).data
    means = global_mean_pool(x, batch.node_graph, 2).data
    maxes = global_max_pool(x, batch.node_graph, 2).data
    assert np.allclose(sums[0], values[:3].sum(axis=0))
    assert np.allclose(means[1], values[3:].mean(axis=0))
    assert np.allclose(maxes[0], values[:3].max(axis=0))


def test_weighted_sum_pool_eq21(rng):
    batch = Batch([make_triangle(rng)])
    values = rng.normal(size=(3, 4))
    weights = np.array([0.5, 2.0, 0.0])
    out = weighted_sum_pool(Tensor(values), Tensor(weights),
                            batch.node_graph, 1).data
    assert np.allclose(out[0], (values * weights[:, None]).sum(axis=0))


def test_weighted_pool_gradient_reaches_weights(rng):
    batch = Batch([make_triangle(rng)])
    weights = Tensor(np.ones(3), requires_grad=True)
    out = weighted_sum_pool(Tensor(rng.normal(size=(3, 4))), weights,
                            batch.node_graph, 1)
    out.sum().backward()
    assert weights.grad is not None


def test_pooled_representation_permutation_invariant(rng):
    """Permuting nodes within a graph leaves the pooled vector unchanged."""
    g = make_path(rng, n=6)
    batch = Batch([g])
    values = rng.normal(size=(6, 4))
    pooled = global_sum_pool(Tensor(values), batch.node_graph, 1).data
    perm = rng.permutation(6)
    pooled_permuted = global_sum_pool(Tensor(values[perm]),
                                      batch.node_graph, 1).data
    assert np.allclose(pooled, pooled_permuted)
